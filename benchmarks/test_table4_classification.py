"""Table IV: benchmark classification into CI / MI / US.

The reproduction must land every one of the 27 programs in the class
the paper prints, using the paper's procedure (1-GPC degradation rule,
then the Compute%/Memory% > 0.8 rule).
"""

from repro.gpu.device import SimulatedGpu
from repro.profiling.classify import classify
from repro.profiling.profiler import NsightProfiler
from repro.workloads.jobs import Job
from repro.workloads.suite import BENCHMARKS, PAPER_CLASSES


def classify_suite() -> dict[str, str]:
    profiler = NsightProfiler(SimulatedGpu(), noise=0.02)
    return {
        name: classify(profiler.profile(Job.submit(name)))
        for name in BENCHMARKS
    }


def test_table4_reproduction(benchmark):
    classes = classify_suite()

    print("\n=== Table IV: benchmark classifications ===")
    for cls in ("CI", "MI", "US"):
        members = sorted(n for n, c in classes.items() if c == cls)
        print(f"  {cls}: {', '.join(members)}")

    mismatches = {
        n: (c, PAPER_CLASSES[n])
        for n, c in classes.items()
        if c != PAPER_CLASSES[n]
    }
    assert not mismatches, f"classification mismatches: {mismatches}"

    profiler = NsightProfiler(SimulatedGpu(), noise=0.02)
    job = Job.submit("stream")
    benchmark(lambda: classify(profiler.profile(job)))
