"""Table V: the twelve inference job mixes (Q1..Q12, W = 12).

Regenerates the queue table and checks every queue matches its
category's class quotas and includes training-unseen programs.
"""

from repro.workloads.generator import (
    MixCategory,
    PAPER_QUEUE_CATEGORY,
    paper_queues,
    queue_class_counts,
)
from repro.workloads.suite import UNSEEN_SET


def test_table5_reproduction(benchmark):
    queues = paper_queues()

    print("\n=== Table V: job mixes per category (W = 12) ===")
    for name, queue in queues.items():
        cat = PAPER_QUEUE_CATEGORY[name].value
        starred = [
            j.benchmark_name + "*" if j.benchmark_name in UNSEEN_SET else j.benchmark_name
            for j in queue
        ]
        print(f"  {name:<4s} [{cat:<12s}] {', '.join(starred)}")

    assert len(queues) == 12
    for name, queue in queues.items():
        counts = queue_class_counts(queue)
        cat = PAPER_QUEUE_CATEGORY[name]
        if cat is MixCategory.BALANCED:
            assert counts == {"CI": 4, "MI": 4, "US": 4}, name
        else:
            assert counts[cat.dominant_class] == 6, name
            assert sum(counts.values()) == 12
        # starred (training-unseen) programs appear at inference
    all_names = {j.benchmark_name for q in queues.values() for j in q}
    assert all_names & set(UNSEEN_SET)

    benchmark(paper_queues)
