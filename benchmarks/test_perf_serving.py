"""Online-serving fast-path benchmark (the serving PR's acceptance gate).

Measures :func:`repro.insight.benchgate.measure_serving_bench` — a fixed
stream of scheduling windows (distinct contents plus permuted duplicate
submissions, the fleet steady state) served two ways:

* **reference** — the per-window ``OnlineOptimizer.optimize`` loop;
* **batched** — ``optimize_many`` with batched inference and the
  fleet-wide :class:`DecisionCache` (timed cache-warm, after a warm-up
  pass that doubles as the bitwise identity check).

Asserts the tentpole contract:

* **identity** — batched schedules are bitwise-identical to the
  sequential loop's (``schedule_fingerprint`` equality, cold and warm);
* **speedup** — >= 10x decisions/sec over the per-window loop;
* **latency** — p99 per-window ``decision_seconds`` < 1 ms.

Results land in ``BENCH_serving.json`` (override the path with
``REPRO_BENCH_SERVING_JSON``) — the file ``repro-gpu benchgate
--serving-baseline`` ratchets in CI. Run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_serving.py -m perf -s
"""

from __future__ import annotations

import json
import os

import pytest

from repro.insight.benchgate import (
    compare_serving_bench,
    gate_passes,
    measure_serving_bench,
)

pytestmark = [pytest.mark.perf, pytest.mark.serving]

N_WINDOWS = 256
DISTINCT_WINDOWS = 16
BATCH_SIZE = 32
TIMED_RUNS = 5
SPEEDUP_TARGET = 10.0
P99_LATENCY_TARGET_S = 1e-3

_BENCH_PATH = os.environ.get(
    "REPRO_BENCH_SERVING_JSON",
    os.path.join(os.path.dirname(__file__), "..", "BENCH_serving.json"),
)


def test_serving_speedup_identity_and_latency():
    doc = measure_serving_bench(
        episodes=30,
        n_windows=N_WINDOWS,
        distinct_windows=DISTINCT_WINDOWS,
        batch_size=BATCH_SIZE,
        timed_runs=TIMED_RUNS,
    )
    serving = doc["serving"]

    with open(_BENCH_PATH, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(
        f"\n=== serve({N_WINDOWS} windows, {DISTINCT_WINDOWS} distinct, "
        f"batch {BATCH_SIZE}): "
        f"{serving['decisions_per_sec_reference']:,.0f} -> "
        f"{serving['decisions_per_sec_batched']:,.0f} decisions/s "
        f"({serving['speedup']:.1f}x), "
        f"p99 {serving['p99_decision_latency_s'] * 1e6:.0f} us ==="
    )

    # -- identity: the fast path must not change a single float --------
    assert serving["identical_schedules"] is True
    # the duplicate submissions actually exercised the decision cache
    assert serving["decision_cache"]["hits"] > 0

    assert serving["speedup"] >= SPEEDUP_TARGET
    assert serving["p99_decision_latency_s"] < P99_LATENCY_TARGET_S

    # the freshly measured document must pass its own ratchet — the
    # gate CI applies against the committed baseline
    assert gate_passes(compare_serving_bench(doc, doc))
