"""Shared state for the experiment benchmarks.

Each ``test_figN_*.py`` / ``test_tableN_*.py`` file regenerates one
table or figure of the paper's evaluation: it prints the same
rows/series the paper reports, asserts the qualitative shape, and
times a representative computational unit with pytest-benchmark.

The expensive artifacts — the trained agent and the five-method
evaluation over Q1..Q12 — are computed once per session and shared.
Set ``REPRO_EPISODES`` to trade training quality for wall time
(default 2000, the setting used for the numbers in EXPERIMENTS.md;
the shape assertions are chosen to hold from ~1200 episodes up).
"""

from __future__ import annotations

import os

import pytest

from repro.core.evaluation import (
    EvaluationConfig,
    evaluate_methods,
    trained_agent,
)

EPISODES = int(os.environ.get("REPRO_EPISODES", "2000"))
SWEEP_EPISODES = int(os.environ.get("REPRO_SWEEP_EPISODES", "800"))


@pytest.fixture(scope="session")
def eval_config() -> EvaluationConfig:
    return EvaluationConfig(window_size=12, c_max=4, episodes=EPISODES, seed=0)


@pytest.fixture(scope="session")
def training(eval_config):
    """The offline-trained agent + fully profiled repository."""
    return trained_agent(eval_config)


@pytest.fixture(scope="session")
def method_results(eval_config, training):
    """All five methods over Q1..Q12 — backs Figs. 8, 11, and 12."""
    return evaluate_methods(eval_config)


def print_series(title: str, rows: dict) -> None:
    print(f"\n=== {title} ===")
    for key, value in rows.items():
        if isinstance(value, float):
            print(f"  {key:<42s} {value:8.3f}")
        else:
            print(f"  {key:<42s} {value}")
