"""Figure 8: relative throughput of the five methods over Q1..Q12.

Paper shape (C_max = 4, W = 12): the RL-driven hierarchical approach
achieves the highest average throughput, outperforming the baselines on
most workloads; every co-scheduling method beats Time Sharing on every
queue (constraint 1 guarantees >= 1). The paper reports 1.516 average /
1.873 best for the RL method on real hardware; the simulated platform
reproduces the ordering and the magnitude band rather than the exact
values (see EXPERIMENTS.md).
"""

from repro.core.actions import ActionCatalog
from repro.core.evaluation import METHODS
from repro.core.optimizer import OnlineOptimizer
from repro.workloads.generator import paper_queues


def test_fig8_throughput_comparison(method_results, training, eval_config, benchmark):
    qnames = [f"Q{i}" for i in range(1, 13)]

    print("\n=== Fig. 8: relative throughput vs Time Sharing ===")
    header = " ".join(f"{q:>5s}" for q in qnames)
    print(f"{'method':<18s} {header}    AM  best")
    for m in METHODS:
        r = method_results[m]
        row = " ".join(
            f"{r.per_queue[q].throughput_gain:5.2f}" for q in qnames
        )
        print(
            f"{m:<18s} {row} {r.mean_throughput:5.3f} {r.best_throughput:5.3f}"
        )

    rl = method_results["MIG+MPS w/ RL"]
    ts = method_results["Time Sharing"]
    # time sharing is identically 1
    assert all(
        abs(m.throughput_gain - 1.0) < 1e-9 for m in ts.per_queue.values()
    )
    # every co-scheduling method never loses to time sharing
    for name in METHODS[1:]:
        for q, metrics in method_results[name].per_queue.items():
            assert metrics.throughput_gain >= 1.0 - 1e-9, (name, q)
    # the RL method has the highest average throughput
    for name in METHODS[:-1]:
        assert rl.mean_throughput > method_results[name].mean_throughput, name
    # it wins or ties (within 5%) the best baseline on most queues
    wins = sum(
        rl.per_queue[q].throughput_gain
        >= 0.95 * max(method_results[m].per_queue[q].throughput_gain for m in METHODS[:-1])
        for q in qnames
    )
    assert wins >= 8, f"RL competitive on only {wins}/12 queues"
    # magnitude band: meaningful improvement, physically plausible ceiling
    assert 1.25 <= rl.mean_throughput <= 1.9
    assert rl.best_throughput >= 1.45

    # benchmark one full online decision pass (the deployable unit)
    optimizer = OnlineOptimizer(
        training.agent,
        training.repository,
        ActionCatalog(c_max=eval_config.c_max),
        eval_config.window_size,
    )
    window = paper_queues()["Q7"].window(12)
    benchmark(optimizer.optimize, window)
