"""Figure 5: comparison of the partitioning variants of Fig. 2.

Paper shape: for a 4-program mix with exhaustively chosen pairings and
splits, the hierarchical MIG+MPS option beats MPS-only and both
MIG-only extremes.
"""

from repro.perfmodel.calibration import FIG5_MIX, partition_option_comparison


def test_fig5_partitioning_options(benchmark):
    results = partition_option_comparison(list(FIG5_MIX))

    print("\n=== Fig. 5: partitioning options for mix", "+".join(FIG5_MIX), "===")
    for option, gain in results.items():
        print(f"  {option:<30s} {gain:.3f}")

    hierarchical = results["MIG+MPS Hierarchical"]
    assert hierarchical == max(results.values())
    assert hierarchical > 1.0
    assert results["MPS Only"] > 1.0

    benchmark(partition_option_comparison, list(FIG5_MIX))
