"""Figure 4: performance benefit of bandwidth partitioning.

Paper shape: with identical compute allocations (3+4 GPCs, one GPC
disabled by MIG), physically partitioning the memory resources beats
sharing them for interference-prone job mixes.
"""

from repro.perfmodel.calibration import FIG4_PAIRS, bandwidth_partitioning_gain


def test_fig4_shared_vs_partitioned(benchmark):
    print("\n=== Fig. 4: shared vs partitioned memory (3+4 GPC split) ===")
    results = {}
    for pair in FIG4_PAIRS:
        gains = bandwidth_partitioning_gain(*pair)
        results[pair] = gains
        print(
            f"  {pair[0]+'+'+pair[1]:<28s} shared {gains['shared']:.3f}  "
            f"partitioned {gains['partitioned']:.3f}"
        )

    for pair, gains in results.items():
        assert gains["partitioned"] > gains["shared"], pair
        assert gains["partitioned"] > 1.0, pair

    benchmark(bandwidth_partitioning_gain, *FIG4_PAIRS[0])
