"""Figure 12: fairness comparison (min/max slowdown, Mutlu 2008).

Paper shape (C_max = 4, W = 12): Time Sharing is perfectly fair (1.0);
the co-scheduling methods are comparable to each other, below Time
Sharing, with the RL method competitive in fairness despite winning in
throughput.
"""

import numpy as np

from repro.core.evaluation import METHODS


def test_fig12_fairness(method_results, benchmark):
    qnames = [f"Q{i}" for i in range(1, 13)]

    print("\n=== Fig. 12: fairness (min slowdown / max slowdown) ===")
    header = " ".join(f"{q:>5s}" for q in qnames)
    print(f"{'method':<18s} {header}    AM")
    for m in METHODS:
        r = method_results[m]
        row = " ".join(f"{r.per_queue[q].fairness:5.2f}" for q in qnames)
        print(f"{m:<18s} {row} {r.mean_fairness:5.3f}")

    ts = method_results["Time Sharing"]
    assert all(abs(m.fairness - 1.0) < 1e-9 for m in ts.per_queue.values())
    for m in METHODS:
        for q, metrics in method_results[m].per_queue.items():
            assert 0.0 < metrics.fairness <= 1.0 + 1e-9, (m, q)
    # co-scheduling trades fairness for throughput: all below 1
    co_methods = [m for m in METHODS if m != "Time Sharing"]
    for m in co_methods:
        assert method_results[m].mean_fairness < 1.0
    # the RL method is comparable with the other co-scheduling methods
    # (within the band spanned by them, not an outlier below)
    others = [
        method_results[m].mean_fairness
        for m in co_methods
        if m != "MIG+MPS w/ RL"
    ]
    rl = method_results["MIG+MPS w/ RL"].mean_fairness
    assert rl >= 0.8 * min(others)

    r = method_results["MIG+MPS w/ RL"].per_queue["Q1"]
    benchmark(lambda: np.min(r.app_slowdowns) / np.max(r.app_slowdowns))
