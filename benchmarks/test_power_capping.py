"""Power-capped scheduling sweep (paper Section VII future work).

Not a paper figure — quantifies the power extension: throughput and
energy as a function of the device power cap. Expected shape: a loose
cap reproduces the uncapped RL schedule; tightening the cap trades
throughput away while bounding the estimated group draw; co-scheduling
remains more energy-efficient than time sharing throughout (fewer
idle-power seconds per unit of work).
"""

import numpy as np

from repro.core.actions import ActionCatalog
from repro.core.baselines import TimeSharingScheduler
from repro.core.metrics import evaluate_schedule
from repro.power import PowerCappedOptimizer, PowerModel, schedule_energy
from repro.workloads.generator import paper_queues

CAPS = (9999.0, 220.0, 180.0, 150.0)
QUEUES = ("Q5", "Q7", "Q11")


def test_power_cap_sweep(training, eval_config, benchmark):
    pm = PowerModel()
    qs = paper_queues()
    rows = {}
    for cap in CAPS:
        optimizer = PowerCappedOptimizer(
            training.agent,
            training.repository,
            ActionCatalog(c_max=eval_config.c_max),
            eval_config.window_size,
            power_cap_watts=cap,
            power_model=pm,
        )
        gains, peaks, jps = [], [], []
        for q in QUEUES:
            schedule = optimizer.optimize(qs[q].window(12)).schedule
            gains.append(evaluate_schedule(schedule).throughput_gain)
            acct = schedule_energy(schedule, pm)
            peaks.append(acct["peak_watts"])
            jps.append(acct["joules_per_solo_second"])
        rows[cap] = (
            float(np.mean(gains)),
            float(np.max(peaks)),
            float(np.mean(jps)),
        )

    ts = TimeSharingScheduler()
    ts_jps = float(
        np.mean(
            [
                schedule_energy(ts.schedule(qs[q].window(12)), pm)[
                    "joules_per_solo_second"
                ]
                for q in QUEUES
            ]
        )
    )

    print("\n=== power-capped RL scheduling (mean over Q5/Q7/Q11) ===")
    print(f"{'cap [W]':>10s} {'throughput':>11s} {'peak [W]':>9s} {'J/solo-s':>9s}")
    for cap, (gain, peak, jp) in rows.items():
        label = "none" if cap > 1000 else f"{cap:.0f}"
        print(f"{label:>10s} {gain:11.3f} {peak:9.1f} {jp:9.1f}")
    print(f"{'(time sharing)':>10s} {'1.000':>11s} {'':9s} {ts_jps:9.1f}")

    uncapped = rows[CAPS[0]]
    tightest = rows[CAPS[-1]]
    # tightening the cap can only cost throughput
    assert tightest[0] <= uncapped[0] + 1e-9
    # true (model) peak draw decreases as the cap tightens
    assert tightest[1] <= uncapped[1] + 1e-9
    # co-scheduling stays more energy-efficient than time sharing
    assert uncapped[2] < ts_jps

    optimizer = PowerCappedOptimizer(
        training.agent,
        training.repository,
        ActionCatalog(c_max=eval_config.c_max),
        eval_config.window_size,
        power_cap_watts=200.0,
        power_model=pm,
    )
    window = qs["Q5"].window(12)
    benchmark(optimizer.optimize, window)
