"""Figure 11: average per-application slowdown per method.

Paper shape (C_max = 4, W = 12): co-scheduling trades individual
application slowdown for total throughput. MIG Only (C = 2) has the
smallest slowdown (limited concurrency), the RL method keeps slowdown
moderate while achieving the highest throughput; Time Sharing is
identically 1. The paper reports 1.829 average / 1.345 best-case for
the RL method.
"""

from repro.core.evaluation import METHODS


def test_fig11_app_slowdown(method_results, benchmark):
    qnames = [f"Q{i}" for i in range(1, 13)]

    print("\n=== Fig. 11: average per-application slowdown ===")
    header = " ".join(f"{q:>5s}" for q in qnames)
    print(f"{'method':<18s} {header}    AM")
    for m in METHODS:
        r = method_results[m]
        row = " ".join(f"{r.per_queue[q].avg_slowdown:5.2f}" for q in qnames)
        print(f"{m:<18s} {row} {r.mean_slowdown:5.3f}")

    ts = method_results["Time Sharing"]
    assert all(
        abs(m.avg_slowdown - 1.0) < 1e-9 for m in ts.per_queue.values()
    )
    mig = method_results["MIG Only (C=2)"]
    rl = method_results["MIG+MPS w/ RL"]
    # MIG Only's limited concurrency keeps slowdowns lowest among the
    # co-scheduling methods...
    co_methods = [m for m in METHODS if m != "Time Sharing"]
    assert mig.mean_slowdown == min(
        method_results[m].mean_slowdown for m in co_methods
    )
    # ...but its throughput is also the lowest of them (paper's point)
    assert mig.mean_throughput == min(
        method_results[m].mean_throughput for m in co_methods
    )
    # the RL method trades slowdown for throughput in a bounded band
    assert 1.0 < rl.mean_slowdown < 2.3
    best_queue = min(
        rl.per_queue.values(), key=lambda m: m.avg_slowdown
    )
    assert best_queue.avg_slowdown < rl.mean_slowdown

    r = method_results["MIG+MPS w/ RL"].per_queue["Q1"]
    benchmark(lambda: min(r.app_slowdowns) / max(r.app_slowdowns))
