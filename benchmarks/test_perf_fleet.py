"""Fleet-engine benchmark (the event-driven simulation PR's acceptance
gate).

Measures :func:`repro.insight.benchgate.measure_fleet_bench` — an
open-loop Poisson workload drained over a 1000-node fleet by the
discrete-event :class:`~repro.cluster.fleet.FleetEngine` (decision
cache warmed by a first drain; the timed drain measures the engine, not
cold scheduling misses).

Asserts the tentpole contract:

* **throughput** — >= 1M simulated job completions per wall-clock
  minute on a >= 1000-node fleet;
* **identity** — on a small cluster the engine's dispatch records and
  schedule fingerprints are bitwise-identical to the pre-existing
  :class:`ClusterScheduler` loop (the correctness oracle).

Results land in ``BENCH_fleet.json`` (override the path with
``REPRO_BENCH_FLEET_JSON``) — the file ``repro-gpu benchgate
--fleet-baseline`` ratchets in CI. Run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_fleet.py -m perf -s
"""

from __future__ import annotations

import json
import os

import pytest

from repro.insight.benchgate import (
    compare_fleet_bench,
    gate_passes,
    measure_fleet_bench,
)

pytestmark = [pytest.mark.perf, pytest.mark.fleet]

N_NODES = 1000
N_JOBS = 200_000
WARMUP_JOBS = 30_000
COMPLETIONS_PER_MIN_TARGET = 1e6

_BENCH_PATH = os.environ.get(
    "REPRO_BENCH_FLEET_JSON",
    os.path.join(os.path.dirname(__file__), "..", "BENCH_fleet.json"),
)


def test_fleet_throughput_and_identity():
    doc = measure_fleet_bench(
        n_nodes=N_NODES,
        n_jobs=N_JOBS,
        warmup_jobs=WARMUP_JOBS,
    )
    fleet = doc["fleet"]

    with open(_BENCH_PATH, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(
        f"\n=== fleet({N_NODES} nodes, {N_JOBS:,} arrivals): "
        f"{fleet['completions_per_min'] / 1e6:.2f}M completions/min "
        f"({fleet['windows']:,} windows, "
        f"simulated makespan {fleet['simulated_makespan']:,.0f}s, "
        f"utilization {fleet['utilization']:.3f}) ==="
    )

    # -- every arrival drained ----------------------------------------
    assert fleet["completed"] == N_JOBS

    # -- identity: the event engine must not change a single float ----
    assert fleet["identical_schedules"] is True

    assert fleet["completions_per_min"] >= COMPLETIONS_PER_MIN_TARGET

    # the freshly measured document must pass its own ratchet — the
    # gate CI applies against the committed baseline
    assert gate_passes(compare_fleet_bench(doc, doc))
