"""Two-level placement benchmark (the hierarchy PR's acceptance gate).

Measures :func:`repro.insight.benchgate.measure_hierarchy_bench` — a
:class:`~repro.hierarchy.trainer.JointTrainer` run (node-level DDQN
offline, placement DQN on prioritized-replay fleet rollouts), then one
held-out Poisson stream drained at 100 nodes under the trained agent
and the ``least-loaded`` / ``round-robin`` / ``random`` baselines, all
over the same node-level selector.

Asserts the tentpole contract:

* **makespan** — the trained two-level policy beats the best
  single-level baseline (including least-loaded + node-DDQN) on fleet
  makespan at >= 100 nodes;
* **fairness** — Jain's index over per-job slowdowns is no worse than
  least-loaded's (within 0.01);
* **identity** — with placement off, the fleet dispatch path stays
  bitwise-identical to the :class:`ClusterScheduler` oracle.

Results land in ``BENCH_hierarchy.json`` (override the path with
``REPRO_BENCH_HIERARCHY_JSON``) — the file ``repro-gpu benchgate
--hierarchy-baseline`` ratchets in CI. Run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_hierarchy.py -m perf -s
"""

from __future__ import annotations

import json
import os

import pytest

from repro.insight.benchgate import (
    compare_hierarchy_bench,
    gate_passes,
    measure_hierarchy_bench,
)

pytestmark = [pytest.mark.perf, pytest.mark.hierarchy]

N_NODES = 100
EVAL_JOBS = 2000

_BENCH_PATH = os.environ.get(
    "REPRO_BENCH_HIERARCHY_JSON",
    os.path.join(os.path.dirname(__file__), "..", "BENCH_hierarchy.json"),
)


def test_two_level_beats_single_level():
    doc = measure_hierarchy_bench(n_nodes=N_NODES, eval_jobs=EVAL_JOBS)
    h = doc["hierarchy"]

    with open(_BENCH_PATH, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")

    agent = h["policies"]["agent"]
    best = h["policies"][h["best_baseline"]]
    print(
        f"\n=== hierarchy({N_NODES} nodes, {EVAL_JOBS:,} arrivals): "
        f"agent makespan {agent['makespan']:,.1f}s vs best baseline "
        f"{h['best_baseline']} {best['makespan']:,.1f}s "
        f"({h['makespan_improvement_vs_best']:.2f}x, "
        f"{h['makespan_improvement']:.2f}x vs least-loaded; "
        f"fairness ratio {h['fairness_ratio']:.3f}) ==="
    )

    # -- every arrival drained under every policy ---------------------
    for policy in h["policies"].values():
        assert policy["completed"] == EVAL_JOBS

    # -- the two-level tentpole claims --------------------------------
    assert h["beats_baseline"] is True
    assert h["fairness_no_worse"] is True

    # -- flag-off wiring must not change a single float ---------------
    assert h["off_flag_identical"] is True

    # energy accounting is live for every drained policy
    for policy in h["policies"].values():
        assert policy["energy_joules"] > 0.0
        assert policy["perf_per_watt"] > 0.0

    # the freshly measured document must pass its own ratchet — the
    # gate CI applies against the committed baseline
    assert gate_passes(compare_hierarchy_bench(doc, doc))
