"""Table VII: partitioning setups per concurrency level.

Regenerates the variant enumeration for MPS Only and MIG+MPS w/ RL at
C = 2..4 and checks the structural claims: the MPS-only column is the
decile-split family; the hierarchical column adds the MIG shared /
private forms; and the 19 MIG GI configurations back the whole thing.
"""

from repro.gpu.arch import A100_40GB
from repro.gpu.mig import enumerate_gi_combinations
from repro.gpu.variants import (
    enumerate_hierarchical,
    enumerate_mps_only,
    variant_counts,
)


def test_table7_reproduction(benchmark):
    print("\n=== Table VII: partitioning setups per concurrency ===")
    for c in (2, 3, 4):
        mps = enumerate_mps_only(c)
        hier = enumerate_hierarchical(A100_40GB, c)
        print(f"  C={c}: MPS-only {len(mps)} variants; MIG+MPS {len(hier)} variants")
        for v in mps[:3]:
            print(f"      {v.label}")
        extra = [v for v in hier if v.kind != "mps_only"][:3]
        for v in extra:
            print(f"      {v.label}")

    # Table VII row structure
    assert len(enumerate_mps_only(2)) == 5  # (0.1,0.9)..(0.5,0.5)
    assert len(enumerate_mps_only(3)) == 8
    assert len(enumerate_mps_only(4)) == 9
    counts = variant_counts(A100_40GB, 4)
    for c in (2, 3, 4):
        hier = enumerate_hierarchical(A100_40GB, c)
        assert len(hier) == counts[c]
        assert len(hier) > len(enumerate_mps_only(c))
        for v in hier:
            v.tree.validate(A100_40GB)

    # the MIG substrate behind the table: 19 driver configurations
    assert len(enumerate_gi_combinations(A100_40GB)) == 19

    benchmark(enumerate_hierarchical, A100_40GB, 4)
