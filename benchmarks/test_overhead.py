"""Section V-B overhead accounting.

Two claims are reproduced:

* **online**: the throughput cost of the decision making is < 0.5% —
  measured as pure agent/assignment compute time against the executed
  schedule's makespan;
* **offline**: the search-space bound
  ``sum_{C=2..C_max} (W choose C) C! N_C`` lands at the order of 1e5
  configurations for W = 12, C_max = 4 (the paper's "10^5 x t_avg"),
  while the RL agent converges after visiting a tiny fraction of it.
"""

from math import comb, factorial

from repro.core.actions import ActionCatalog
from repro.core.optimizer import OnlineOptimizer
from repro.gpu.arch import A100_40GB
from repro.gpu.variants import variant_counts
from repro.workloads.generator import paper_queues


def search_space_bound(w: int, c_max: int) -> int:
    n_c = variant_counts(A100_40GB, c_max)
    return sum(comb(w, c) * factorial(c) * n_c[c] for c in range(2, c_max + 1))


def test_offline_search_space_bound(benchmark):
    bound = search_space_bound(12, 4)
    print(f"\n=== Offline search-space bound (W=12, C_max=4): {bound:,} ===")
    # the paper quotes "the order of 10^5"
    assert 1e5 <= bound < 5e6
    benchmark(search_space_bound, 12, 4)


def test_online_overhead_below_half_percent(training, eval_config, benchmark):
    optimizer = OnlineOptimizer(
        training.agent,
        training.repository,
        ActionCatalog(c_max=eval_config.c_max),
        eval_config.window_size,
    )
    overheads = []
    for qname in ("Q1", "Q5", "Q9"):
        window = paper_queues()[qname].window(12)
        decision = optimizer.optimize(window)
        overheads.append(decision.overhead_fraction)
    print(
        "\n=== Online decision overhead:",
        ", ".join(f"{o:.5%}" for o in overheads),
        "===",
    )
    assert max(overheads) < 0.005  # paper: < 0.5%

    window = paper_queues()["Q1"].window(12)
    benchmark(optimizer.optimize, window)
