"""Figure 10: average throughput vs maximum concurrency C_max (W = 12).

Paper shape: throughput grows with C_max — higher concurrency lets the
flexible MPS shares and MIG isolation pack more jobs productively —
and saturates by C_max = 4.
"""

from repro.core.evaluation import EvaluationConfig, cmax_sweep
import os

SWEEP_EPISODES = int(os.environ.get("REPRO_SWEEP_EPISODES", "800"))


def print_series(title, rows):
    print(f"\n=== {title} ===")
    for key, value in rows.items():
        print(f"  {key:<20s} {value:8.3f}")


def test_fig10_cmax_sweep(benchmark):
    base = EvaluationConfig(episodes=SWEEP_EPISODES)
    cmaxes = (2, 3, 4)
    gains = cmax_sweep(cmaxes=cmaxes, base=base)

    print_series(
        "Fig. 10: average throughput vs C_max (W = 12)",
        {f"C_max = {c}": g for c, g in gains.items()},
    )

    values = [gains[c] for c in cmaxes]
    assert values[-1] > values[0]  # C_max 4 beats C_max 2
    assert values[1] >= values[0] - 0.03
    assert all(v >= 1.0 for v in values)

    benchmark.pedantic(lambda: cmax_sweep(cmaxes=(2,), base=base), rounds=1, iterations=1)
