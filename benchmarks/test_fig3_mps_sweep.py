"""Figure 3: co-scheduling throughput vs MPS compute-resource split.

Paper shape: the optimal allocation depends on the program mix — two of
the pairs peak at a skewed split with a unique interior/extreme optimum,
the third peaks at a balanced split; all exceed the time-sharing line
(1.0) at their optimum.
"""

import numpy as np

from repro.perfmodel.calibration import FIG3_PAIRS, mps_sweep


def test_fig3_series_and_shape(benchmark):
    curves = {}
    for pair in FIG3_PAIRS:
        splits, gains = mps_sweep(*pair)
        curves[pair] = (splits, gains)

    print("\n=== Fig. 3: relative throughput vs compute allocation ===")
    header = "  ".join(f"{s:4.1f}" for s in curves[FIG3_PAIRS[0]][0])
    print(f"{'pair':<32s} {header}")
    for pair, (splits, gains) in curves.items():
        row = "  ".join(f"{g:4.2f}" for g in gains)
        print(f"{pair[0]+'+'+pair[1]:<32s} {row}")

    # shape: first two pairs peak off-center, third peaks centrally
    peak0 = int(np.argmax(curves[FIG3_PAIRS[0]][1]))
    peak1 = int(np.argmax(curves[FIG3_PAIRS[1]][1]))
    peak2 = int(np.argmax(curves[FIG3_PAIRS[2]][1]))
    assert peak0 >= 6 or peak0 <= 2
    assert peak1 >= 6 or peak1 <= 2
    assert 3 <= peak2 <= 5
    for pair, (_, gains) in curves.items():
        assert gains.max() > 1.0, pair
        # each curve has a unique optimum region (not flat)
        assert gains.max() - gains.min() > 0.1

    benchmark(mps_sweep, *FIG3_PAIRS[0])
