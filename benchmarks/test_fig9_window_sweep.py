"""Figure 9: average throughput vs window size W (C_max = 4).

Paper shape: throughput grows with the window size (a larger window
offers better co-scheduling group choices) and saturates around W = 12.
Each window size needs its own trained agent (the input layer is
W x (f + 5)), so this is the most training-heavy benchmark; sweeps use
the reduced REPRO_SWEEP_EPISODES budget.
"""

import numpy as np

from repro.core.evaluation import EvaluationConfig, window_size_sweep
import os

SWEEP_EPISODES = int(os.environ.get("REPRO_SWEEP_EPISODES", "800"))


def print_series(title, rows):
    print(f"\n=== {title} ===")
    for key, value in rows.items():
        print(f"  {key:<20s} {value:8.3f}")


def test_fig9_window_size_sweep(benchmark):
    base = EvaluationConfig(episodes=SWEEP_EPISODES)
    sizes = (4, 8, 12)
    gains = window_size_sweep(sizes=sizes, base=base)

    print_series(
        "Fig. 9: average throughput vs window size (C_max = 4)",
        {f"W = {w}": g for w, g in gains.items()},
    )

    values = [gains[w] for w in sizes]
    # monotone non-decreasing trend with saturation: the largest window
    # must beat the smallest clearly; the last step may flatten
    assert values[-1] > values[0]
    assert values[1] >= values[0] - 0.03
    assert values[2] >= values[1] - 0.03
    assert all(v >= 1.0 for v in values)

    # benchmark the cheap part: evaluating the cached W=12 agent once
    from repro.core.evaluation import evaluate_methods

    cfg = EvaluationConfig(episodes=SWEEP_EPISODES)
    benchmark.pedantic(
        evaluate_methods,
        kwargs={"config": cfg, "methods": ("MIG+MPS w/ RL",)},
        rounds=1,
        iterations=1,
    )
