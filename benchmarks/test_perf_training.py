"""Offline-training fast-path benchmark (the perf_opt acceptance gate).

Measures the A/B cost of ``OfflineTrainer.train(episodes=50)`` with the
memoized fast path on vs. off (``corun_cache_disabled``), asserting:

* **identity** — both modes produce bitwise-identical
  ``episode_returns``/``episode_throughputs`` for the fixed seed;
* **speedup** — the steady-state fast path delivers >= 3x episodes/sec
  (measured after a warm-up pass so the per-window tables and the
  process-wide co-run cache are past their first-10-episode fill, and
  best-of-N per mode to ride out scheduler noise);
* **hit rate** — the :class:`CoRunCache` serves > 50% of co-run
  evaluations after the first 10 episodes of a converged (greedy)
  rollout, the regime the online phase replays.

Results land in ``BENCH_training.json`` (override the path with
``REPRO_BENCH_JSON``). Run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_training.py -m perf -s
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.env import CoSchedulingEnv
from repro.core.trainer import OfflineTrainer
from repro.perfmodel.cache import (
    corun_cache,
    corun_cache_disabled,
    reset_corun_cache,
)

pytestmark = pytest.mark.perf

EPISODES = 50
TIMED_RUNS = 5
SPEEDUP_TARGET = 3.0
HIT_RATE_TARGET = 0.50

_BENCH_PATH = os.environ.get(
    "REPRO_BENCH_JSON",
    os.path.join(os.path.dirname(__file__), "..", "BENCH_training.json"),
)

_RESULTS: dict = {}


def _write_results() -> None:
    with open(_BENCH_PATH, "w") as fh:
        json.dump(_RESULTS, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.fixture(scope="module")
def repository():
    return OfflineTrainer().build_repository()


def test_fastpath_speedup_and_identity(repository):
    tr_on = OfflineTrainer()
    tr_off = OfflineTrainer()

    # Warm-up pass per mode: fills the co-run cache / window tables for
    # the fast path and pages in the shared NN/simulation code for both.
    with corun_cache_disabled():
        tr_off.train(episodes=EPISODES, repository=repository)
    reset_corun_cache()
    tr_on.train(episodes=EPISODES, repository=repository)

    off_times, on_times = [], []
    result_off = result_on = None
    for _ in range(TIMED_RUNS):
        with corun_cache_disabled():
            t0 = time.perf_counter()
            result_off = tr_off.train(episodes=EPISODES, repository=repository)
            off_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        result_on = tr_on.train(episodes=EPISODES, repository=repository)
        on_times.append(time.perf_counter() - t0)

    # -- identity: the fast path must not change a single float --------
    assert result_on.episode_returns == result_off.episode_returns
    assert result_on.episode_throughputs == result_off.episode_throughputs

    best_off, best_on = min(off_times), min(on_times)
    speedup = best_off / best_on
    eps_off = EPISODES / best_off
    eps_on = EPISODES / best_on

    # co-run evaluations served per second on the fast path: direct
    # cache lookups plus whole decisions replayed from the step memo
    # (each of which stands in for one group evaluation)
    corun = result_on.cache_stats["corun"]
    decisions = result_on.cache_stats["decisions"]
    evals = corun.lookups + decisions.hits

    _RESULTS["speedup"] = {
        "episodes": EPISODES,
        "timed_runs": TIMED_RUNS,
        "off_times_s": off_times,
        "on_times_s": on_times,
        "episodes_per_sec_reference": eps_off,
        "episodes_per_sec_fastpath": eps_on,
        "speedup": speedup,
        "corun_evals_per_sec_fastpath": evals / best_on,
        "corun_cache": corun.to_dict(),
        "decision_memo": decisions.to_dict(),
        "identical_returns": True,
    }
    _write_results()
    print(
        f"\n=== train({EPISODES}): {eps_off:.0f} -> {eps_on:.0f} eps/s "
        f"({speedup:.2f}x), {evals / best_on:,.0f} corun evals/s ==="
    )
    assert speedup >= SPEEDUP_TARGET


def test_corun_cache_hit_rate_after_first_10_episodes(repository):
    reset_corun_cache()
    trainer = OfflineTrainer()
    result = trainer.train(episodes=EPISODES, repository=repository)
    agent = result.agent
    agent.freeze()  # greedy: the converged regime the cache targets

    # A dedicated env with the step-decision memo off, so *every* group
    # evaluation reaches the CoRunCache and the measured rate is the
    # cache's own, not the residue the memo leaves behind.
    env = CoSchedulingEnv(
        windows=trainer._windows,
        repository=repository,
        catalog=trainer.catalog,
        window_size=trainer.window_size,
        reward_config=trainer.reward_config,
        seed=trainer.seed,
        binding=trainer.binding,
        memoize_decisions=False,
    )
    reset_corun_cache()
    snapshot = None
    for episode in range(EPISODES):
        if episode == 10:
            snapshot = corun_cache().stats
        obs, info = env.reset()
        done = False
        while not done:
            action = agent.act(obs, info["action_mask"])
            obs, _, terminated, truncated, info = env.step(action)
            done = terminated or truncated

    tail = corun_cache().stats.delta(snapshot)
    _RESULTS["hit_rate"] = {
        "episodes": EPISODES,
        "measured_after_episode": 10,
        "policy": "greedy",
        "corun_cache_tail": tail.to_dict(),
    }
    _write_results()
    print(
        f"\n=== CoRunCache hit rate after first 10 episodes: "
        f"{tail.hit_rate:.1%} ({tail.hits}/{tail.lookups}) ==="
    )
    assert tail.lookups > 0
    assert tail.hit_rate > HIT_RATE_TARGET
