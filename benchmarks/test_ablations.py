"""Ablations of the design choices DESIGN.md calls out.

Not a paper figure — these quantify the pieces this reproduction adds
on top of the paper's written specification:

* **binding strategy**: conflict-aware + predictor-arbitrated binding
  vs. the pure total-``r_i`` maximizer;
* **top-k predictor rerank** at inference: k = 5 vs. the plain argmax
  classifier (k = 1);
* **fairness-aware reward** (the paper's Section V-B extension): adding
  an unfairness penalty to the reward should buy fairness at a bounded
  throughput cost.

Each ablation trains its own (small-budget) agent, so this file is
skippable via ``-k 'not ablation'`` when in a hurry.
"""

import os

import numpy as np
import pytest

from repro.core.actions import ActionCatalog
from repro.core.evaluation import profile_all_benchmarks
from repro.core.metrics import evaluate_schedule
from repro.core.optimizer import OnlineOptimizer
from repro.core.rewards import RewardConfig
from repro.core.trainer import OfflineTrainer
from repro.workloads.generator import paper_queues

ABLATION_EPISODES = int(os.environ.get("REPRO_ABLATION_EPISODES", "500"))
QUEUES = ("Q1", "Q5", "Q7", "Q11")


def _evaluate(trainer, result, rerank_top_k=5):
    profile_all_benchmarks(result.repository)
    optimizer = OnlineOptimizer(
        result.agent,
        result.repository,
        ActionCatalog(c_max=trainer.c_max),
        trainer.window_size,
        rerank_top_k=rerank_top_k,
    )
    qs = paper_queues()
    metrics = [
        evaluate_schedule(optimizer.optimize(qs[q].window(12)).schedule)
        for q in QUEUES
    ]
    return (
        float(np.mean([m.throughput_gain for m in metrics])),
        float(np.mean([m.fairness for m in metrics])),
    )


@pytest.fixture(scope="module")
def base_training():
    trainer = OfflineTrainer(window_size=12, c_max=4, seed=0)
    return trainer, trainer.train(episodes=ABLATION_EPISODES)


def test_ablation_rerank_topk(base_training, benchmark):
    trainer, result = base_training
    gain_k5, _ = _evaluate(trainer, result, rerank_top_k=5)
    gain_k1, _ = _evaluate(trainer, result, rerank_top_k=1)
    print(
        f"\n=== ablation: top-k rerank  k=1 -> {gain_k1:.3f}, "
        f"k=5 -> {gain_k5:.3f} ==="
    )
    # the rerank must not hurt, and typically helps
    assert gain_k5 >= gain_k1 - 0.02
    benchmark.pedantic(
        _evaluate, args=(trainer, result), kwargs={"rerank_top_k": 1},
        rounds=1, iterations=1,
    )


def test_ablation_binding_strategy(benchmark):
    """Train with each binding strategy and compare.

    At the reduced ablation budget (500 episodes, 4 queues) the two
    strategies land within training noise of each other — the
    conflict-aware term's benefit shows at the group-search level (see
    the conflict-separation unit test) but is partially subsumed by the
    predictor arbitration and the agent's own learning. The assertion
    is therefore a sanity band, not an ordering.
    """
    results = {}
    for binding in ("auto", "optimal"):
        trainer = OfflineTrainer(
            window_size=12, c_max=4, seed=0, binding=binding
        )
        res = trainer.train(episodes=ABLATION_EPISODES)
        results[binding] = _evaluate(trainer, res)[0]
    print(
        f"\n=== ablation: binding  optimal(r_i only) -> "
        f"{results['optimal']:.3f}, auto(conflict-aware) -> "
        f"{results['auto']:.3f} ==="
    )
    assert abs(results["auto"] - results["optimal"]) < 0.15
    assert min(results.values()) > 1.2  # both remain strong policies
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_extension_fairness_reward(benchmark):
    plain_trainer = OfflineTrainer(window_size=12, c_max=4, seed=0)
    plain = plain_trainer.train(episodes=ABLATION_EPISODES)
    fair_trainer = OfflineTrainer(
        window_size=12,
        c_max=4,
        seed=0,
        reward_config=RewardConfig(fairness_weight=0.5),
    )
    fair = fair_trainer.train(episodes=ABLATION_EPISODES)

    gain_plain, fairness_plain = _evaluate(plain_trainer, plain)
    gain_fair, fairness_fair = _evaluate(fair_trainer, fair)
    print(
        f"\n=== extension: fairness-aware reward ===\n"
        f"  throughput-only : gain {gain_plain:.3f}, fairness {fairness_plain:.3f}\n"
        f"  +fairness term  : gain {gain_fair:.3f}, fairness {fairness_fair:.3f}"
    )
    # the paper's claim: fairness can be improved via the reward; allow
    # a bounded throughput cost
    assert fairness_fair >= fairness_plain - 0.02
    assert gain_fair >= 0.85 * gain_plain
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
