#!/usr/bin/env python3
"""Terminal dashboard over a telemetry artifact directory.

Reads the bundle that ``repro-gpu trace`` / ``repro-gpu cluster
--telemetry DIR`` writes (``trace.json``, ``metrics.prom``,
``timeline.json``) and prints a per-node timeline summary: busy/idle
split, group count, an ASCII utilization strip per GPU, and the
headline counters from the metrics exposition.

If insight artifacts are present in the same directory (``repro-gpu
alerts --out DIR`` / ``--insight DIR``) the dashboard also renders the
raised alerts (``alerts.jsonl``) and the worst decisions by attributed
regret (``regret.jsonl``).

Run:  python examples/telemetry_dashboard.py out/
      repro-gpu trace Q1 --episodes 50 --faults 0.05 --out out/   # to produce out/
      repro-gpu alerts Q1 --faults 0.05 --insight out --out out   # + insight
"""

import json
import os
import sys

STRIP_WIDTH = 60


def load_artifacts(out_dir: str):
    # zero-fill on missing/empty/corrupt artifacts: a crashed or
    # zero-completion run still renders a (mostly empty) dashboard
    timeline = {"makespan": 0.0, "utilization": 0.0, "devices": {}}
    timeline_path = os.path.join(out_dir, "timeline.json")
    if os.path.exists(timeline_path):
        try:
            with open(timeline_path) as fh:
                loaded = json.load(fh)
            if isinstance(loaded, dict):
                timeline = {**timeline, **loaded}
        except (OSError, ValueError):
            pass
    prom_path = os.path.join(out_dir, "metrics.prom")
    metrics: dict[str, float] = {}
    if os.path.exists(prom_path):
        with open(prom_path) as fh:
            for line in fh:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                name_part, _, value = line.rpartition(" ")
                base = name_part.split("{", 1)[0]
                try:
                    metrics[base] = metrics.get(base, 0.0) + float(value)
                except ValueError:
                    continue
    return timeline, metrics


def utilization_strip(intervals: list[dict], makespan: float) -> str:
    """One character per time slice: '#' busy, '.' idle."""
    if makespan <= 0:
        return "." * STRIP_WIDTH
    cells = [0.0] * STRIP_WIDTH
    cell_span = makespan / STRIP_WIDTH
    for iv in intervals:
        lo = int(iv["start"] / cell_span)
        hi = min(int(iv["end"] / cell_span), STRIP_WIDTH - 1)
        for c in range(lo, hi + 1):
            cell_lo = c * cell_span
            cell_hi = cell_lo + cell_span
            overlap = min(iv["end"], cell_hi) - max(iv["start"], cell_lo)
            cells[c] += max(overlap, 0.0)
    return "".join(
        "#" if c >= 0.5 * cell_span else "+" if c > 0 else "."
        for c in cells
    )


def load_jsonl(path: str) -> list[dict]:
    if not os.path.exists(path):
        return []
    rows = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def render_fleet_frames(out_dir: str) -> None:
    """Rollup frames from a ``repro-gpu fleet --telemetry`` run."""
    frames = load_jsonl(os.path.join(out_dir, "frames.jsonl"))
    if not frames:
        return
    last = frames[-1]
    print()
    print(f"fleet frames ({len(frames)}): "
          f"t={last.get('time', 0.0):.1f}s  "
          f"completed={last.get('completed', 0)}  "
          f"failed={last.get('failed', 0)}  "
          f"rejected={last.get('rejected', 0)}")
    for key, label in (
        ("pending", "pending"),
        ("busy_nodes", "busy nodes"),
        ("utilization", "utilization"),
        ("queue_wait_p95", "queue-wait p95 (s)"),
        ("decisions_per_sec", "decisions/sec"),
    ):
        series = [float(f.get(key, 0.0)) for f in frames]
        print(f"  {label:<20s} last={series[-1]:10.3f}  "
              f"max={max(series):10.3f}  "
              f"mean={sum(series) / len(series):10.3f}")


def render_lifecycle(out_dir: str) -> None:
    """Per-job span-tree outcomes from ``lifecycle.jsonl``."""
    records = load_jsonl(os.path.join(out_dir, "lifecycle.jsonl"))
    if not records:
        return
    outcomes: dict[str, int] = {}
    attempts = 0
    waits = []
    for record in records:
        outcome = str(record.get("outcome", "unknown"))
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        attempts += int(record.get("attempts", 0))
        if "wait" in record:
            waits.append(float(record["wait"]))
    mix = "  ".join(f"{k}={outcomes[k]}" for k in sorted(outcomes))
    print()
    print(f"lifecycle: {len(records)} jobs  {mix}  attempts={attempts}")
    if waits:
        print(f"  queue wait: mean={sum(waits) / len(waits):8.1f}s  "
              f"max={max(waits):8.1f}s")


def render_alerts(out_dir: str) -> None:
    path = os.path.join(out_dir, "alerts.jsonl")
    if not os.path.exists(path):
        return
    alerts = load_jsonl(path)
    print()
    if not alerts:
        print("alerts: none raised")
        return
    print(f"alerts ({len(alerts)}):")
    for a in alerts:
        print(f"  [{a['severity']:<8s}] {a['kind']:<18s} "
              f"t={a['ts']:8.1f}  {a['message']}")


def render_worst_decisions(out_dir: str, top: int = 5) -> None:
    path = os.path.join(out_dir, "regret.jsonl")
    if not os.path.exists(path):
        return
    windows = load_jsonl(path)
    decisions = [d for w in windows for d in w.get("decisions", [])]
    total = sum(w.get("regret_vs_oracle", 0.0) for w in windows)
    print()
    print(f"regret: {total:.1f}s vs. oracle over {len(windows)} windows")
    ranked = sorted(
        decisions, key=lambda d: -d.get("attributed_regret", 0.0)
    )[:top]
    if not ranked:
        return
    print(f"worst {len(ranked)} decisions:")
    for d in ranked:
        where = f"{d['source']}:{d['seq']}.{d['step']}"
        print(f"  {where:<12s} regret={d['attributed_regret']:7.1f}s  "
              f"q-gap={d['q_gap_to_greedy']:6.3f}  "
              f"[{', '.join(d['jobs'])}]")


def main() -> int:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "out"
    known = ("timeline.json", "frames.jsonl", "lifecycle.jsonl")
    if not any(os.path.exists(os.path.join(out_dir, n)) for n in known):
        print(
            f"no telemetry artifacts under {out_dir!r} — produce some with:\n"
            f"  repro-gpu trace Q1 --episodes 50 --faults 0.05 --out {out_dir}\n"
            f"  repro-gpu fleet --telemetry {out_dir}"
        )
        return 1
    timeline, metrics = load_artifacts(out_dir)
    makespan = timeline["makespan"]
    devices = timeline["devices"]

    print(f"telemetry bundle: {out_dir}/")
    print(f"makespan {makespan:.1f}s   "
          f"cluster utilization {timeline['utilization']:.1%}")
    print()
    for node in sorted(devices):
        intervals = devices[node]
        busy = sum(iv["duration"] for iv in intervals)
        idle = max(makespan - busy, 0.0)
        print(f"{node}  groups={len(intervals):3d}  "
              f"busy={busy:9.1f}s  idle={idle:8.1f}s  "
              f"util={busy / makespan if makespan else 0.0:6.1%}")
        print(f"      |{utilization_strip(intervals, makespan)}|")
    if metrics:
        print()
        print("counters:")
        for name in (
            "windows_dispatched_total",
            "jobs_completed_total",
            "jobs_failed_total",
            "job_requeues_total",
            "dispatch_retries_total",
            "degraded_groups_total",
            "policy_fallbacks_total",
            "faults_injected_total",
            "device_reconfigs_total",
        ):
            if name in metrics:
                print(f"  {name:28s} {metrics[name]:10.0f}")
    render_fleet_frames(out_dir)
    render_lifecycle(out_dir)
    render_alerts(out_dir)
    render_worst_decisions(out_dir)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
