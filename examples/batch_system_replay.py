#!/usr/bin/env python3
"""Trace replay through the Slurm-like batch system.

Scenario: a day in the life of a 2-GPU node under a bursty submission
trace. Jobs arrive over time (doubly-stochastic Poisson arrivals with
per-user program affinities); the batch system dispatches windows to
free GPUs, co-scheduling when the queue is crowded and falling back to
FCFS when it is not — the policy-selection mechanism of the paper's
Section VI. The same trace is replayed under always-FCFS for
comparison.

Run:  python examples/batch_system_replay.py [episodes]
"""

import sys

from repro import ActionCatalog, MixCategory, OfflineTrainer, OnlineOptimizer
from repro.cluster import (
    BatchSystem,
    ClusterState,
    CoSchedulingPolicy,
    FcfsPolicy,
    JobState,
    PolicySelector,
)
from repro.core.evaluation import profile_all_benchmarks
from repro.workloads.traces import generate_trace

EPISODES = int(sys.argv[1]) if len(sys.argv) > 1 else 300
N_JOBS = 48


def run_trace(optimizer, crowding_threshold: int) -> dict:
    trace = generate_trace(
        n_jobs=N_JOBS,
        mean_interarrival=2.0,
        category=MixCategory.BALANCED,
        burstiness=1.0,
        seed=99,
    )
    selector = PolicySelector(
        co_scheduling=CoSchedulingPolicy(optimizer),
        fcfs=FcfsPolicy(),
        crowding_threshold=crowding_threshold,
    )
    bs = BatchSystem(
        cluster=ClusterState.homogeneous(2),
        selector=selector,
        window_size=12,
        min_batch=2,
    )
    # event-driven replay: submit as jobs arrive, tick the clock along
    for event in trace:
        bs.tick(event.submit_time)
        bs.sbatch(event.benchmark_name, user=event.user)
    bs.drain()
    acct = bs.sacct()
    acct["policy_mix"] = {
        s.value: len(bs.squeue(s)) for s in JobState
    }
    return acct


def main() -> None:
    print(f"training the node-local agent ({EPISODES} episodes) ...")
    trainer = OfflineTrainer(window_size=12, c_max=4, seed=0)
    result = trainer.train(episodes=EPISODES)
    profile_all_benchmarks(result.repository)
    optimizer = OnlineOptimizer(
        result.agent, result.repository, ActionCatalog(c_max=4), 12
    )

    print(f"replaying a {N_JOBS}-job bursty trace on 2 GPUs ...\n")
    adaptive = run_trace(optimizer, crowding_threshold=3)
    fcfs_only = run_trace(optimizer, crowding_threshold=10**9)

    print(f"{'':<22s} {'adaptive policy':>16s} {'FCFS only':>12s}")
    for key in ("completed", "mean_wait", "mean_turnaround", "makespan"):
        a, f = adaptive[key], fcfs_only[key]
        if isinstance(a, float):
            print(f"{key:<22s} {a:16.1f} {f:12.1f}")
        else:
            print(f"{key:<22s} {a:16d} {f:12d}")
    print(
        f"\nturnaround improvement from adaptive co-scheduling: "
        f"x{fcfs_only['mean_turnaround'] / adaptive['mean_turnaround']:.2f}"
    )


if __name__ == "__main__":
    main()
