#!/usr/bin/env python3
"""Partition explorer — the paper's Section III analysis, interactive style.

Reproduces the observational study that motivates the paper:

* all 19 MIG configurations the A100 driver permits,
* a Fig. 3-style MPS sweep for chosen program pairs,
* the Fig. 4 shared-vs-private memory comparison,
* the Fig. 5 four-option shoot-out on a 4-program mix,

and cross-checks the analytic suite against the runnable NumPy
reference kernels (arithmetic intensity sanity check).

Run:  python examples/partition_explorer.py
"""

import numpy as np

from repro import A100_40GB
from repro.gpu.mig import enumerate_gi_combinations
from repro.perfmodel.calibration import (
    FIG3_PAIRS,
    FIG4_PAIRS,
    FIG5_MIX,
    bandwidth_partitioning_gain,
    mps_sweep,
    partition_option_comparison,
)
from repro.workloads.reference import REFERENCE_KERNELS, run_reference
from repro.workloads.suite import benchmark


def main() -> None:
    # ------------------------------------------------------------------
    print("=== the 19 A100 MIG configurations ===")
    for cfg in enumerate_gi_combinations(A100_40GB):
        slices = " + ".join(f"{w}g" for _, w in cfg)
        used = sum(w for _, w in cfg)
        note = "" if used == 7 else f"  ({7 - used} slice stranded by memory)"
        print(f"  {slices:<24s}{note}")

    # ------------------------------------------------------------------
    print("\n=== Fig. 3: throughput vs MPS split ===")
    splits = np.arange(0.1, 0.91, 0.1)
    header = "  ".join(f"{s:4.1f}" for s in splits)
    print(f"{'pair':<28s} {header}")
    for a, b in FIG3_PAIRS:
        _, gains = mps_sweep(a, b, splits)
        row = "  ".join(f"{g:4.2f}" for g in gains)
        marker = float(splits[np.argmax(gains)])
        print(f"{a + '+' + b:<28s} {row}   <- best at {marker:.1f}")

    # ------------------------------------------------------------------
    print("\n=== Fig. 4: shared vs private memory (same compute split) ===")
    for pair in FIG4_PAIRS:
        g = bandwidth_partitioning_gain(*pair)
        print(
            f"  {pair[0] + '+' + pair[1]:<26s} "
            f"shared {g['shared']:.3f} | partitioned {g['partitioned']:.3f}"
        )

    # ------------------------------------------------------------------
    print(f"\n=== Fig. 5: partitioning options for {'+'.join(FIG5_MIX)} ===")
    for option, gain in partition_option_comparison(list(FIG5_MIX)).items():
        bar = "#" * int(gain * 20)
        print(f"  {option:<28s} {gain:5.3f} {bar}")

    # ------------------------------------------------------------------
    print("\n=== reference kernels vs analytic models ===")
    print(f"{'program':<14s} {'AI[flop/B]':>11s} {'model class hint':<20s}")
    for name in sorted(REFERENCE_KERNELS):
        stats = run_reference(name)
        model = benchmark(name)
        hint = (
            "compute-leaning"
            if model.t_compute > model.t_memory
            else "memory-leaning"
        )
        print(f"{name:<14s} {stats.arithmetic_intensity:11.3f} {hint:<20s}")


if __name__ == "__main__":
    main()
