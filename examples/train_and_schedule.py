#!/usr/bin/env python3
"""Offline training + online scheduling — the paper's full pipeline.

Scenario: an over-crowded HPC cluster queue (the paper's Section VI
motivation). We train the dueling double DQN offline on random queues
of the 18 training programs, then deploy it online on the paper's
US-dominant queue Q7 — which contains programs the agent never saw in
training — and compare against the four baselines.

Training episodes are kept modest so the example finishes in a couple
of minutes; pass a higher count as argv[1] to approach the numbers in
EXPERIMENTS.md.

Run:  python examples/train_and_schedule.py [episodes]
"""

import sys

import numpy as np

from repro import (
    ActionCatalog,
    MigMpsDefaultScheduler,
    MigOnlyScheduler,
    MpsOnlyScheduler,
    OfflineTrainer,
    OnlineOptimizer,
    TimeSharingScheduler,
    evaluate_schedule,
    format_partition,
    paper_queues,
)
from repro.core.evaluation import profile_all_benchmarks

EPISODES = int(sys.argv[1]) if len(sys.argv) > 1 else 600


def main() -> None:
    # ------------------------------------------------------------------
    # offline phase: profile training programs, train the agent
    # ------------------------------------------------------------------
    trainer = OfflineTrainer(window_size=12, c_max=4, seed=0)
    print(f"offline training: 20 queues x {EPISODES} episodes ...")
    result = trainer.train(episodes=EPISODES)
    h = result.episode_throughputs
    print(
        f"  convergence: first 10% {np.mean(h[:max(1, len(h)//10)]):.3f} -> "
        f"last 10% {result.final_throughput:.3f} "
        f"(epsilon now {result.agent.epsilon:.3f})"
    )

    # the online phase has profiles for every program (first submissions
    # run exclusively and are profiled — here we fast-forward that)
    profile_all_benchmarks(result.repository)

    # ------------------------------------------------------------------
    # online phase: schedule Q7 (US-dominant, includes unseen programs)
    # ------------------------------------------------------------------
    window = paper_queues()["Q7"].window(12)
    optimizer = OnlineOptimizer(
        result.agent, result.repository, ActionCatalog(c_max=4), 12
    )
    decision = optimizer.optimize(window)

    print("\nRL schedule for Q7:")
    for i, group in enumerate(decision.schedule.groups):
        names = ", ".join(j.benchmark_name for j in group.jobs)
        print(
            f"  group {i}: C={group.concurrency} "
            f"{format_partition(group.partition):<52s} "
            f"t={group.corun_time:6.1f}s  [{names}]"
        )
    print(f"  decision overhead: {decision.overhead_fraction:.4%}")

    from repro.analysis import gantt

    print("\n" + gantt(decision.schedule))

    # ------------------------------------------------------------------
    # comparison against the paper's baselines
    # ------------------------------------------------------------------
    print(f"\n{'method':<18s} {'throughput':>10s} {'slowdown':>9s} {'fairness':>9s}")
    rows = {
        "Time Sharing": TimeSharingScheduler().schedule(window),
        "MIG Only (C=2)": MigOnlyScheduler(result.repository).schedule(window),
        "MPS Only": MpsOnlyScheduler(result.repository, 4).schedule(window),
        "MIG+MPS Default": MigMpsDefaultScheduler(
            result.repository, 4
        ).schedule(window),
        "MIG+MPS w/ RL": decision.schedule,
    }
    for name, schedule in rows.items():
        m = evaluate_schedule(schedule)
        print(
            f"{name:<18s} {m.throughput_gain:10.3f} "
            f"{m.avg_slowdown:9.3f} {m.fairness:9.3f}"
        )


if __name__ == "__main__":
    main()
