#!/usr/bin/env python3
"""Multi-GPU cluster simulation — the paper's Section VI extension.

Scenario: a 4-GPU node pool draining a 96-job backlog. The two-level
scheduler dispatches 12-job windows to the earliest-free GPU; the
per-window policy switches between the RL co-scheduler (crowded) and
FCFS (light load) via the policy selector the paper sketches as future
work. The run is repeated with plain FCFS everywhere to quantify the
cluster-level benefit of node-local co-scheduling.

Run:  python examples/cluster_simulation.py [episodes]
"""

import sys

from repro import ActionCatalog, MixCategory, OfflineTrainer, OnlineOptimizer, QueueGenerator
from repro.cluster import ClusterScheduler, ClusterState, CoSchedulingPolicy, FcfsPolicy, PolicySelector
from repro.core.evaluation import profile_all_benchmarks
from repro.workloads.jobs import JobQueue

EPISODES = int(sys.argv[1]) if len(sys.argv) > 1 else 400
N_GPUS = 4
BACKLOG = 96


def build_backlog(seed: int) -> JobQueue:
    gen = QueueGenerator(seed=seed, training_only=False)
    names: list[str] = []
    cats = list(MixCategory)
    for i in range(BACKLOG // 12):
        names.extend(gen.queue(cats[i % 4], w=12).benchmark_names)
    return JobQueue.from_benchmarks(names, name="backlog")


def main() -> None:
    print(f"training the node-local agent ({EPISODES} episodes) ...")
    trainer = OfflineTrainer(window_size=12, c_max=4, seed=0)
    result = trainer.train(episodes=EPISODES)
    profile_all_benchmarks(result.repository)

    optimizer = OnlineOptimizer(
        result.agent, result.repository, ActionCatalog(c_max=4), 12
    )
    selector = PolicySelector(
        co_scheduling=CoSchedulingPolicy(optimizer),
        fcfs=FcfsPolicy(),
        crowding_threshold=4,
    )

    print(f"\ndispatching {BACKLOG} jobs over {N_GPUS} GPUs (co-scheduling) ...")
    cluster = ClusterState.homogeneous(N_GPUS)
    scheduler = ClusterScheduler(cluster=cluster, selector=selector)
    scheduler.run(build_backlog(seed=42))
    co = scheduler.summary()

    print("re-running the same backlog with FCFS only ...")
    fcfs_selector = PolicySelector(
        co_scheduling=CoSchedulingPolicy(optimizer),
        fcfs=FcfsPolicy(),
        crowding_threshold=10**9,  # never crowded -> always FCFS
    )
    fcfs_cluster = ClusterState.homogeneous(N_GPUS)
    fcfs_sched = ClusterScheduler(cluster=fcfs_cluster, selector=fcfs_selector)
    fcfs_sched.run(build_backlog(seed=42))
    fc = fcfs_sched.summary()

    print("\n=== cluster results ===")
    print(f"{'':<24s} {'co-scheduling':>14s} {'FCFS':>10s}")
    print(f"{'makespan [s]':<24s} {co['makespan']:14.1f} {fc['makespan']:10.1f}")
    print(f"{'mean window gain':<24s} {co['mean_window_gain']:14.3f} {fc['mean_window_gain']:10.3f}")
    print(f"{'utilization':<24s} {co['utilization']:14.3f} {fc['utilization']:10.3f}")
    print(f"{'windows dispatched':<24s} {co['windows_dispatched']:14d} {fc['windows_dispatched']:10d}")
    speedup = fc["makespan"] / co["makespan"]
    print(f"\ncluster-level speedup from node-local co-scheduling: x{speedup:.2f}")
    print("windows per GPU:", co["windows_per_node"])


if __name__ == "__main__":
    main()
