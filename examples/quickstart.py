#!/usr/bin/env python3
"""Quickstart: profile, partition, co-run, and compare against time sharing.

Walks the public API end to end in under a minute:

1. spin up a simulated A100 and profile a handful of programs,
2. classify them (CI / MI / US, the paper's Table IV procedure),
3. co-run a 4-program group under three partitioning options — MPS-only,
   MIG-only (private memory), and hierarchical MIG+MPS — and compare
   their throughput against time sharing.

Run:  python examples/quickstart.py
"""

from repro import (
    Job,
    NsightProfiler,
    SimulatedGpu,
    classify,
    parse_partition,
    simulate_corun,
)
from repro.workloads.suite import benchmark

PROGRAMS = ["hotspot", "stream", "kmeans", "qs_Coral_P1"]


def main() -> None:
    # ------------------------------------------------------------------
    # 1. profile on the simulated device (solo + 1-GPC runs)
    # ------------------------------------------------------------------
    device = SimulatedGpu()
    profiler = NsightProfiler(device, noise=0.01)

    print("=== profiles ===")
    print(f"{'program':<14s} {'class':>5s} {'solo[s]':>8s} {'SM%':>6s} {'Mem%':>6s}")
    for name in PROGRAMS:
        profile = profiler.profile(Job.submit(name))
        cls = classify(profile)
        c = profile.counters
        print(
            f"{name:<14s} {cls:>5s} {profile.solo_time:8.2f} "
            f"{c.compute_sm_pct:6.1f} {c.memory_pct:6.1f}"
        )

    # ------------------------------------------------------------------
    # 2. co-run the group under different hierarchical partitions
    # ------------------------------------------------------------------
    # jobs bind to partition slots in order: qs and stream share the
    # 3-GPC compute instance (they need bandwidth / little compute),
    # kmeans and hotspot the 4-GPC one; one 7-GPC GI keeps the memory
    # shared so stream can burst to the full bandwidth
    corun_order = ["qs_Coral_P1", "stream", "kmeans", "hotspot"]
    models = [benchmark(n) for n in corun_order]
    solo_total = sum(m.solo_time for m in models)

    options = {
        # flat MPS shares on the whole GPU (no memory isolation)
        "MPS only": "[(0.1)+(0.2)+(0.2)+(0.5),1m]",
        # MIG 3+4 compute instances with MPS pairs inside each
        "MIG+MPS hierarchical": (
            "[(0.3)+(0.7),{0.375},(0.2)+(0.8),{0.5},1m]"
        ),
    }

    print(f"\n=== co-running {' + '.join(corun_order)} ===")
    print(f"time sharing: {solo_total:7.1f}s (baseline)")
    for label, notation in options.items():
        tree = parse_partition(notation)
        result = simulate_corun(models, tree)
        print(
            f"{label:<22s} {result.makespan:7.1f}s  "
            f"throughput x{result.throughput_gain:.2f}  "
            f"slowdowns {['%.2f' % s for s in result.slowdowns]}"
        )

    # ------------------------------------------------------------------
    # 3. drive the real device facade (MIG + MPS state machines)
    # ------------------------------------------------------------------
    jobs = [Job.submit(n) for n in corun_order]
    tree = parse_partition(options["MIG+MPS hierarchical"])
    record = device.run_group(jobs, tree)
    print(
        f"\ndevice executed the hierarchical group in "
        f"{record.corun.makespan:.1f}s "
        f"(clock now {device.clock:.1f}s, MIG layout "
        f"{device.mig.configuration()})"
    )


if __name__ == "__main__":
    main()
