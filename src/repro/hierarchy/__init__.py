"""Hierarchical resource partitioning, level two: cluster placement.

The paper's agent stops at one node — a dueling DDQN picking co-run
groups and MIG/MPS partitions for a single GPU. This package adds the
level the title promises: a cluster-level **placement agent** that
routes arriving jobs onto nodes, composed *above* the node-level agent
(which keeps deciding groups and partitions unchanged). The split
follows hierarchical RL practice (per-level observations, rewards, and
rollout storage) and the RL co-schedulers of Souza et al. and the
MIG-aware serving of Li et al. (MISO):

* :mod:`repro.hierarchy.features` — the fleet-level observation
  (queue depths, class mixes, idle structure, cache-hit likelihood);
* :mod:`repro.hierarchy.placement` — placement policies: classic
  baselines and the DQN :class:`PlacementAgent` (optionally on
  prioritized replay);
* :mod:`repro.hierarchy.policy` — :class:`HierarchicalPolicy`, the
  two-level bundle :class:`~repro.cluster.fleet.FleetEngine` accepts
  as a selector;
* :mod:`repro.hierarchy.env` — :class:`PlacementEnv`, fleet routing
  as a seeded, deterministic MDP;
* :mod:`repro.hierarchy.rollout` — DEHRL-style per-level rollout
  storage;
* :mod:`repro.hierarchy.trainer` — :class:`JointTrainer` (node level
  offline first, placement level on fleet rollouts, optional node
  fine-tuning) plus checkpointing and evaluation helpers.
"""

from repro.hierarchy.features import (
    N_GLOBAL_FEATURES,
    N_NODE_FEATURES,
    PlacementObservation,
    job_class_index,
)
from repro.hierarchy.placement import (
    LeastLoadedPlacement,
    PlacementAgent,
    PlacementConfig,
    PlacementPolicy,
    RandomPlacement,
    RoundRobinPlacement,
)
from repro.hierarchy.policy import HierarchicalPolicy
from repro.hierarchy.env import PlacementEnv, pair_affinity
from repro.hierarchy.rollout import JointRollout, LevelRollout, LevelStep
from repro.hierarchy.trainer import (
    JointTrainer,
    JointTrainingResult,
    evaluate_placement,
    load_joint,
)

__all__ = [
    "N_GLOBAL_FEATURES",
    "N_NODE_FEATURES",
    "PlacementObservation",
    "job_class_index",
    "PlacementPolicy",
    "LeastLoadedPlacement",
    "RoundRobinPlacement",
    "RandomPlacement",
    "PlacementConfig",
    "PlacementAgent",
    "HierarchicalPolicy",
    "PlacementEnv",
    "pair_affinity",
    "LevelStep",
    "LevelRollout",
    "JointRollout",
    "JointTrainer",
    "JointTrainingResult",
    "evaluate_placement",
    "load_joint",
]
