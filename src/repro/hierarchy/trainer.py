"""Joint training of the two hierarchy levels.

The node level first: an :class:`~repro.core.trainer.OfflineTrainer`
trains the partitioning DDQN exactly as in the paper, and the frozen
result becomes the node-level :class:`PolicySelector` (RL co-scheduling
above the crowding threshold, FCFS below). The placement level then
learns on top: epsilon-greedy rollouts through :class:`PlacementEnv`,
with per-level rollout storage (:class:`LevelRollout`) flushed into the
placement DQN after each episode — optionally through the prioritized
replay buffer.

Optionally the node level keeps learning too: every
``finetune_every`` placement episodes, the windows the fleet actually
dispatched are replayed through a :class:`CoSchedulingEnv` and the
node agent takes gradient steps on them (then re-freezes; its serving
decision cache is re-created because the cached schedules are stale
once weights move).

Checkpointing goes through :mod:`repro.rl.checkpoint` — one
fingerprinted ``.npz`` per level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster.fleet import FleetEngine, FleetResult
from repro.cluster.node import ClusterState
from repro.cluster.policy import CoSchedulingPolicy, FcfsPolicy, PolicySelector
from repro.core.actions import ActionCatalog
from repro.core.env import CoSchedulingEnv
from repro.core.evaluation import profile_all_benchmarks
from repro.core.optimizer import OnlineOptimizer
from repro.core.serving import DecisionCache
from repro.core.trainer import OfflineTrainer, TrainingResult
from repro.errors import ConfigurationError
from repro.hierarchy.env import PlacementEnv
from repro.hierarchy.placement import (
    PlacementAgent,
    PlacementConfig,
    PlacementPolicy,
)
from repro.hierarchy.policy import HierarchicalPolicy
from repro.hierarchy.rollout import JointRollout
from repro.rl.checkpoint import load_agent, save_agent
from repro.rl.dqn import DuelingDoubleDQNAgent
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.jobs import Job
from repro.workloads.suite import TRAINING_SET

__all__ = [
    "JointTrainingResult",
    "JointTrainer",
    "evaluate_placement",
    "PLACEMENT_CHECKPOINT",
    "NODE_CHECKPOINT",
]

PLACEMENT_CHECKPOINT = "placement.npz"
NODE_CHECKPOINT = "node.npz"


@dataclass
class JointTrainingResult:
    """Both trained levels plus per-episode learning curves."""

    placement: PlacementAgent
    node: TrainingResult
    policy: HierarchicalPolicy
    episode_returns: list[float] = field(default_factory=list)
    episode_makespans: list[float] = field(default_factory=list)
    episode_fairness: list[float] = field(default_factory=list)

    def save(self, directory: str | Path) -> dict[str, Path]:
        """Checkpoint both levels (fingerprinted, atomic)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = {
            "placement": directory / PLACEMENT_CHECKPOINT,
            "node": directory / NODE_CHECKPOINT,
        }
        save_agent(self.placement.dqn, paths["placement"])
        save_agent(self.node.agent, paths["node"])
        return paths


def load_joint(
    directory: str | Path,
) -> tuple[DuelingDoubleDQNAgent, DuelingDoubleDQNAgent]:
    """Restore ``(placement_dqn, node_dqn)`` from a joint checkpoint
    directory, architecture reconstructed from the fingerprints."""
    directory = Path(directory)
    return (
        load_agent(directory / PLACEMENT_CHECKPOINT),
        load_agent(directory / NODE_CHECKPOINT),
    )


class JointTrainer:
    """Trains placement over partitioning on fleet rollouts."""

    def __init__(
        self,
        n_nodes: int = 8,
        window_size: int = 6,
        c_max: int = 3,
        seed: int = 0,
        jobs_per_episode: int = 96,
        arrival_rate: float = 2.0,
        pool: list[str] | None = None,
        node_episodes: int = 20,
        node_queues: int = 4,
        node_overrides: dict | None = None,
        placement_overrides: dict | None = None,
        prioritized: bool = False,
        crowding_threshold: int = 1,
        finetune_every: int = 0,
        finetune_episodes: int = 1,
        wait_weight: float = 1.0,
        affinity_weight: float = 1.0,
        terminal_weight: float = 2.0,
        time_scale: float = 60.0,
    ) -> None:
        if min(n_nodes, jobs_per_episode, node_episodes) < 1:
            raise ConfigurationError("joint trainer sizes must be positive")
        if arrival_rate <= 0:
            raise ConfigurationError("arrival rate must be positive")
        self.n_nodes = n_nodes
        self.window_size = window_size
        self.c_max = c_max
        self.seed = seed
        self.jobs_per_episode = jobs_per_episode
        self.arrival_rate = arrival_rate
        self.pool = list(pool) if pool else sorted(TRAINING_SET)[:6]
        self.node_episodes = node_episodes
        self.node_queues = node_queues
        self.node_overrides = node_overrides or {
            "hidden": (64, 32),
            "warmup_transitions": 32,
            "batch_size": 16,
            "epsilon_decay_rate": 0.98,
        }
        self.placement_overrides = placement_overrides or {}
        self.prioritized = prioritized
        self.crowding_threshold = crowding_threshold
        self.finetune_every = finetune_every
        self.finetune_episodes = finetune_episodes
        self.wait_weight = wait_weight
        self.affinity_weight = affinity_weight
        self.terminal_weight = terminal_weight
        self.time_scale = time_scale
        # populated by train()
        self.node_trainer: OfflineTrainer | None = None
        self.repository = None
        self.optimizer: OnlineOptimizer | None = None
        self.selector: PolicySelector | None = None
        self.env: PlacementEnv | None = None

    # ------------------------------------------------------------------
    def _build_node_level(self) -> TrainingResult:
        self.node_trainer = OfflineTrainer(
            window_size=self.window_size,
            c_max=self.c_max,
            n_training_queues=self.node_queues,
            seed=self.seed,
            dqn_overrides=dict(self.node_overrides),
        )
        result = self.node_trainer.train(episodes=self.node_episodes)
        self.repository = result.repository.copy()
        profile_all_benchmarks(self.repository)
        self.optimizer = OnlineOptimizer(
            result.agent,
            self.repository,
            ActionCatalog(c_max=self.c_max),
            self.window_size,
            decision_cache=DecisionCache(),
        )
        self.selector = PolicySelector(
            co_scheduling=CoSchedulingPolicy(self.optimizer),
            fcfs=FcfsPolicy(),
            crowding_threshold=self.crowding_threshold,
        )
        return result

    def prepare_node_level(self) -> TrainingResult:
        """Train only the node level — for runs that pair the trained
        partitioning agent with a classic placement baseline. The
        serving ``selector`` and ``repository`` are populated after."""
        return self._build_node_level()

    def _arrival_factory(self, episode: int):
        return PoissonArrivals(
            rate=self.arrival_rate,
            pool=self.pool,
            n_jobs=self.jobs_per_episode,
            seed=self.seed * 1009 + episode,
        )

    # ------------------------------------------------------------------
    def train(self, episodes: int = 40) -> JointTrainingResult:
        """Node level offline, then ``episodes`` placement rollouts."""
        if episodes < 1:
            raise ConfigurationError("need at least one placement episode")
        node_result = self._build_node_level()
        agent = PlacementAgent(PlacementConfig(
            n_nodes=self.n_nodes,
            window_size=self.window_size,
            seed=self.seed,
            prioritized=self.prioritized,
            time_scale=self.time_scale,
            **self.placement_overrides,
        ))
        self.env = PlacementEnv(
            n_nodes=self.n_nodes,
            selector=self.selector,
            arrival_factory=self._arrival_factory,
            window_size=self.window_size,
            observation=agent.observation,
            candidate_k=agent.config.candidate_k,
            pool=self.pool,
            wait_weight=self.wait_weight,
            affinity_weight=self.affinity_weight,
            terminal_weight=self.terminal_weight,
            time_scale=self.time_scale,
            collect_windows=self.finetune_every > 0,
        )
        result = JointTrainingResult(
            placement=agent,
            node=node_result,
            policy=HierarchicalPolicy(
                placement=agent, selector=self.selector
            ),
        )
        rollouts = JointRollout(
            gammas={"placement": agent.config.gamma}
        )
        for episode in range(episodes):
            obs, info = self.env.reset()
            rollout = rollouts.level("placement")
            rollout.clear()
            done = False
            episode_return = 0.0
            while not done:
                action = agent.act(obs, info["action_mask"])
                next_obs, reward, terminated, truncated, info = (
                    self.env.step(action)
                )
                done = terminated or truncated
                rollout.insert(
                    obs, action, reward, next_obs, done,
                    info.get("action_mask"),
                )
                episode_return += reward
                obs = next_obs
            rollout.replay_into(agent)
            result.episode_returns.append(episode_return)
            result.episode_makespans.append(float(info["makespan"]))
            result.episode_fairness.append(float(info["fairness"]))
            if (
                self.finetune_every
                and (episode + 1) % self.finetune_every == 0
            ):
                self._finetune_node(node_result, episode)
        agent.freeze()
        return result

    def _finetune_node(
        self, node_result: TrainingResult, episode: int
    ) -> None:
        """Replay fleet-dispatched windows through the node-level env."""
        windows = [
            [Job.submit(name) for name in names]
            for names in self.env.collected_windows[-64:]
            if len(names) >= 2
        ]
        if not windows:
            return
        env = CoSchedulingEnv(
            windows=windows,
            repository=self.repository,
            catalog=self.node_trainer.catalog,
            window_size=self.window_size,
            reward_config=self.node_trainer.reward_config,
            seed=self.seed + 101 + episode,
            binding=self.node_trainer.binding,
        )
        node_agent = node_result.agent
        node_agent.unfreeze()
        for _ in range(self.finetune_episodes):
            obs, info = env.reset()
            done = False
            while not done:
                action = node_agent.act(obs, info["action_mask"])
                next_obs, reward, terminated, truncated, info = env.step(
                    action
                )
                done = terminated or truncated
                node_agent.observe(
                    obs, action, reward, next_obs, done,
                    info["action_mask"],
                )
                obs = next_obs
        node_agent.freeze()
        # cached schedules were computed under the old weights
        self.optimizer.decision_cache = DecisionCache()


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------
def evaluate_placement(
    placement: PlacementPolicy,
    selector: PolicySelector,
    n_nodes: int,
    arrivals,
    window_size: int = 6,
    power_model=None,
) -> FleetResult:
    """Drain one arrival process under a placement policy and report.

    Resets the policy first (round-robin cursor, random stream) so
    repeated evaluations are reproducible; agents should be frozen by
    the caller.
    """
    placement.reset()
    engine = FleetEngine(
        ClusterState.homogeneous(n_nodes),
        selector,
        window_size=window_size,
        placement=placement,
        power_model=power_model,
    )
    engine.attach_arrivals(arrivals)
    return engine.run()
