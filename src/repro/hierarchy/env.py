"""The placement environment: fleet routing as an MDP.

One episode replays one arrival trace against a fresh
:class:`~repro.cluster.fleet.FleetEngine`. At every arrival the agent
sees the :class:`~repro.hierarchy.features.PlacementObservation` and
picks a node; the environment feeds the job in through
:meth:`FleetEngine.place_job` (which runs a dispatch round), advances
the engine's event heap to the next arrival, and returns the next
observation. The node-level selector keeps choosing groups and
partitions inside each dispatched window — the environment trains
*only* the routing level, on top of whatever node-level policy it is
handed.

Reward is deterministic and dense:

* a **wait penalty** — the chosen node's time-until-free plus its
  queue backlog, in units of ``time_scale`` (the load-balancing term
  every baseline also optimizes);
* an **affinity bonus** — the mean predicted co-run throughput gain
  between the arriving job and the jobs already queued on that node,
  from the perf model's own pairwise half-GPU MPS simulations (the
  mix-awareness term *no* load-only baseline can see);
* a **terminal makespan term** — solo-equivalent work over
  ``n_nodes x makespan``, the fleet's packing efficiency.

Everything is seeded: same arrival trace + same policy state implies a
byte-identical placement trace (the determinism tests pin this).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

import numpy as np

from repro.cluster.fleet import FleetEngine
from repro.cluster.node import ClusterState
from repro.errors import ConfigurationError
from repro.gpu.variants import enumerate_mps_only
from repro.hierarchy.features import (
    PlacementObservation,
    node_finish_estimate,
)
from repro.hierarchy.placement import LeastLoadedPlacement
from repro.perfmodel.cache import cached_simulate_corun
from repro.rl.env import Env
from repro.rl.spaces import Box, Discrete
from repro.workloads.jobs import Job
from repro.workloads.suite import benchmark

__all__ = ["pair_affinity", "PlacementEnv"]


def _half_split_tree():
    """The symmetric 2-way MPS partition (0.5 + 0.5 of the device)."""
    for variant in enumerate_mps_only(2):
        fractions = [s.compute_fraction for s in variant.tree.slots()]
        if all(abs(f - 0.5) < 1e-9 for f in fractions):
            return variant.tree
    raise ConfigurationError("no symmetric 2-way MPS variant found")


def pair_affinity(pool: Iterable[str]) -> dict[tuple[str, str], float]:
    """Pairwise co-run throughput gains over a benchmark pool.

    ``gain(a, b) = (solo_a + solo_b) / corun_makespan`` under the
    half/half MPS split — >1 where co-running pays, <1 where
    interference dominates. Uses the process-wide co-run cache, so the
    table costs O(pool^2) simulations once per process.
    """
    names = sorted(set(pool))
    tree = _half_split_tree()
    table: dict[tuple[str, str], float] = {}
    for i, a in enumerate(names):
        for b in names[i:]:
            result = cached_simulate_corun(
                [benchmark(a), benchmark(b)], tree
            )
            table[(a, b)] = result.solo_run_time / result.makespan
    return table


class PlacementEnv(Env):
    """Gymnasium-style environment over fleet routing decisions.

    ``arrival_factory(episode_index)`` supplies each episode's arrival
    trace — any iterable of ``(time, benchmark_name)`` in
    non-decreasing time order (e.g.
    :class:`repro.workloads.arrivals.PoissonArrivals`).
    """

    def __init__(
        self,
        *,
        n_nodes: int,
        selector,
        arrival_factory: Callable[[int], Iterable[tuple[float, str]]],
        window_size: int = 6,
        observation: PlacementObservation | None = None,
        candidate_k: int = 8,
        pool: Iterable[str] | None = None,
        wait_weight: float = 1.0,
        affinity_weight: float = 1.0,
        terminal_weight: float = 2.0,
        time_scale: float = 60.0,
        collect_windows: bool = False,
    ) -> None:
        if n_nodes < 1:
            raise ConfigurationError("placement env needs at least one node")
        self.n_nodes = int(n_nodes)
        self.selector = selector
        self.arrival_factory = arrival_factory
        self.window_size = int(window_size)
        self.observation = observation or PlacementObservation(
            n_nodes, window_size, time_scale
        )
        if self.observation.n_nodes != self.n_nodes:
            raise ConfigurationError("observation/env node counts differ")
        self.candidate_k = int(candidate_k)
        self.wait_weight = float(wait_weight)
        self.affinity_weight = float(affinity_weight)
        self.terminal_weight = float(terminal_weight)
        self.time_scale = float(time_scale)
        self.collect_windows = bool(collect_windows)
        self._pair_gain = pair_affinity(pool) if pool is not None else None
        self.observation_space = Box(
            low=0.0, high=4.0, shape=(self.observation.n_inputs,)
        )
        self.action_space = Discrete(self.n_nodes)
        self.engine: FleetEngine | None = None
        self.collected_windows: list[tuple[str, ...]] = []
        self._episode = -1
        self._arrivals: list[tuple[float, str]] = []
        self._i = 0
        self._solo_sum = 0.0

    # ------------------------------------------------------------------
    def reset(
        self, *, seed: int | None = None, options: dict | None = None
    ) -> tuple[np.ndarray, dict[str, Any]]:
        self._episode += 1
        self._arrivals = [
            (float(t), str(name))
            for t, name in self.arrival_factory(self._episode)
        ]
        if not self._arrivals:
            raise ConfigurationError("episode needs at least one arrival")
        # fresh engine per episode; the selector (and its decision
        # cache) persists across episodes, like the serving fleet.
        # LeastLoadedPlacement only handles requeues — every arrival in
        # this trace is routed by the agent through place_job.
        self.engine = FleetEngine(
            ClusterState.homogeneous(self.n_nodes),
            self.selector,
            window_size=self.window_size,
            placement=LeastLoadedPlacement(),
        )
        self.engine.collect_windows = self.collect_windows
        self._i = 0
        self._solo_sum = 0.0
        t0, name0 = self._arrivals[0]
        self.engine.advance_to(t0)
        return self.observation.observe(self.engine, name0), {
            "action_mask": self.observation.candidate_mask(
                self.engine, self.candidate_k
            ),
            "time": t0,
            "benchmark": name0,
        }

    def step(
        self, action: int
    ) -> tuple[np.ndarray, float, bool, bool, dict[str, Any]]:
        if self.engine is None:
            raise ConfigurationError("call reset() before step()")
        engine = self.engine
        t, name = self._arrivals[self._i]
        node = int(action)
        reward = (
            -self.wait_weight * self._wait_penalty(engine, node)
            + self.affinity_weight * self._affinity_bonus(engine, node, name)
        )
        job = Job.submit(name)
        self._solo_sum += job.solo_time
        engine.place_job(node, job, at=t)
        self._i += 1
        if self._i == len(self._arrivals):
            result = engine.run()  # drain everything still in flight
            if self.collect_windows:
                self.collected_windows.extend(engine.collected_windows)
            makespan = max(result.makespan, 1e-9)
            reward += self.terminal_weight * (
                self._solo_sum / (self.n_nodes * makespan)
            )
            info: dict[str, Any] = {
                "action_mask": np.ones(self.n_nodes, dtype=bool),
                "result": result,
                "makespan": makespan,
                "fairness": engine.stats.fairness_jain,
                "placements": list(engine.placements),
            }
            obs = np.zeros(self.observation.n_inputs, dtype=np.float64)
            return obs, float(reward), True, False, info
        t_next, name_next = self._arrivals[self._i]
        engine.advance_to(t_next)
        obs = self.observation.observe(engine, name_next)
        return obs, float(reward), False, False, {
            "action_mask": self.observation.candidate_mask(
                engine, self.candidate_k
            ),
            "time": t_next,
            "benchmark": name_next,
        }

    # ------------------------------------------------------------------
    # reward terms
    # ------------------------------------------------------------------
    def _wait_penalty(self, engine: FleetEngine, node: int) -> float:
        """Estimated queueing delay the job inherits on this node
        (availability horizon + duration-aware solo backlog), in units
        of ``time_scale``."""
        return node_finish_estimate(engine, node) / self.time_scale

    def _affinity_bonus(
        self, engine: FleetEngine, node: int, name: str
    ) -> float:
        """Mean predicted co-run gain with the node's queued jobs,
        centered at 0 (no queue-mates or no table: 0)."""
        if self._pair_gain is None:
            return 0.0
        mates = [
            job.benchmark_name for job, _ in engine.node_queue(node)
        ][-(self.window_size - 1):] if self.window_size > 1 else []
        if not mates:
            return 0.0
        total = 0.0
        for mate in mates:
            key = (name, mate) if name <= mate else (mate, name)
            total += self._pair_gain.get(key, 1.0)
        return total / len(mates) - 1.0
