"""The two-level policy bundle.

:class:`HierarchicalPolicy` composes a cluster-level
:class:`~repro.hierarchy.placement.PlacementPolicy` over the existing
node-level :class:`~repro.cluster.policy.PolicySelector`. Handing one
to :class:`~repro.cluster.fleet.FleetEngine` as the ``selector``
switches the engine into hierarchical dispatch: the engine unwraps the
bundle, routes arrivals through the placement level, and keeps driving
the inner selector for groups and partitions exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.policy import PolicySelector
from repro.hierarchy.placement import PlacementPolicy
from repro.workloads.jobs import Job

__all__ = ["HierarchicalPolicy"]


@dataclass
class HierarchicalPolicy:
    """Placement (cluster level) over selection (node level).

    Also quacks like a :class:`PolicySelector` — ``select`` /
    ``schedule_batch`` / ``fcfs`` delegate to the inner selector — so
    it can stand anywhere a selector is expected.
    """

    placement: PlacementPolicy
    selector: PolicySelector

    @property
    def co_scheduling(self):
        return self.selector.co_scheduling

    @property
    def fcfs(self):
        return self.selector.fcfs

    @property
    def crowding_threshold(self) -> int:
        return self.selector.crowding_threshold

    def select(self, queue_depth: int, free_gpus: int):
        return self.selector.select(queue_depth, free_gpus)

    def schedule_batch(self, cuts: list[tuple[list[Job], object]]):
        return self.selector.schedule_batch(cuts)
