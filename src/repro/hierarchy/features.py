"""Fleet-level observation builder for the placement agent.

The cluster level sees a different world than the node level: not
kernel counters, but queueing structure. Per node the observation
carries

* queue depth (in windows) and busy/idle state,
* time until the node frees up (in units of ``time_scale``),
* the class histogram (CI/MI/US, Table IV) of the jobs already routed
  there — what the arriving job would co-run *with*,
* the class mix of the node's last-dispatched window (its running mix),
* the queued **solo-work backlog** in seconds — profiles make solo
  times known at placement time, and duration-aware backlog is what
  separates good routing from count-based least-loaded,
* the decision-cache hit likelihood: whether the window the node would
  cut next has been scheduled somewhere in the fleet before (the
  fleet-wide decision cache would then serve it from memory).

Globally it carries total backlog, the idle fraction, and a one-hot of
the arriving job's class. Everything is normalized to O(1) ranges so
one network serves fleets of any load.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.fleet import CLASS_RANK, FleetEngine, window_signature
from repro.errors import ConfigurationError
from repro.workloads.suite import PAPER_CLASSES

__all__ = [
    "N_NODE_FEATURES",
    "N_GLOBAL_FEATURES",
    "CORUN_SPEED",
    "job_class_index",
    "node_backlog_seconds",
    "node_finish_estimate",
    "PlacementObservation",
]

#: per-node feature block width
N_NODE_FEATURES = 11
#: trailing global feature block width
N_GLOBAL_FEATURES = 5

#: saturation ceiling for unbounded ratios (queue depths, horizons)
_CLIP = 4.0

#: assumed effective co-run concurrency when converting queued solo
#: seconds into wall seconds (the node level typically packs ~2 jobs'
#: worth of progress per unit time under C_max = 3..4)
CORUN_SPEED = 2.0


def job_class_index(benchmark_name: str) -> int:
    """CI/MI/US -> 0/1/2 (Table IV classes; unknown programs fall back
    to the unsaturated class)."""
    return CLASS_RANK.get(PAPER_CLASSES.get(benchmark_name, "US"), 2)


def node_backlog_seconds(engine: FleetEngine, index: int) -> float:
    """Wall-clock estimate of draining node ``index``'s queue: queued
    solo seconds compressed by the assumed co-run speed."""
    total = 0.0
    for job, _ in engine.node_queue(index):
        total += job.solo_time
    return total / CORUN_SPEED


def node_finish_estimate(engine: FleetEngine, index: int) -> float:
    """When node ``index`` would finish the work already routed to it:
    its availability horizon plus the queued backlog estimate."""
    until_free = max(
        engine.cluster.nodes[index].available_at - engine.now, 0.0
    )
    return until_free + node_backlog_seconds(engine, index)


class PlacementObservation:
    """Builds the placement agent's observation from a live engine.

    Pure read: consumes no RNG and mutates neither the engine nor any
    queue, so observing is bitwise-repeatable at a decision point.
    """

    def __init__(
        self, n_nodes: int, window_size: int, time_scale: float = 60.0
    ) -> None:
        if n_nodes < 1:
            raise ConfigurationError("placement needs at least one node")
        if window_size < 1:
            raise ConfigurationError("window size must be positive")
        if time_scale <= 0:
            raise ConfigurationError("time scale must be positive")
        self.n_nodes = int(n_nodes)
        self.window_size = int(window_size)
        self.time_scale = float(time_scale)

    @property
    def n_inputs(self) -> int:
        return self.n_nodes * N_NODE_FEATURES + N_GLOBAL_FEATURES

    # ------------------------------------------------------------------
    def observe(self, engine: FleetEngine, benchmark_name: str) -> np.ndarray:
        """The observation for routing ``benchmark_name`` now."""
        x = np.zeros(self.n_inputs, dtype=np.float64)
        now = engine.now
        w = float(self.window_size)
        nodes = engine.cluster.nodes
        total_pending = 0
        idle_nodes = 0
        for i in range(self.n_nodes):
            queue = engine.node_queue(i)
            depth = len(queue)
            total_pending += depth
            base = i * N_NODE_FEATURES
            x[base] = min(depth / w, _CLIP)
            if engine.node_is_idle(i):
                idle_nodes += 1
            else:
                x[base + 1] = 1.0
            until_free = max(nodes[i].available_at - now, 0.0)
            x[base + 2] = min(until_free / self.time_scale, _CLIP)
            if depth:
                hist = [0, 0, 0]
                for job, _ in queue:
                    hist[job_class_index(job.benchmark_name)] += 1
                for c in range(3):
                    x[base + 3 + c] = hist[c] / depth
            mix = engine.node_mix(i)
            running = mix[0] + mix[1] + mix[2]
            if running:
                for c in range(3):
                    x[base + 6 + c] = mix[c] / running
            x[base + 9] = min(
                node_backlog_seconds(engine, i) / self.time_scale, _CLIP
            )
            # cache-hit likelihood: the window this node would cut next
            # if the arriving job lands here
            names = [job.benchmark_name for job, _ in queue]
            names = names[: self.window_size - 1]
            names.append(benchmark_name)
            if engine.window_seen(window_signature(names)):
                x[base + 10] = 1.0
        g = self.n_nodes * N_NODE_FEATURES
        x[g] = min(total_pending / (self.n_nodes * w), _CLIP)
        x[g + 1] = idle_nodes / self.n_nodes
        x[g + 2 + job_class_index(benchmark_name)] = 1.0
        return x

    def candidate_mask(self, engine: FleetEngine, k: int) -> np.ndarray:
        """Restrict actions to the ``k`` earliest-finishing nodes
        (availability horizon + queued solo backlog, ties by index).

        ``k <= 0`` (or ``k >= n_nodes``) means no restriction. Masking
        keeps the agent's exploration from ever producing a
        catastrophically imbalanced fleet — it chooses *which* of the
        temporally-best nodes gets the job, the dimension where
        workload-mix awareness pays.
        """
        n = self.n_nodes
        if k <= 0 or k >= n:
            return np.ones(n, dtype=bool)
        order = sorted(
            range(n),
            key=lambda i: (node_finish_estimate(engine, i), i),
        )
        mask = np.zeros(n, dtype=bool)
        for i in order[:k]:
            mask[i] = True
        return mask
