"""Per-level rollout storage for hierarchical training (DEHRL-style).

Each level of the hierarchy — placement above, partitioning below —
operates on its own timescale with its own transition stream, so each
gets its own :class:`LevelRollout`: an on-policy episode buffer that
accumulates ``(s, a, r, s', done, mask)`` tuples during the episode
and flushes them into that level's learner afterwards. The
:class:`JointRollout` bundles one rollout per level for the joint
trainer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["LevelStep", "LevelRollout", "JointRollout"]


@dataclass(frozen=True)
class LevelStep:
    """One transition of one hierarchy level."""

    observation: np.ndarray
    action: int
    reward: float
    next_observation: np.ndarray
    done: bool
    next_mask: np.ndarray | None


class LevelRollout:
    """Episode storage for one hierarchy level."""

    def __init__(self, level: str, gamma: float = 1.0) -> None:
        if not 0.0 <= gamma <= 1.0:
            raise ConfigurationError("gamma must be in [0, 1]")
        self.level = str(level)
        self.gamma = float(gamma)
        self.steps: list[LevelStep] = []

    def insert(
        self,
        observation: np.ndarray,
        action: int,
        reward: float,
        next_observation: np.ndarray,
        done: bool,
        next_mask: np.ndarray | None = None,
    ) -> None:
        self.steps.append(LevelStep(
            observation=np.asarray(observation, dtype=np.float64),
            action=int(action),
            reward=float(reward),
            next_observation=np.asarray(next_observation, dtype=np.float64),
            done=bool(done),
            next_mask=None if next_mask is None
            else np.asarray(next_mask, dtype=bool),
        ))

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def total_reward(self) -> float:
        return float(sum(s.reward for s in self.steps))

    def returns(self) -> np.ndarray:
        """Discounted return-to-go per step (diagnostics)."""
        out = np.zeros(len(self.steps), dtype=np.float64)
        acc = 0.0
        for i in range(len(self.steps) - 1, -1, -1):
            step = self.steps[i]
            if step.done:
                acc = 0.0
            acc = step.reward + self.gamma * acc
            out[i] = acc
        return out

    def replay_into(self, learner) -> float | None:
        """Flush the episode into a learner's ``observe`` (any object
        with the DQN agent's observe signature). Returns the mean loss
        over the gradient steps that actually ran, or ``None`` if the
        learner was still warming up throughout."""
        losses = [
            loss
            for step in self.steps
            if (loss := learner.observe(
                step.observation,
                step.action,
                step.reward,
                step.next_observation,
                step.done,
                step.next_mask,
            )) is not None
        ]
        return float(np.mean(losses)) if losses else None

    def clear(self) -> None:
        self.steps.clear()


class JointRollout:
    """One rollout per hierarchy level, created on first use."""

    def __init__(self, gammas: dict[str, float] | None = None) -> None:
        self._gammas = dict(gammas or {})
        self.levels: dict[str, LevelRollout] = {}

    def level(self, name: str) -> LevelRollout:
        if name not in self.levels:
            self.levels[name] = LevelRollout(
                name, self._gammas.get(name, 1.0)
            )
        return self.levels[name]

    def clear(self) -> None:
        for rollout in self.levels.values():
            rollout.clear()
