"""Cluster-level placement policies: the routing level of the hierarchy.

Every policy answers one question — *which node gets this arriving
job?* — through :meth:`PlacementPolicy.place`. Three classic baselines
(`least-loaded`, `round-robin`, `random`) bracket the learned
:class:`PlacementAgent`, a small dueling double DQN over the
:class:`~repro.hierarchy.features.PlacementObservation` that reuses the
:mod:`repro.rl` stack end to end and can opt into the sum-tree
prioritized replay buffer (:class:`repro.rl.replay.PrioritizedReplayBuffer`)
with importance-sampling-corrected updates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.fleet import FleetEngine
from repro.errors import ConfigurationError
from repro.hierarchy.features import PlacementObservation
from repro.rl.dqn import DQNConfig, DuelingDoubleDQNAgent
from repro.rl.optim import clip_grad_norm
from repro.rl.replay import PrioritizedReplayBuffer
from repro.workloads.jobs import Job

__all__ = [
    "PlacementPolicy",
    "LeastLoadedPlacement",
    "RoundRobinPlacement",
    "RandomPlacement",
    "PlacementConfig",
    "PlacementAgent",
]

_NEG_INF = -1e18


class PlacementPolicy:
    """Decides, per admitted arrival, which node's queue receives it."""

    name = "base"

    def place(self, engine: FleetEngine, job: Job, now: float) -> int:
        raise NotImplementedError  # pragma: no cover

    def place_with_info(
        self, engine: FleetEngine, job: Job, now: float
    ) -> tuple[int, dict]:
        """:meth:`place` plus decision provenance for lifecycle tracing.

        The contract is strict: implementations must consume exactly the
        randomness :meth:`place` consumes, so a traced run's routing is
        bitwise-identical to an untraced one. Baselines return no extra
        provenance; the learned agent adds its top-k alternative
        ranking.
        """
        return self.place(engine, job, now), {}

    def reset(self) -> None:
        """Return to the initial (reproducible) state."""


class LeastLoadedPlacement(PlacementPolicy):
    """Route to the node with the shortest queue (ties: earliest
    available, then lowest index) — the strongest classic baseline."""

    name = "least-loaded"

    def place(self, engine: FleetEngine, job: Job, now: float) -> int:
        nodes = engine.cluster.nodes
        best = 0
        best_key = None
        for i in range(len(nodes)):
            key = (len(engine.node_queue(i)), nodes[i].available_at, i)
            if best_key is None or key < best_key:
                best_key = key
                best = i
        return best


class RoundRobinPlacement(PlacementPolicy):
    """Cycle through nodes in index order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def place(self, engine: FleetEngine, job: Job, now: float) -> int:
        index = self._next % len(engine.cluster.nodes)
        self._next += 1
        return index

    def reset(self) -> None:
        self._next = 0


class RandomPlacement(PlacementPolicy):
    """Uniform random node, from a seeded stream."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)

    def place(self, engine: FleetEngine, job: Job, now: float) -> int:
        return int(self._rng.integers(0, len(engine.cluster.nodes)))

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)


# ----------------------------------------------------------------------
# the learned policy
# ----------------------------------------------------------------------
@dataclass
class PlacementConfig:
    """Hyper-parameters of the placement-level DQN.

    Deliberately smaller than the node level's Table VI settings: the
    placement decision is near-bandit (small ``gamma``), its state is a
    load snapshot rather than kernel counters, and ``candidate_k``
    masks actions to the k least-loaded nodes so exploration never
    wrecks fleet balance.
    """

    n_nodes: int = 0  # required
    window_size: int = 6
    hidden: tuple[int, ...] = (128, 64)
    gamma: float = 0.6
    lr: float = 1e-3
    batch_size: int = 32
    replay_capacity: int = 50_000
    warmup_transitions: int = 64
    target_sync_every: int = 100
    grad_clip: float = 10.0
    epsilon_start: float = 1.0
    epsilon_end: float = 0.02
    epsilon_decay_rate: float = 0.995
    seed: int = 0
    candidate_k: int = 8
    time_scale: float = 60.0
    prioritized: bool = False
    per_alpha: float = 0.6
    per_beta: float = 0.4

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError("PlacementConfig.n_nodes must be set")
        if self.window_size < 1:
            raise ConfigurationError("window size must be positive")


class PlacementAgent(PlacementPolicy):
    """The learned routing policy: epsilon-greedy over nodes.

    Wraps a :class:`DuelingDoubleDQNAgent` whose action space is the
    node set. Acting is available both through the engine-facing
    :meth:`place` (observation built internally) and the env-facing
    :meth:`act` (observation supplied by :class:`PlacementEnv`). With
    ``prioritized=True`` the replay buffer is the seeded sum-tree
    :class:`PrioritizedReplayBuffer` and gradient steps apply the
    importance-sampling weights and refresh priorities from fresh TD
    errors; otherwise learning delegates to the DQN's uniform path
    unchanged.
    """

    name = "agent"

    def __init__(self, config: PlacementConfig) -> None:
        self.config = config
        self.observation = PlacementObservation(
            config.n_nodes, config.window_size, config.time_scale
        )
        self.dqn = DuelingDoubleDQNAgent(DQNConfig(
            n_inputs=self.observation.n_inputs,
            n_actions=config.n_nodes,
            hidden=config.hidden,
            gamma=config.gamma,
            lr=config.lr,
            batch_size=config.batch_size,
            replay_capacity=config.replay_capacity,
            warmup_transitions=config.warmup_transitions,
            target_sync_every=config.target_sync_every,
            grad_clip=config.grad_clip,
            epsilon_start=config.epsilon_start,
            epsilon_end=config.epsilon_end,
            epsilon_decay_rate=config.epsilon_decay_rate,
            seed=config.seed,
        ))
        if config.prioritized:
            self.dqn.replay = PrioritizedReplayBuffer(
                config.replay_capacity,
                seed=config.seed,
                alpha=config.per_alpha,
                beta=config.per_beta,
            )

    # ------------------------------------------------------------------
    # acting
    # ------------------------------------------------------------------
    def place(self, engine: FleetEngine, job: Job, now: float) -> int:
        obs = self.observation.observe(engine, job.benchmark_name)
        mask = self.observation.candidate_mask(engine, self.config.candidate_k)
        return int(self.dqn.act(obs, mask))

    def place_with_info(
        self, engine: FleetEngine, job: Job, now: float, top_k: int = 5
    ) -> tuple[int, dict]:
        """Route plus provenance: the epsilon-greedy choice (exactly one
        :meth:`act` call — the same RNG draw :meth:`place` makes) and the
        greedy top-k ``[node, q]`` ranking from a pure forward pass."""
        obs = self.observation.observe(engine, job.benchmark_name)
        mask = self.observation.candidate_mask(engine, self.config.candidate_k)
        chosen = int(self.dqn.act(obs, mask))
        q = self.dqn.online.infer(obs[None, :])[0]
        q = np.where(mask, q, -np.inf)
        order = np.argsort(-q, kind="stable")
        alternatives = [
            [int(i), float(q[i])] for i in order[:top_k] if np.isfinite(q[i])
        ]
        info = {
            "alternatives": alternatives,
            "epsilon": float(self.dqn.epsilon),
            "greedy": bool(alternatives) and alternatives[0][0] == chosen,
        }
        return chosen, info

    def act(self, state: np.ndarray, mask: np.ndarray | None = None) -> int:
        return self.dqn.act(state, mask)

    def freeze(self) -> None:
        self.dqn.freeze()

    def unfreeze(self) -> None:
        self.dqn.unfreeze()

    # ------------------------------------------------------------------
    # learning
    # ------------------------------------------------------------------
    def observe(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
        next_mask: np.ndarray | None = None,
    ) -> float | None:
        """Store a transition and train when warm (PER-aware)."""
        replay = self.dqn.replay
        if not isinstance(replay, PrioritizedReplayBuffer):
            return self.dqn.observe(
                state, action, reward, next_state, done, next_mask
            )
        if next_mask is None:
            next_mask = np.ones(self.dqn.config.n_actions, dtype=bool)
        replay.push(state, action, reward, next_state, done, next_mask)
        if len(replay) < self.dqn._warm_threshold:
            return None
        return self.train_step_per()

    def train_step_per(self) -> float:
        """One prioritized minibatch update.

        Identical targets and loss to
        :meth:`DuelingDoubleDQNAgent.train_step`, with two PER
        additions (Schaul et al. 2016): gradients are scaled by the
        max-normalized importance-sampling weights, and the sampled
        rows' priorities are refreshed from the fresh ``|td|`` errors.
        """
        agent = self.dqn
        cfg = agent.config
        replay = agent.replay
        if not isinstance(replay, PrioritizedReplayBuffer):
            raise ConfigurationError(
                "train_step_per needs a PrioritizedReplayBuffer"
            )
        batch, rows, weights = replay.sample_prioritized(cfg.batch_size)

        dead = ~batch.next_masks.any(axis=1)
        q_next_target = agent.target.infer(batch.next_states)
        if cfg.use_double:
            q_sel = agent.online.infer(batch.next_states)
        else:
            q_sel = q_next_target
        q_sel = np.where(batch.next_masks, q_sel, _NEG_INF)
        a_star = np.argmax(q_sel, axis=1)
        bootstrap = q_next_target[np.arange(len(batch)), a_star]
        bootstrap[batch.dones | dead] = 0.0
        targets = batch.rewards + cfg.gamma * bootstrap

        q = agent.online.forward(batch.states)
        taken = q[np.arange(len(batch)), batch.actions]
        td = taken - targets

        delta = cfg.huber_delta
        grad_taken = weights * np.clip(td, -delta, delta) / len(batch)
        loss = float(
            np.mean(
                weights * np.where(
                    np.abs(td) <= delta,
                    0.5 * td**2,
                    delta * (np.abs(td) - 0.5 * delta),
                )
            )
        )

        grad_q = np.zeros_like(q)
        grad_q[np.arange(len(batch)), batch.actions] = grad_taken
        agent.online.zero_grad()
        agent.online.backward(grad_q)
        clip_grad_norm(agent.online.parameters(), cfg.grad_clip)
        agent.optimizer.step()

        replay.update_priorities(rows, np.abs(td))

        agent.train_steps += 1
        if agent.train_steps % cfg.target_sync_every == 0:
            agent.target.load_state_dict(agent.online.state_dict())
        agent.loss_history.append(loss)
        return loss
