"""repro — hierarchical GPU resource partitioning via reinforcement learning.

A full reproduction of *"Hierarchical Resource Partitioning on Modern
GPUs: A Reinforcement Learning Approach"* (Saroliya, Arima, Liu, Schulz —
IEEE CLUSTER 2023) on a simulated A100-class platform.

Quick tour (see ``examples/quickstart.py`` for a runnable version)::

    from repro import (
        OfflineTrainer, OnlineOptimizer, ActionCatalog,
        evaluate_schedule, paper_queues,
    )

    trainer = OfflineTrainer(window_size=12, c_max=4)
    result = trainer.train(episodes=2000)            # offline phase
    optimizer = OnlineOptimizer(                     # online phase
        result.agent, result.repository,
        ActionCatalog(c_max=4), window_size=12,
    )
    window = paper_queues()["Q7"].window(12)
    decision = optimizer.optimize(window)
    print(evaluate_schedule(decision.schedule))

Subpackages:

=================== ========================================================
``repro.gpu``       simulated A100: MIG, MPS, hierarchical partitions
``repro.workloads`` the 27-program benchmark suite + queue generators
``repro.perfmodel`` roofline + interference co-run performance model
``repro.profiling`` Nsight-like counters, repository, CI/MI/US classifier
``repro.rl``        NumPy dueling double DQN, replay, gym-style env API
``repro.core``      the paper's contribution: problem, rewards, trainer,
                    online optimizer, baselines, metrics, evaluation harness
``repro.cluster``   Section VI multi-GPU extension
``repro.faults``    deterministic fault injection for the serving path
``repro.telemetry`` metrics registry, sim-clock tracer, Perfetto/Prometheus
                    exporters for the scheduler, devices, and trainer
=================== ========================================================
"""

from repro.gpu.arch import A100_40GB, A30_24GB, GpuSpec
from repro.gpu.device import SimulatedGpu
from repro.gpu.partition import PartitionTree, format_partition, parse_partition
from repro.gpu.variants import action_catalog
from repro.profiling.profiler import JobProfile, NsightProfiler
from repro.profiling.repository import ProfileRepository
from repro.profiling.classify import classify
from repro.workloads.jobs import Job, JobQueue
from repro.workloads.generator import MixCategory, QueueGenerator, paper_queues
from repro.workloads.suite import BENCHMARKS, TRAINING_SET, UNSEEN_SET
from repro.perfmodel.corun import simulate_corun, relative_throughput
from repro.faults import FaultConfig, FaultInjector, FaultKind, RetryPolicy
from repro.telemetry import (
    MetricsRegistry,
    NullTelemetry,
    Telemetry,
    Tracer,
    write_artifacts,
)
from repro.core.actions import ActionCatalog
from repro.core.trainer import OfflineTrainer, TrainingResult
from repro.core.optimizer import OnlineOptimizer
from repro.core.problem import Schedule, ScheduledGroup, SchedulingProblem
from repro.core.metrics import ScheduleMetrics, evaluate_schedule
from repro.core.baselines import (
    MigMpsDefaultScheduler,
    MigOnlyScheduler,
    MpsOnlyScheduler,
    TimeSharingScheduler,
)

__version__ = "1.0.0"

__all__ = [
    "A100_40GB",
    "A30_24GB",
    "GpuSpec",
    "SimulatedGpu",
    "PartitionTree",
    "format_partition",
    "parse_partition",
    "action_catalog",
    "JobProfile",
    "NsightProfiler",
    "ProfileRepository",
    "classify",
    "Job",
    "JobQueue",
    "MixCategory",
    "QueueGenerator",
    "paper_queues",
    "BENCHMARKS",
    "TRAINING_SET",
    "UNSEEN_SET",
    "simulate_corun",
    "relative_throughput",
    "FaultConfig",
    "FaultInjector",
    "FaultKind",
    "RetryPolicy",
    "MetricsRegistry",
    "NullTelemetry",
    "Telemetry",
    "Tracer",
    "write_artifacts",
    "ActionCatalog",
    "OfflineTrainer",
    "TrainingResult",
    "OnlineOptimizer",
    "Schedule",
    "ScheduledGroup",
    "SchedulingProblem",
    "ScheduleMetrics",
    "evaluate_schedule",
    "TimeSharingScheduler",
    "MigOnlyScheduler",
    "MpsOnlyScheduler",
    "MigMpsDefaultScheduler",
    "__version__",
]
