"""Post-hoc regret attribution over a recorded decision log.

For every :class:`~repro.insight.records.WindowRecord` the analyzer
replays the same problem instance through the
:class:`~repro.core.oracle.OracleScheduler` (the policy-class upper
bound) and compares:

* ``regret_vs_oracle``      — realized window makespan minus the
  oracle's, the agent's true shortfall;
* ``regret_vs_timesharing`` — realized makespan minus the time-sharing
  /FCFS makespan (running every job solo). Negative: the agent *beat*
  the baseline, which is the normal case.

Replay is bit-reproducible: profiles are a pure function of the
benchmark name (the Nsight-like profiler derives its noise from the
program name), and the oracle/predictor are deterministic — so two
same-seed runs produce byte-identical regret reports.

Window-level regret is then *attributed*: each recorded decision
receives a share proportional to its group's co-run time (the fraction
of the makespan that decision is responsible for), and each share is
split equally over the group's jobs and rolled up per CI/MI/US job
class. Jobs the agent never co-scheduled (solo drains, online
profiling runs) absorb the leftover share. The ranked
``worst_decisions`` view surfaces where the policy lost the most time.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass

from repro.errors import ReproError
from repro.core.actions import ActionCatalog
from repro.core.oracle import OracleScheduler
from repro.profiling.classify import classify
from repro.workloads.jobs import Job

from repro.insight.records import (
    DecisionRecord,
    DecisionRecorder,
    WindowRecord,
    read_decision_log,
)

__all__ = [
    "DecisionRegret",
    "WindowRegret",
    "RegretAnalyzer",
    "worst_decisions",
    "write_regret_jsonl",
]


@dataclass(frozen=True)
class DecisionRegret:
    """One decision's slice of its window's oracle regret."""

    source: str
    seq: int
    step: int
    action: int
    partition: str
    jobs: tuple[str, ...]
    corun_time: float
    time_share: float          # corun_time / window total_time
    attributed_regret: float   # time_share * window regret_vs_oracle
    q_gap_to_greedy: float
    prediction_error: float    # realized - predicted group makespan
    explored: bool

    def to_dict(self) -> dict:
        return {
            "type": "decision_regret",
            "source": self.source,
            "seq": self.seq,
            "step": self.step,
            "action": self.action,
            "partition": self.partition,
            "jobs": list(self.jobs),
            "corun_time": self.corun_time,
            "time_share": self.time_share,
            "attributed_regret": self.attributed_regret,
            "q_gap_to_greedy": self.q_gap_to_greedy,
            "prediction_error": self.prediction_error,
            "explored": self.explored,
        }


@dataclass(frozen=True)
class WindowRegret:
    """Regret accounting for one recorded window/episode."""

    source: str
    seq: int
    window: tuple[str, ...]
    method: str
    total_time: float
    solo_time: float
    oracle_time: float
    throughput_gain: float
    oracle_gain: float
    regret_vs_oracle: float
    regret_vs_timesharing: float
    relative_regret: float     # regret_vs_oracle / oracle_time
    per_class: dict            # job class -> attributed regret seconds
    oracle_choices: tuple[str, ...]
    decisions: tuple[DecisionRegret, ...]

    def to_dict(self) -> dict:
        return {
            "type": "window_regret",
            "source": self.source,
            "seq": self.seq,
            "window": list(self.window),
            "method": self.method,
            "total_time": self.total_time,
            "solo_time": self.solo_time,
            "oracle_time": self.oracle_time,
            "throughput_gain": self.throughput_gain,
            "oracle_gain": self.oracle_gain,
            "regret_vs_oracle": self.regret_vs_oracle,
            "regret_vs_timesharing": self.regret_vs_timesharing,
            "relative_regret": self.relative_regret,
            "per_class": dict(sorted(self.per_class.items())),
            "oracle_choices": list(self.oracle_choices),
            "decisions": [d.to_dict() for d in self.decisions],
        }


class RegretAnalyzer:
    """Replays a decision log against the oracle and attributes regret.

    ``repository`` must hold a profile for every benchmark that appears
    in the log (the CLI hands over the run's own repository; a fresh
    one built via :func:`~repro.core.evaluation.profile_all_benchmarks`
    is equivalent because profiles are deterministic per program name).
    """

    def __init__(self, repository):
        self.repository = repository
        # oracle totals keyed by the exact problem instance
        self._oracle_cache: dict[tuple, tuple[float, tuple[str, ...]]] = {}
        self._class_cache: dict[str, str] = {}

    # ------------------------------------------------------------------
    def analyze(
        self,
        decisions: list[DecisionRecord],
        windows: list[WindowRecord],
    ) -> list[WindowRegret]:
        """One :class:`WindowRegret` per window record, log order.

        Raises :class:`~repro.errors.ReproError` if any decision record
        fails to match its window (count mismatch / orphan decisions) —
        i.e. the round-trip guarantee is checked, not assumed.
        """
        by_key: dict[tuple, list[DecisionRecord]] = {}
        for d in decisions:
            by_key.setdefault((d.source, d.seq), []).append(d)
        out: list[WindowRegret] = []
        seen: set[tuple] = set()
        for w in windows:
            key = (w.source, w.seq)
            seen.add(key)
            recs = sorted(by_key.get(key, []), key=lambda d: d.step)
            if len(recs) != w.n_decisions:
                raise ReproError(
                    f"window {key}: {len(recs)} decision records for "
                    f"{w.n_decisions} recorded decisions"
                )
            out.append(self._analyze_window(w, recs))
        orphans = set(by_key) - seen
        if orphans:
            raise ReproError(
                f"decision records without a window summary: "
                f"{sorted(orphans)}"
            )
        return out

    def analyze_log(self, path) -> list[WindowRegret]:
        decisions, windows = read_decision_log(path)
        return self.analyze(decisions, windows)

    def analyze_recorder(self, recorder: DecisionRecorder) -> list[WindowRegret]:
        return self.analyze(recorder.decisions, recorder.windows)

    # ------------------------------------------------------------------
    def _job_class(self, name: str) -> str:
        cls = self._class_cache.get(name)
        if cls is None:
            job = Job.submit(name)
            if not self.repository.has(job):
                raise ReproError(
                    f"no profile for {name!r} — analyzer repository "
                    f"must cover every benchmark in the log"
                )
            cls = classify(self.repository.lookup(job))
            self._class_cache[name] = cls
        return cls

    def _oracle_total(
        self, window: tuple[str, ...], c_max: int, window_size: int
    ) -> tuple[float, tuple[str, ...]]:
        key = (window, c_max, window_size)
        cached = self._oracle_cache.get(key)
        if cached is not None:
            return cached
        jobs = [Job.submit(name) for name in window]
        for job in jobs:
            if not self.repository.has(job):
                raise ReproError(
                    f"no profile for {job.benchmark_name!r} — analyzer "
                    f"repository must cover every benchmark in the log"
                )
        oracle = OracleScheduler(
            self.repository,
            ActionCatalog(c_max=c_max),
            window_size=max(window_size, len(jobs)),
        )
        sched, choices = oracle.schedule_explained(jobs)
        labels = tuple(
            f"{c['label']} [{', '.join(c['jobs'])}]"
            + ("" if c["kept"] else " (split)")
            for c in choices
        )
        result = (sched.total_time, labels)
        self._oracle_cache[key] = result
        return result

    def _analyze_window(
        self, w: WindowRecord, recs: list[DecisionRecord]
    ) -> WindowRegret:
        oracle_time, oracle_choices = self._oracle_total(
            w.window, w.c_max, w.window_size
        )
        regret = w.total_time - oracle_time
        oracle_gain = w.solo_time / oracle_time if oracle_time > 0 else 0.0

        decision_regrets: list[DecisionRegret] = []
        per_class: dict[str, float] = {}
        covered: Counter = Counter()
        attributed_sum = 0.0
        for d in recs:
            share = (
                d.realized_corun_time / w.total_time
                if w.total_time > 0 else 0.0
            )
            attributed = share * regret
            attributed_sum += attributed
            covered.update(d.jobs)
            for name in d.jobs:
                cls = self._job_class(name)
                per_class[cls] = (
                    per_class.get(cls, 0.0) + attributed / len(d.jobs)
                )
            decision_regrets.append(DecisionRegret(
                source=d.source,
                seq=d.seq,
                step=d.step,
                action=d.action,
                partition=d.partition,
                jobs=d.jobs,
                corun_time=d.realized_corun_time,
                time_share=share,
                attributed_regret=attributed,
                q_gap_to_greedy=d.q_gap_to_greedy,
                prediction_error=d.prediction_error,
                explored=d.explored,
            ))
        # jobs never co-scheduled (solo drains / online profiling runs)
        # absorb whatever regret the groups do not account for
        leftover = regret - attributed_sum
        remaining = Counter(w.window) - covered
        n_remaining = sum(remaining.values())
        if n_remaining > 0:
            for name, count in remaining.items():
                cls = self._job_class(name)
                per_class[cls] = (
                    per_class.get(cls, 0.0) + leftover * count / n_remaining
                )
        elif recs:
            # fully co-scheduled window: spread the float residue evenly
            for d in recs:
                for name in d.jobs:
                    cls = self._job_class(name)
                    per_class[cls] += leftover / (len(recs) * len(d.jobs))

        return WindowRegret(
            source=w.source,
            seq=w.seq,
            window=w.window,
            method=w.method,
            total_time=w.total_time,
            solo_time=w.solo_time,
            oracle_time=oracle_time,
            throughput_gain=w.throughput_gain,
            oracle_gain=oracle_gain,
            regret_vs_oracle=regret,
            regret_vs_timesharing=w.total_time - w.solo_time,
            relative_regret=regret / oracle_time if oracle_time > 0 else 0.0,
            per_class=per_class,
            oracle_choices=oracle_choices,
            decisions=tuple(decision_regrets),
        )


# ----------------------------------------------------------------------
def worst_decisions(
    analyses: list[WindowRegret], n: int = 10
) -> list[DecisionRegret]:
    """The ``n`` decisions with the largest attributed regret."""
    ranked = sorted(
        (d for w in analyses for d in w.decisions),
        key=lambda d: (-d.attributed_regret, d.source, d.seq, d.step),
    )
    return ranked[:n]


def write_regret_jsonl(analyses: list[WindowRegret], path) -> int:
    """One ``window_regret`` JSON line per analyzed window."""
    n = 0
    with open(path, "w") as fh:
        for w in analyses:
            fh.write(json.dumps(w.to_dict(), sort_keys=True))
            fh.write("\n")
            n += 1
    return n
