"""Bench-regression gate: diff a fresh benchmark against the baseline.

The perf suites write their measurements to committed baselines
(``benchmarks/test_perf_training.py`` -> ``BENCH_training.json``,
``benchmarks/test_perf_serving.py`` -> ``BENCH_serving.json``); this
module compares such a document against the committed baseline with
per-metric tolerance bands and reports which checks regressed — the
``repro-gpu benchgate`` CLI exits non-zero on any regression, which is
what CI gates on.

Training metrics (all "higher is better"):

* ``speedup.episodes_per_sec_fastpath`` — fast-path training throughput
* ``speedup.speedup``                   — fast-path / reference ratio
* ``hit_rate.corun_cache_tail.hit_rate`` — steady-state cache hit rate
* ``speedup.identical_returns``          — must stay ``true`` (the
  fast path's bitwise-identity contract; no tolerance band)

Serving metrics:

* ``serving.decisions_per_sec_batched`` / ``serving.speedup`` —
  higher-is-better throughput of the batched serving path
* ``serving.p99_decision_latency_s``    — *lower is better*: a
  candidate regresses when it exceeds the baseline's band
* ``serving.identical_schedules``       — must stay ``true`` (batched
  serving's bitwise-identity contract)

A higher-is-better value ``c`` regresses against baseline ``b`` when
``c < b * (1 - tolerance)``; a lower-is-better value when
``c > b * (1 + tolerance)``. Default tolerance is 0.15 per metric; CI
uses a much looser band (shared runners are noisy) via ``--tolerance``.

:func:`measure_training_bench` / :func:`measure_serving_bench`
regenerate candidate documents with the committed schemas without going
through pytest — cheap smoke measurements for CI (smaller budgets, no
hard threshold assertions; the tolerance band does the judging).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from repro.clock import Clock, perf_clock
from repro.errors import ReproError

__all__ = [
    "GateCheck",
    "DEFAULT_TOLERANCE",
    "RATIO_CHECKS",
    "BOOL_CHECKS",
    "SERVING_RATIO_CHECKS",
    "SERVING_LOWER_CHECKS",
    "SERVING_BOOL_CHECKS",
    "FLEET_RATIO_CHECKS",
    "FLEET_BOOL_CHECKS",
    "HIERARCHY_RATIO_CHECKS",
    "HIERARCHY_BOOL_CHECKS",
    "load_bench",
    "compare_bench",
    "compare_serving_bench",
    "compare_fleet_bench",
    "compare_hierarchy_bench",
    "gate_passes",
    "format_checks",
    "measure_training_bench",
    "measure_serving_bench",
    "measure_fleet_bench",
    "measure_hierarchy_bench",
    "OVERHEAD_BUDGET",
    "measure_overhead_bench",
    "compare_overhead_bench",
]

DEFAULT_TOLERANCE = 0.15

#: dotted keys compared with a tolerance band, higher-is-better
RATIO_CHECKS = (
    "speedup.episodes_per_sec_fastpath",
    "speedup.speedup",
    "hit_rate.corun_cache_tail.hit_rate",
)

#: dotted keys that must be exactly true in the candidate
BOOL_CHECKS = ("speedup.identical_returns",)

#: serving-document keys, higher-is-better
SERVING_RATIO_CHECKS = (
    "serving.decisions_per_sec_batched",
    "serving.speedup",
)

#: serving-document keys, lower-is-better (latency)
SERVING_LOWER_CHECKS = ("serving.p99_decision_latency_s",)

#: serving-document keys that must be exactly true in the candidate
SERVING_BOOL_CHECKS = ("serving.identical_schedules",)

#: fleet-document keys, higher-is-better (simulated completions per
#: wall-clock minute on the event engine)
FLEET_RATIO_CHECKS = ("fleet.completions_per_min",)

#: fleet-document keys that must be exactly true in the candidate
#: (the event engine's bitwise-identity contract with the old loop)
FLEET_BOOL_CHECKS = ("fleet.identical_schedules",)

#: hierarchy-document keys, higher-is-better: the two-level policy's
#: makespan edge over least-loaded, its relative fairness, and the
#: wall-clock routing throughput of the learned placement level
HIERARCHY_RATIO_CHECKS = (
    "hierarchy.makespan_improvement",
    "hierarchy.fairness_ratio",
    "hierarchy.placements_per_sec",
)

#: hierarchy-document keys that must be exactly true in the candidate
HIERARCHY_BOOL_CHECKS = (
    "hierarchy.beats_baseline",
    "hierarchy.fairness_no_worse",
    "hierarchy.off_flag_identical",
)


@dataclass(frozen=True)
class GateCheck:
    """One compared metric and its verdict."""

    key: str
    baseline: float
    candidate: float
    ratio: float        # candidate / baseline (inf when baseline is 0)
    tolerance: float
    regressed: bool


def _lookup(doc: dict, dotted: str):
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise ReproError(f"benchmark document is missing {dotted!r}")
        node = node[part]
    return node


def load_bench(path) -> dict:
    with open(path) as fh:
        return json.load(fh)


def compare_bench(
    baseline: dict,
    candidate: dict,
    tolerance: float | None = None,
    *,
    ratio_checks: tuple[str, ...] = RATIO_CHECKS,
    bool_checks: tuple[str, ...] = BOOL_CHECKS,
    lower_checks: tuple[str, ...] = (),
) -> list[GateCheck]:
    """Every gate check, in declaration order.

    ``ratio_checks`` are higher-is-better, ``lower_checks`` (e.g. tail
    latencies) lower-is-better, ``bool_checks`` must be exactly true.
    """
    tol = DEFAULT_TOLERANCE if tolerance is None else tolerance
    if tol < 0:
        raise ReproError("tolerance must be non-negative")
    checks: list[GateCheck] = []
    for key in ratio_checks:
        b = float(_lookup(baseline, key))
        c = float(_lookup(candidate, key))
        ratio = c / b if b > 0 else float("inf")
        checks.append(GateCheck(
            key=key,
            baseline=b,
            candidate=c,
            ratio=ratio,
            tolerance=tol,
            regressed=c < b * (1.0 - tol),
        ))
    for key in lower_checks:
        b = float(_lookup(baseline, key))
        c = float(_lookup(candidate, key))
        ratio = c / b if b > 0 else float("inf")
        checks.append(GateCheck(
            key=key,
            baseline=b,
            candidate=c,
            ratio=ratio,
            tolerance=tol,
            regressed=c > b * (1.0 + tol),
        ))
    for key in bool_checks:
        b = bool(_lookup(baseline, key))
        c = bool(_lookup(candidate, key))
        checks.append(GateCheck(
            key=key,
            baseline=float(b),
            candidate=float(c),
            ratio=1.0 if c == b else 0.0,
            tolerance=0.0,
            regressed=not c,
        ))
    return checks


def compare_serving_bench(
    baseline: dict, candidate: dict, tolerance: float | None = None
) -> list[GateCheck]:
    """The serving-document gate (``BENCH_serving.json`` schema)."""
    return compare_bench(
        baseline,
        candidate,
        tolerance,
        ratio_checks=SERVING_RATIO_CHECKS,
        bool_checks=SERVING_BOOL_CHECKS,
        lower_checks=SERVING_LOWER_CHECKS,
    )


def compare_fleet_bench(
    baseline: dict, candidate: dict, tolerance: float | None = None
) -> list[GateCheck]:
    """The fleet-document gate (``BENCH_fleet.json`` schema)."""
    return compare_bench(
        baseline,
        candidate,
        tolerance,
        ratio_checks=FLEET_RATIO_CHECKS,
        bool_checks=FLEET_BOOL_CHECKS,
    )


def compare_hierarchy_bench(
    baseline: dict, candidate: dict, tolerance: float | None = None
) -> list[GateCheck]:
    """The hierarchy-document gate (``BENCH_hierarchy.json`` schema)."""
    return compare_bench(
        baseline,
        candidate,
        tolerance,
        ratio_checks=HIERARCHY_RATIO_CHECKS,
        bool_checks=HIERARCHY_BOOL_CHECKS,
    )


def gate_passes(checks: list[GateCheck]) -> bool:
    return not any(c.regressed for c in checks)


def format_checks(checks: list[GateCheck]) -> str:
    """Human-readable verdict table for the CLI."""
    lines = [
        f"{'metric':<40s} {'baseline':>12s} {'candidate':>12s} "
        f"{'ratio':>7s} {'tol':>5s}  verdict"
    ]
    for c in checks:
        verdict = "REGRESSED" if c.regressed else "ok"
        lines.append(
            f"{c.key:<40s} {c.baseline:12.4f} {c.candidate:12.4f} "
            f"{c.ratio:7.3f} {c.tolerance:5.2f}  {verdict}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# fresh candidate measurement (CI smoke mode)
# ----------------------------------------------------------------------
def measure_training_bench(
    episodes: int = 30,
    timed_runs: int = 2,
    clock: Clock = perf_clock,
) -> dict:
    """A fresh benchmark document with the committed baseline's schema.

    Mirrors ``benchmarks/test_perf_training.py`` at a smaller scale:
    warm-up pass per mode, best-of-``timed_runs`` timings, the bitwise
    identity check, and the greedy-rollout tail hit rate. Makes no
    threshold assertion itself — the gate's tolerance band does the
    judging.
    """
    from repro.core.env import CoSchedulingEnv
    from repro.core.trainer import OfflineTrainer
    from repro.perfmodel.cache import (
        corun_cache,
        corun_cache_disabled,
        reset_corun_cache,
    )

    if episodes <= 0 or timed_runs <= 0:
        raise ReproError("episodes and timed_runs must be positive")
    repository = OfflineTrainer().build_repository()
    tr_on = OfflineTrainer()
    tr_off = OfflineTrainer()

    with corun_cache_disabled():
        tr_off.train(episodes=episodes, repository=repository)
    reset_corun_cache()
    tr_on.train(episodes=episodes, repository=repository)

    off_times, on_times = [], []
    result_off = result_on = None
    for _ in range(timed_runs):
        with corun_cache_disabled():
            t0 = clock()
            result_off = tr_off.train(episodes=episodes, repository=repository)
            off_times.append(clock() - t0)
        t0 = clock()
        result_on = tr_on.train(episodes=episodes, repository=repository)
        on_times.append(clock() - t0)

    identical = (
        result_on.episode_returns == result_off.episode_returns
        and result_on.episode_throughputs == result_off.episode_throughputs
    )
    best_off, best_on = min(off_times), min(on_times)
    corun = result_on.cache_stats["corun"]
    decisions = result_on.cache_stats["decisions"]
    evals = corun.lookups + decisions.hits

    # greedy tail rollout for the steady-state cache hit rate
    agent = result_on.agent
    agent.freeze()
    env = CoSchedulingEnv(
        windows=tr_on._windows,
        repository=repository,
        catalog=tr_on.catalog,
        window_size=tr_on.window_size,
        reward_config=tr_on.reward_config,
        seed=tr_on.seed,
        binding=tr_on.binding,
        memoize_decisions=False,
    )
    reset_corun_cache()
    warmup = min(10, max(episodes // 5, 1))
    snapshot = corun_cache().stats  # zero; overwritten at the warmup mark
    for episode in range(episodes):
        if episode == warmup:
            snapshot = corun_cache().stats
        obs, info = env.reset()
        done = False
        while not done:
            action = agent.act(obs, info["action_mask"])
            obs, _, terminated, truncated, info = env.step(action)
            done = terminated or truncated
    tail = corun_cache().stats.delta(snapshot)

    return {
        "speedup": {
            "episodes": episodes,
            "timed_runs": timed_runs,
            "off_times_s": off_times,
            "on_times_s": on_times,
            "episodes_per_sec_reference": episodes / best_off,
            "episodes_per_sec_fastpath": episodes / best_on,
            "speedup": best_off / best_on,
            "corun_evals_per_sec_fastpath": evals / best_on,
            "corun_cache": corun.to_dict(),
            "decision_memo": decisions.to_dict(),
            "identical_returns": identical,
        },
        "hit_rate": {
            "episodes": episodes,
            "measured_after_episode": warmup,
            "policy": "greedy",
            "corun_cache_tail": tail.to_dict(),
        },
    }


def measure_serving_bench(
    episodes: int = 20,
    n_windows: int = 64,
    distinct_windows: int = 8,
    batch_size: int = 16,
    timed_runs: int = 3,
    seed: int = 7,
    clock: Clock = perf_clock,
) -> dict:
    """A fresh serving benchmark document (``BENCH_serving.json`` schema).

    Trains a small agent, then serves a stream of ``n_windows`` windows
    drawn from ``distinct_windows`` distinct contents (fresh job
    submissions in permuted order — the fleet-serving shape: many
    nodes, few distinct workloads) through both paths: the per-window
    reference loop (:meth:`~repro.core.optimizer.OnlineOptimizer.optimize`
    per window, no decision cache) and the batched path
    (:meth:`~repro.core.optimizer.OnlineOptimizer.optimize_many` in
    chunks of ``batch_size`` with a
    :class:`~repro.core.serving.DecisionCache`). Reports best-of
    throughputs, the batched path's p50/p99 per-window decision
    latency, decision-cache statistics, and whether every schedule came
    out bitwise-identical across the two paths. Makes no threshold
    assertion itself — the gate's tolerance band does the judging.
    """
    import numpy as np

    from repro.core.optimizer import OnlineOptimizer
    from repro.core.serving import DecisionCache, schedule_fingerprint
    from repro.core.trainer import OfflineTrainer
    from repro.workloads.generator import QueueGenerator
    from repro.workloads.jobs import Job

    if episodes <= 0 or timed_runs <= 0:
        raise ReproError("episodes and timed_runs must be positive")
    if min(n_windows, distinct_windows, batch_size) <= 0:
        raise ReproError("serving bench sizes must be positive")

    trainer = OfflineTrainer(
        window_size=6,
        c_max=3,
        n_training_queues=4,
        seed=seed,
        dqn_overrides={
            "hidden": (64, 32),
            "warmup_transitions": 32,
            "batch_size": 16,
            "epsilon_decay_rate": 0.98,
        },
    )
    result = trainer.train(episodes=episodes)
    repository = result.repository

    gen = QueueGenerator(seed=seed + 1, training_only=True)
    pool = [
        q.window(trainer.window_size)
        for q in gen.training_queues(
            n=distinct_windows, w=trainer.window_size
        )
    ]
    rng = np.random.default_rng(seed)
    stream: list[list[Job]] = []
    for i in range(n_windows):
        base = pool[i % distinct_windows]
        stream.append([
            Job.submit(base[j].benchmark_name)
            for j in rng.permutation(len(base))
        ])

    def make_optimizer(cache):
        return OnlineOptimizer(
            result.agent,
            repository,
            trainer.catalog,
            trainer.window_size,
            reward_config=trainer.reward_config,
            clock=clock,
            decision_cache=cache,
        )

    opt_ref = make_optimizer(None)
    cache = DecisionCache()
    opt_fast = make_optimizer(cache)
    chunks = [
        stream[i:i + batch_size]
        for i in range(0, n_windows, batch_size)
    ]

    # warm-up pass doubling as the identity check: the same stream
    # through both paths, compared group by group, float by float
    # (this pass exercises the cold-miss and intra-batch-duplicate
    # serving branches; the timed passes below run cache-warm)
    ref_decisions = [opt_ref.optimize(w) for w in stream]
    fast_decisions = [
        d for chunk in chunks for d in opt_fast.optimize_many(chunk)
    ]
    identical = all(
        schedule_fingerprint(r.schedule) == schedule_fingerprint(f.schedule)
        for r, f in zip(ref_decisions, fast_decisions)
    )

    ref_times: list[float] = []
    fast_times: list[float] = []
    latencies: list[float] = []
    for _ in range(timed_runs):
        t0 = clock()
        for w in stream:
            opt_ref.optimize(w)
        ref_times.append(clock() - t0)
        t0 = clock()
        run_decisions = [
            d for chunk in chunks for d in opt_fast.optimize_many(chunk)
        ]
        fast_times.append(clock() - t0)
        latencies = [d.decision_seconds for d in run_decisions]

    best_ref = max(min(ref_times), 1e-12)
    best_fast = max(min(fast_times), 1e-12)
    lat = np.asarray(latencies, dtype=np.float64)
    return {
        "serving": {
            "n_windows": n_windows,
            "distinct_windows": distinct_windows,
            "batch_size": batch_size,
            "timed_runs": timed_runs,
            "reference_times_s": ref_times,
            "batched_times_s": fast_times,
            "decisions_per_sec_reference": n_windows / best_ref,
            "decisions_per_sec_batched": n_windows / best_fast,
            "speedup": best_ref / best_fast,
            "p50_decision_latency_s": float(np.quantile(lat, 0.50)),
            "p99_decision_latency_s": float(np.quantile(lat, 0.99)),
            "decision_cache": cache.stats.to_dict(),
            "identical_schedules": bool(identical),
        },
    }


def measure_fleet_bench(
    n_nodes: int = 1000,
    n_jobs: int = 120_000,
    warmup_jobs: int = 20_000,
    pool_size: int = 6,
    arrival_rate: float = 5000.0,
    episodes: int = 20,
    seed: int = 7,
    clock: Clock = perf_clock,
) -> dict:
    """A fresh fleet benchmark document (``BENCH_fleet.json`` schema).

    Trains a small agent, then drains an open-loop Poisson workload of
    ``n_jobs`` arrivals over ``n_nodes`` GPUs through the
    discrete-event :class:`~repro.cluster.fleet.FleetEngine` and
    reports simulated job completions per wall-clock minute. A warm-up
    drain first populates the decision cache (the fleet-serving
    steady state: many nodes, few distinct workloads); the timed drain
    then measures the engine itself rather than cold scheduling misses.

    The document also carries the engine's bitwise-identity contract:
    on a small cluster, the event engine's dispatch records and
    schedule fingerprints must equal the pre-existing
    :class:`~repro.cluster.scheduler.ClusterScheduler` loop's, window
    for window. Makes no threshold assertion itself — the perf suite
    asserts the 1M-completions/min floor and the gate's tolerance band
    does the ratcheting.
    """
    from repro.cluster.fleet import FleetEngine
    from repro.cluster.node import ClusterState
    from repro.cluster.policy import (
        CoSchedulingPolicy,
        FcfsPolicy,
        PolicySelector,
    )
    from repro.cluster.scheduler import ClusterScheduler
    from repro.core.actions import ActionCatalog
    from repro.core.evaluation import profile_all_benchmarks
    from repro.core.optimizer import OnlineOptimizer
    from repro.core.serving import DecisionCache, schedule_fingerprint
    from repro.core.trainer import OfflineTrainer
    from repro.workloads.arrivals import PoissonArrivals
    from repro.workloads.generator import MixCategory, QueueGenerator
    from repro.workloads.jobs import Job, JobQueue
    from repro.workloads.suite import TRAINING_SET

    if min(n_nodes, n_jobs, warmup_jobs, pool_size, episodes) <= 0:
        raise ReproError("fleet bench sizes must be positive")
    if arrival_rate <= 0:
        raise ReproError("arrival rate must be positive")

    trainer = OfflineTrainer(
        window_size=6,
        c_max=3,
        n_training_queues=4,
        seed=seed,
        dqn_overrides={
            "hidden": (64, 32),
            "warmup_transitions": 32,
            "batch_size": 16,
            "epsilon_decay_rate": 0.98,
        },
    )
    result = trainer.train(episodes=episodes)
    repository = result.repository.copy()
    profile_all_benchmarks(repository)

    def make_selector() -> PolicySelector:
        optimizer = OnlineOptimizer(
            result.agent,
            repository,
            ActionCatalog(c_max=trainer.c_max),
            trainer.window_size,
            decision_cache=DecisionCache(),
        )
        return PolicySelector(
            co_scheduling=CoSchedulingPolicy(optimizer),
            fcfs=FcfsPolicy(),
            crowding_threshold=1,
        )

    pool = sorted(TRAINING_SET)[:pool_size]
    selector = make_selector()

    def drain(jobs: int, arrival_seed: int):
        engine = FleetEngine(
            ClusterState.homogeneous(n_nodes),
            selector,
            window_size=trainer.window_size,
        )
        engine.attach_arrivals(PoissonArrivals(
            rate=arrival_rate, pool=pool, n_jobs=jobs, seed=arrival_seed,
        ))
        t0 = clock()
        fleet_result = engine.run()
        return fleet_result, clock() - t0

    drain(warmup_jobs, arrival_seed=seed + 1)  # decision-cache warm-up
    fleet_result, wall = drain(n_jobs, arrival_seed=seed + 2)
    wall = max(wall, 1e-12)

    # small-cluster identity: the event engine vs the old dispatch loop
    class _RecordingSelector:
        def __init__(self, inner: PolicySelector):
            self.inner = inner
            self.fcfs = inner.fcfs
            self.co_scheduling = inner.co_scheduling
            self.schedules: list = []

        def select(self, queue_depth: int, free_gpus: int):
            return self.inner.select(queue_depth, free_gpus)

        def schedule_batch(self, cuts):
            out = self.inner.schedule_batch(cuts)
            self.schedules.extend(s for s, _ in out)
            return out

    gen = QueueGenerator(seed=seed + 3, training_only=True)
    names: list[str] = []
    for _ in range(8):
        names.extend(
            gen.queue(MixCategory.BALANCED, w=trainer.window_size)
            .benchmark_names
        )
    jobs = [Job.submit(name) for name in names]
    recording = _RecordingSelector(make_selector())
    oracle = ClusterScheduler(
        cluster=ClusterState.homogeneous(3),
        selector=recording,  # type: ignore[arg-type]
        window_size=trainer.window_size,
    )
    oracle_records = oracle.run(JobQueue(jobs=list(jobs)))
    engine = FleetEngine(
        ClusterState.homogeneous(3),
        make_selector(),
        window_size=trainer.window_size,
        keep_history=True,
    )
    for job in jobs:
        engine.submit(job, at=0.0)
    engine_result = engine.run()
    identical = (
        oracle_records == engine_result.history
        and [schedule_fingerprint(s) for s in recording.schedules]
        == [schedule_fingerprint(s) for s in engine_result.schedules]
    )

    return {
        "fleet": {
            "n_nodes": n_nodes,
            "n_jobs": n_jobs,
            "warmup_jobs": warmup_jobs,
            "pool_size": pool_size,
            "arrival_rate": arrival_rate,
            "window_size": trainer.window_size,
            "wall_seconds": wall,
            "completions_per_min": fleet_result.stats.completed / wall * 60.0,
            "completed": fleet_result.stats.completed,
            "windows": fleet_result.stats.windows,
            "simulated_makespan": fleet_result.makespan,
            "utilization": fleet_result.utilization,
            "mean_wait": fleet_result.stats.mean_wait,
            "identical_schedules": bool(identical),
        },
    }


#: telemetry-on throughput must stay at least this fraction of
#: telemetry-off (wall_off / wall_on >= budget)
OVERHEAD_BUDGET = 0.85


def measure_overhead_bench(
    n_nodes: int = 64,
    n_jobs: int = 3000,
    warmup_jobs: int = 500,
    pool_size: int = 4,
    arrival_rate: float = 200.0,
    episodes: int = 10,
    timed_runs: int = 5,
    seed: int = 7,
    clock: Clock = perf_clock,
) -> dict:
    """A fresh telemetry-overhead document (``overhead.*`` schema).

    Drains the *same* seeded Poisson workload through the serving-shape
    :class:`~repro.cluster.fleet.FleetEngine` (small trained agent,
    decision-cached :class:`~repro.core.optimizer.OnlineOptimizer` — the
    realistic per-window cost the observer rides on) three times:

    * **off** — the ``NULL_TELEMETRY`` fast path, nothing observed;
    * **telemetry** — the always-on telemetry plane: live
      :class:`Telemetry` with sketch metrics,
      :class:`~repro.obs.phase.PhaseTimers`, a wall-clock decision
      timer, and checkpoint rollup frames at 1/32 of the off-drain's
      measured makespan. ``throughput_ratio = wall_off /
      wall_telemetry`` is the **gated** number: the continuous plane
      must stay within :data:`OVERHEAD_BUDGET`;
    * **full** — the telemetry plane plus a
      :class:`~repro.obs.trace.LifecycleTracer` streaming one span
      tree per job to JSONL. Serializing every job's causal tree costs
      a few ``json.dumps`` per job by construction, so this opt-in
      forensic stream is reported (``lifecycle_ratio``) but not gated.

    A warm-up drain per mode first populates that mode's decision
    cache, and each mode's wall time is the best of ``timed_runs``
    repeats of the same deterministic drain, so the ratios compare
    like steady states rather than scheduler or allocator noise.

    The document also carries the observer-neutrality contract: all
    drains' :class:`FleetStats` must agree exactly on every simulated
    field (excluding the wall-clock ``placement_decision_*`` timings
    and the ``checkpoints`` counter — both exist only on observed
    runs). Self-contained: :func:`compare_overhead_bench` judges
    against a fixed budget, no committed baseline needed.
    """
    import os
    import tempfile

    from repro.cluster.fleet import FleetEngine
    from repro.cluster.node import ClusterState
    from repro.cluster.policy import (
        CoSchedulingPolicy,
        FcfsPolicy,
        PolicySelector,
    )
    from repro.core.actions import ActionCatalog
    from repro.core.evaluation import profile_all_benchmarks
    from repro.core.optimizer import OnlineOptimizer
    from repro.core.serving import DecisionCache
    from repro.core.trainer import OfflineTrainer
    from repro.obs.phase import PhaseTimers
    from repro.obs.trace import LifecycleTracer
    from repro.telemetry import Telemetry
    from repro.workloads.arrivals import PoissonArrivals
    from repro.workloads.suite import TRAINING_SET

    if min(n_nodes, n_jobs, warmup_jobs, pool_size, episodes, timed_runs) <= 0:
        raise ReproError("overhead bench sizes must be positive")
    if arrival_rate <= 0:
        raise ReproError("arrival rate must be positive")

    trainer = OfflineTrainer(
        window_size=6,
        c_max=3,
        n_training_queues=4,
        seed=seed,
        dqn_overrides={
            "hidden": (64, 32),
            "warmup_transitions": 32,
            "batch_size": 16,
            "epsilon_decay_rate": 0.98,
        },
    )
    result = trainer.train(episodes=episodes)
    repository = result.repository.copy()
    profile_all_benchmarks(repository)
    pool = sorted(TRAINING_SET)[:pool_size]

    def make_selector() -> PolicySelector:
        optimizer = OnlineOptimizer(
            result.agent,
            repository,
            ActionCatalog(c_max=trainer.c_max),
            trainer.window_size,
            decision_cache=DecisionCache(),
        )
        return PolicySelector(
            co_scheduling=CoSchedulingPolicy(optimizer),
            fcfs=FcfsPolicy(),
            crowding_threshold=1,
        )

    def drain(
        selector: PolicySelector,
        jobs: int,
        mode: str,
        lifecycle_path=None,
        checkpoint_interval: float | None = None,
    ):
        lifecycle = profile = None
        kwargs: dict = {}
        if mode != "off":
            profile = PhaseTimers(clock=clock)
            kwargs = dict(
                telemetry=Telemetry(),
                profile=profile,
                decision_clock=clock,
            )
            if mode == "full":
                lifecycle = LifecycleTracer(seed=seed, path=lifecycle_path)
                kwargs["lifecycle"] = lifecycle
        engine = FleetEngine(
            ClusterState.homogeneous(n_nodes),
            selector,
            window_size=trainer.window_size,
            **kwargs,
        )
        if mode != "off" and checkpoint_interval is not None:
            engine.schedule_checkpoints(checkpoint_interval)
        engine.attach_arrivals(PoissonArrivals(
            rate=arrival_rate, pool=pool, n_jobs=jobs, seed=seed + 1,
        ))
        t0 = clock()
        fleet_result = engine.run()
        wall = clock() - t0
        if lifecycle is not None:
            lifecycle.close()
        return fleet_result, max(wall, 1e-12), profile

    with tempfile.TemporaryDirectory() as tmp:
        sel_off = make_selector()
        sel_tel = make_selector()
        sel_full = make_selector()
        # warm every mode's decision cache, and learn the makespan the
        # checkpointed modes should frame at 1/32 of
        result_off, _, _ = drain(sel_off, warmup_jobs, "off")
        drain(sel_tel, warmup_jobs, "telemetry")
        drain(
            sel_full, warmup_jobs, "full",
            lifecycle_path=os.path.join(tmp, "warmup_lifecycle.jsonl"),
        )
        interval = max(
            result_off.makespan * (n_jobs / warmup_jobs) / 32.0, 1e-3
        )
        # interleave the timed repeats so machine drift (CPU frequency,
        # co-tenants) biases every mode equally, then keep best-of
        wall_off = wall_tel = wall_full = math.inf
        result_off = result_tel = result_full = None
        profile = None
        for _ in range(timed_runs):
            result_off, wall, _ = drain(sel_off, n_jobs, "off")
            wall_off = min(wall_off, wall)
            result_tel, wall, profile = drain(
                sel_tel, n_jobs, "telemetry", checkpoint_interval=interval,
            )
            wall_tel = min(wall_tel, wall)
            result_full, wall, _ = drain(
                sel_full, n_jobs, "full",
                lifecycle_path=os.path.join(tmp, "lifecycle.jsonl"),
                checkpoint_interval=interval,
            )
            wall_full = min(wall_full, wall)

    def simulated_stats(doc: dict) -> dict:
        return {
            k: v for k, v in doc.items()
            if not k.startswith("placement_decision") and k != "checkpoints"
        }

    reference = simulated_stats(result_off.stats.to_dict())
    identical = (
        simulated_stats(result_tel.stats.to_dict()) == reference
        and simulated_stats(result_full.stats.to_dict()) == reference
    )
    return {
        "overhead": {
            "n_nodes": n_nodes,
            "n_jobs": n_jobs,
            "warmup_jobs": warmup_jobs,
            "pool_size": pool_size,
            "arrival_rate": arrival_rate,
            "episodes": episodes,
            "timed_runs": timed_runs,
            "window_size": trainer.window_size,
            "wall_seconds_off": wall_off,
            "wall_seconds_telemetry": wall_tel,
            "wall_seconds_full": wall_full,
            "completions_per_min_off": result_off.stats.completed / wall_off * 60.0,
            "completions_per_min_telemetry": (
                result_tel.stats.completed / wall_tel * 60.0
            ),
            "throughput_ratio": wall_off / wall_tel,
            "lifecycle_ratio": wall_off / wall_full,
            "phases": profile.to_dict() if profile is not None else {},
            "identical_stats": bool(identical),
        },
    }


def compare_overhead_bench(
    candidate: dict, budget: float = OVERHEAD_BUDGET
) -> list[GateCheck]:
    """The telemetry-overhead gate — self-contained, no baseline doc.

    One ratio check (``overhead.throughput_ratio`` must stay at or
    above ``budget``) and one bool check (``overhead.identical_stats``:
    the fully-observed drain must not perturb simulated outcomes).
    """
    if not 0.0 < budget <= 1.0:
        raise ReproError("overhead budget must be in (0, 1]")
    ratio = float(_lookup(candidate, "overhead.throughput_ratio"))
    identical = bool(_lookup(candidate, "overhead.identical_stats"))
    return [
        GateCheck(
            key="overhead.throughput_ratio",
            baseline=budget,
            candidate=ratio,
            ratio=ratio / budget,
            tolerance=0.0,
            regressed=ratio < budget,
        ),
        GateCheck(
            key="overhead.identical_stats",
            baseline=1.0,
            candidate=float(identical),
            ratio=1.0 if identical else 0.0,
            tolerance=0.0,
            regressed=not identical,
        ),
    ]


#: bench pool for the hierarchy gate: two long CI programs, two MI,
#: two short US — maximal spread in both pair affinity and solo time,
#: the two signals the placement level can exploit and the class-blind
#: baselines cannot
HIERARCHY_BENCH_POOL = (
    "hotspot3D", "lavaMD", "lud_A", "stream", "kmeans", "pathfinder",
)


def measure_hierarchy_bench(
    n_nodes: int = 100,
    eval_jobs: int = 2000,
    arrival_rate: float = 40.0,
    node_episodes: int = 12,
    placement_episodes: int = 10,
    jobs_per_episode: int = 300,
    seed: int = 7,
    clock: Clock = perf_clock,
) -> dict:
    """A fresh hierarchy benchmark document (``BENCH_hierarchy.json``).

    Trains the two-level policy with :class:`JointTrainer` (node-level
    DDQN offline, then placement DQN on fleet rollouts with prioritized
    replay), then drains one held-out Poisson stream at ``n_nodes``
    under every placement policy — the trained agent and the
    ``least-loaded`` / ``round-robin`` / ``random`` baselines, all over
    the *same* node-level selector, so the comparison isolates the
    placement level. The simulation is deterministic end to end: the
    makespan/fairness ratios reproduce bit-for-bit given the seeds, and
    only ``placements_per_sec`` is wall-clock.

    The document also carries the flag-off identity contract: a
    placement-free engine over the same trained node level must stay
    bitwise-identical to the :class:`ClusterScheduler` oracle (dispatch
    records and schedule fingerprints), proving the hierarchical wiring
    is a no-op when off. Makes no threshold assertion itself — the perf
    suite asserts the beats-baseline floor and the gate's tolerance
    band does the ratcheting.
    """
    from repro.cluster.fleet import FleetEngine
    from repro.cluster.node import ClusterState
    from repro.cluster.scheduler import ClusterScheduler
    from repro.core.serving import schedule_fingerprint
    from repro.hierarchy import (
        JointTrainer,
        LeastLoadedPlacement,
        RandomPlacement,
        RoundRobinPlacement,
        evaluate_placement,
    )
    from repro.power.model import PowerModel
    from repro.workloads.arrivals import PoissonArrivals
    from repro.workloads.generator import MixCategory, QueueGenerator
    from repro.workloads.jobs import Job, JobQueue

    if min(n_nodes, eval_jobs, node_episodes, placement_episodes) <= 0:
        raise ReproError("hierarchy bench sizes must be positive")
    if arrival_rate <= 0:
        raise ReproError("arrival rate must be positive")

    pool = list(HIERARCHY_BENCH_POOL)
    trainer = JointTrainer(
        n_nodes=n_nodes,
        window_size=6,
        c_max=3,
        seed=seed,
        jobs_per_episode=jobs_per_episode,
        arrival_rate=arrival_rate,
        pool=pool,
        node_episodes=node_episodes,
        prioritized=True,
        wait_weight=1.0,
        affinity_weight=0.5,
        terminal_weight=2.0,
        placement_overrides={
            "hidden": (64, 32),
            "candidate_k": 12,
            "gamma": 0.5,
            "warmup_transitions": 64,
            "batch_size": 32,
            "epsilon_decay_rate": 0.995,
        },
    )
    t0 = clock()
    joint = trainer.train(episodes=placement_episodes)
    train_wall = clock() - t0

    def arrivals():
        # held-out stream: a seed no training episode uses
        return PoissonArrivals(
            rate=arrival_rate, pool=pool, n_jobs=eval_jobs, seed=seed + 17
        )

    power = PowerModel()
    policies = [
        joint.placement,
        LeastLoadedPlacement(),
        RoundRobinPlacement(),
        RandomPlacement(seed),
    ]
    per_policy: dict[str, dict] = {}
    agent_wall = 1e-12
    for policy in policies:
        t0 = clock()
        fr = evaluate_placement(
            policy,
            trainer.selector,
            n_nodes,
            arrivals(),
            window_size=trainer.window_size,
            power_model=power,
        )
        wall = max(clock() - t0, 1e-12)
        if policy.name == "agent":
            agent_wall = wall
        per_policy[policy.name] = {
            "makespan": fr.makespan,
            "fairness_jain": fr.fairness_jain,
            "mean_wait": fr.stats.mean_wait,
            "mean_turnaround": fr.stats.mean_turnaround,
            "utilization": fr.utilization,
            "completed": fr.stats.completed,
            "energy_joules": fr.energy_joules,
            "joules_per_job": fr.joules_per_job,
            "perf_per_watt": fr.perf_per_watt,
            "wall_seconds": wall,
        }
    agent = per_policy["agent"]
    least_loaded = per_policy["least-loaded"]
    baselines = {k: v for k, v in per_policy.items() if k != "agent"}
    best_name = min(baselines, key=lambda k: baselines[k]["makespan"])
    best = baselines[best_name]

    # flag-off identity: a placement-free engine over the same trained
    # node level vs the ClusterScheduler oracle, bitwise
    def make_selector():
        from repro.cluster.policy import (
            CoSchedulingPolicy,
            FcfsPolicy,
            PolicySelector,
        )
        from repro.core.actions import ActionCatalog
        from repro.core.optimizer import OnlineOptimizer
        from repro.core.serving import DecisionCache

        optimizer = OnlineOptimizer(
            joint.node.agent,
            trainer.repository,
            ActionCatalog(c_max=trainer.c_max),
            trainer.window_size,
            decision_cache=DecisionCache(),
        )
        return PolicySelector(
            co_scheduling=CoSchedulingPolicy(optimizer),
            fcfs=FcfsPolicy(),
            crowding_threshold=1,
        )

    class _RecordingSelector:
        def __init__(self, inner):
            self.inner = inner
            self.fcfs = inner.fcfs
            self.co_scheduling = inner.co_scheduling
            self.schedules: list = []

        def select(self, queue_depth: int, free_gpus: int):
            return self.inner.select(queue_depth, free_gpus)

        def schedule_batch(self, cuts):
            out = self.inner.schedule_batch(cuts)
            self.schedules.extend(s for s, _ in out)
            return out

    gen = QueueGenerator(seed=seed + 3, training_only=True)
    names: list[str] = []
    for _ in range(8):
        names.extend(
            gen.queue(MixCategory.BALANCED, w=trainer.window_size)
            .benchmark_names
        )
    jobs = [Job.submit(name) for name in names]
    recording = _RecordingSelector(make_selector())
    oracle = ClusterScheduler(
        cluster=ClusterState.homogeneous(3),
        selector=recording,  # type: ignore[arg-type]
        window_size=trainer.window_size,
    )
    oracle_records = oracle.run(JobQueue(jobs=list(jobs)))
    engine = FleetEngine(
        ClusterState.homogeneous(3),
        make_selector(),
        window_size=trainer.window_size,
        keep_history=True,
    )
    for job in jobs:
        engine.submit(job, at=0.0)
    engine_result = engine.run()
    off_flag_identical = (
        oracle_records == engine_result.history
        and [schedule_fingerprint(s) for s in recording.schedules]
        == [schedule_fingerprint(s) for s in engine_result.schedules]
    )

    return {
        "hierarchy": {
            "n_nodes": n_nodes,
            "eval_jobs": eval_jobs,
            "arrival_rate": arrival_rate,
            "window_size": trainer.window_size,
            "pool": pool,
            "node_episodes": node_episodes,
            "placement_episodes": placement_episodes,
            "jobs_per_episode": jobs_per_episode,
            "train_wall_seconds": train_wall,
            "policies": per_policy,
            "best_baseline": best_name,
            "makespan_improvement": (
                least_loaded["makespan"] / agent["makespan"]
            ),
            "makespan_improvement_vs_best": (
                best["makespan"] / agent["makespan"]
            ),
            "fairness_ratio": (
                agent["fairness_jain"] / least_loaded["fairness_jain"]
            ),
            "placements_per_sec": eval_jobs / agent_wall,
            "beats_baseline": bool(agent["makespan"] < best["makespan"]),
            "fairness_no_worse": bool(
                agent["fairness_jain"]
                >= least_loaded["fairness_jain"] - 0.01
            ),
            "off_flag_identical": bool(off_flag_identical),
        },
    }
