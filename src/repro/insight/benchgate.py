"""Bench-regression gate: diff a fresh benchmark against the baseline.

The perf suite (``benchmarks/test_perf_training.py``) writes its
measurements to ``BENCH_training.json``; this module compares such a
document against the committed baseline with per-metric tolerance
bands and reports which checks regressed — the ``repro-gpu benchgate``
CLI exits non-zero on any regression, which is what CI gates on.

Checked metrics (all "higher is better"):

* ``speedup.episodes_per_sec_fastpath`` — fast-path training throughput
* ``speedup.speedup``                   — fast-path / reference ratio
* ``hit_rate.corun_cache_tail.hit_rate`` — steady-state cache hit rate
* ``speedup.identical_returns``          — must stay ``true`` (the
  fast path's bitwise-identity contract; no tolerance band)

A candidate value ``c`` regresses against baseline ``b`` when
``c < b * (1 - tolerance)``. Default tolerance is 0.15 per metric; CI
uses a much looser band (shared runners are noisy) via ``--tolerance``.

:func:`measure_training_bench` regenerates a candidate document with
the same schema without going through pytest — a cheap smoke
measurement for CI (smaller episode budget, fewer timed runs, no
hard speedup assertion).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.clock import Clock, perf_clock
from repro.errors import ReproError

__all__ = [
    "GateCheck",
    "DEFAULT_TOLERANCE",
    "RATIO_CHECKS",
    "BOOL_CHECKS",
    "load_bench",
    "compare_bench",
    "gate_passes",
    "format_checks",
    "measure_training_bench",
]

DEFAULT_TOLERANCE = 0.15

#: dotted keys compared with a tolerance band, higher-is-better
RATIO_CHECKS = (
    "speedup.episodes_per_sec_fastpath",
    "speedup.speedup",
    "hit_rate.corun_cache_tail.hit_rate",
)

#: dotted keys that must be exactly true in the candidate
BOOL_CHECKS = ("speedup.identical_returns",)


@dataclass(frozen=True)
class GateCheck:
    """One compared metric and its verdict."""

    key: str
    baseline: float
    candidate: float
    ratio: float        # candidate / baseline (inf when baseline is 0)
    tolerance: float
    regressed: bool


def _lookup(doc: dict, dotted: str):
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise ReproError(f"benchmark document is missing {dotted!r}")
        node = node[part]
    return node


def load_bench(path) -> dict:
    with open(path) as fh:
        return json.load(fh)


def compare_bench(
    baseline: dict, candidate: dict, tolerance: float | None = None
) -> list[GateCheck]:
    """Every gate check, in declaration order."""
    tol = DEFAULT_TOLERANCE if tolerance is None else tolerance
    if tol < 0:
        raise ReproError("tolerance must be non-negative")
    checks: list[GateCheck] = []
    for key in RATIO_CHECKS:
        b = float(_lookup(baseline, key))
        c = float(_lookup(candidate, key))
        ratio = c / b if b > 0 else float("inf")
        checks.append(GateCheck(
            key=key,
            baseline=b,
            candidate=c,
            ratio=ratio,
            tolerance=tol,
            regressed=c < b * (1.0 - tol),
        ))
    for key in BOOL_CHECKS:
        b = bool(_lookup(baseline, key))
        c = bool(_lookup(candidate, key))
        checks.append(GateCheck(
            key=key,
            baseline=float(b),
            candidate=float(c),
            ratio=1.0 if c == b else 0.0,
            tolerance=0.0,
            regressed=not c,
        ))
    return checks


def gate_passes(checks: list[GateCheck]) -> bool:
    return not any(c.regressed for c in checks)


def format_checks(checks: list[GateCheck]) -> str:
    """Human-readable verdict table for the CLI."""
    lines = [
        f"{'metric':<40s} {'baseline':>12s} {'candidate':>12s} "
        f"{'ratio':>7s} {'tol':>5s}  verdict"
    ]
    for c in checks:
        verdict = "REGRESSED" if c.regressed else "ok"
        lines.append(
            f"{c.key:<40s} {c.baseline:12.4f} {c.candidate:12.4f} "
            f"{c.ratio:7.3f} {c.tolerance:5.2f}  {verdict}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# fresh candidate measurement (CI smoke mode)
# ----------------------------------------------------------------------
def measure_training_bench(
    episodes: int = 30,
    timed_runs: int = 2,
    clock: Clock = perf_clock,
) -> dict:
    """A fresh benchmark document with the committed baseline's schema.

    Mirrors ``benchmarks/test_perf_training.py`` at a smaller scale:
    warm-up pass per mode, best-of-``timed_runs`` timings, the bitwise
    identity check, and the greedy-rollout tail hit rate. Makes no
    threshold assertion itself — the gate's tolerance band does the
    judging.
    """
    from repro.core.env import CoSchedulingEnv
    from repro.core.trainer import OfflineTrainer
    from repro.perfmodel.cache import (
        corun_cache,
        corun_cache_disabled,
        reset_corun_cache,
    )

    if episodes <= 0 or timed_runs <= 0:
        raise ReproError("episodes and timed_runs must be positive")
    repository = OfflineTrainer().build_repository()
    tr_on = OfflineTrainer()
    tr_off = OfflineTrainer()

    with corun_cache_disabled():
        tr_off.train(episodes=episodes, repository=repository)
    reset_corun_cache()
    tr_on.train(episodes=episodes, repository=repository)

    off_times, on_times = [], []
    result_off = result_on = None
    for _ in range(timed_runs):
        with corun_cache_disabled():
            t0 = clock()
            result_off = tr_off.train(episodes=episodes, repository=repository)
            off_times.append(clock() - t0)
        t0 = clock()
        result_on = tr_on.train(episodes=episodes, repository=repository)
        on_times.append(clock() - t0)

    identical = (
        result_on.episode_returns == result_off.episode_returns
        and result_on.episode_throughputs == result_off.episode_throughputs
    )
    best_off, best_on = min(off_times), min(on_times)
    corun = result_on.cache_stats["corun"]
    decisions = result_on.cache_stats["decisions"]
    evals = corun.lookups + decisions.hits

    # greedy tail rollout for the steady-state cache hit rate
    agent = result_on.agent
    agent.freeze()
    env = CoSchedulingEnv(
        windows=tr_on._windows,
        repository=repository,
        catalog=tr_on.catalog,
        window_size=tr_on.window_size,
        reward_config=tr_on.reward_config,
        seed=tr_on.seed,
        binding=tr_on.binding,
        memoize_decisions=False,
    )
    reset_corun_cache()
    warmup = min(10, max(episodes // 5, 1))
    snapshot = corun_cache().stats  # zero; overwritten at the warmup mark
    for episode in range(episodes):
        if episode == warmup:
            snapshot = corun_cache().stats
        obs, info = env.reset()
        done = False
        while not done:
            action = agent.act(obs, info["action_mask"])
            obs, _, terminated, truncated, info = env.step(action)
            done = terminated or truncated
    tail = corun_cache().stats.delta(snapshot)

    return {
        "speedup": {
            "episodes": episodes,
            "timed_runs": timed_runs,
            "off_times_s": off_times,
            "on_times_s": on_times,
            "episodes_per_sec_reference": episodes / best_off,
            "episodes_per_sec_fastpath": episodes / best_on,
            "speedup": best_off / best_on,
            "corun_evals_per_sec_fastpath": evals / best_on,
            "corun_cache": corun.to_dict(),
            "decision_memo": decisions.to_dict(),
            "identical_returns": identical,
        },
        "hit_rate": {
            "episodes": episodes,
            "measured_after_episode": warmup,
            "policy": "greedy",
            "corun_cache_tail": tail.to_dict(),
        },
    }
