"""Streaming anomaly / SLO detectors over a run's telemetry.

:class:`AlertEngine` replays the tracer's (simulated-clock) record
stream chronologically plus the metrics registry, and raises typed
:class:`Alert`\\ s when a detector's threshold is crossed:

=====================  ================================================
``straggler_rate``      injected straggler faults per dispatched window
``retry_spike``         device-level retries per dispatched window
``fallback_spike``      FCFS policy fallbacks per dispatched window
``requeue_spike``       job re-queues (crashes) per dispatched window
``utilization_drop``    cluster utilization below the SLO floor
``queue_wait_p95``      p95 job queue wait above the SLO bound
``q_value_drift``       training Q-max drifting far from its baseline
``td_error_blowup``     training TD loss exploding vs. its baseline
=====================  ================================================

Rate detectors wait for ``min_windows`` dispatched windows before
judging (no alarms off a single window) and each detector *latches*:
it fires once, at the simulated timestamp where the threshold was first
crossed. Every alert is also written back into the tracer as an
``alert:<kind>`` event on the ``alerts`` track (category ``alert``) and
counted in ``alerts_raised_total`` — so exported traces carry their own
diagnosis.

Detection is read-only over telemetry a run already produced: a clean
run stays silent, and running the engine never changes scheduler
outputs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import ReproError
from repro.telemetry.export import device_timelines
from repro.telemetry.facade import Telemetry
from repro.telemetry.registry import Histogram, SketchMetric
from repro.telemetry.tracer import Event, Span

__all__ = [
    "Alert",
    "AlertConfig",
    "AlertEngine",
    "BurnRateConfig",
    "scan_burn_rate",
    "write_alerts_jsonl",
]


@dataclass(frozen=True)
class Alert:
    """One detector firing: what crossed which threshold, and when."""

    kind: str
    severity: str          # "warning" | "critical"
    ts: float              # simulated time of the crossing
    track: str             # where the evidence lives ("cluster", "train", ...)
    value: float
    threshold: float
    message: str

    def to_dict(self) -> dict:
        return {
            "type": "alert",
            "kind": self.kind,
            "severity": self.severity,
            "ts": self.ts,
            "track": self.track,
            "value": self.value,
            "threshold": self.threshold,
            "message": self.message,
        }


@dataclass
class AlertConfig:
    """Thresholds for the detectors (defaults sized for the simulated
    cluster scenarios; every rate is per dispatched window)."""

    min_windows: int = 3            # windows before rate detectors judge
    straggler_rate: float = 0.05
    retry_rate: float = 0.2
    fallback_rate: float = 0.1
    requeue_rate: float = 0.1
    min_utilization: float = 0.3    # SLO floor, cluster-wide
    queue_wait_p95: float = 7200.0  # SLO bound, simulated seconds
    min_wait_samples: int = 10
    baseline_episodes: int = 8      # training baseline prefix
    q_drift: float = 5.0            # |q - q0| > q_drift * max(1, |q0|)
    loss_blowup: float = 50.0       # loss > loss_blowup * max(loss0, 1e-6)


class AlertEngine:
    """Runs every detector over one telemetry handle's data."""

    def __init__(self, telemetry: Telemetry, config: AlertConfig | None = None):
        if not telemetry.enabled:
            raise ReproError("alert detection needs live telemetry")
        self.telemetry = telemetry
        self.config = config or AlertConfig()
        self.alerts: list[Alert] = []

    # ------------------------------------------------------------------
    def scan(self) -> list[Alert]:
        """Run all detectors, emit alert events/counters, return alerts."""
        alerts: list[Alert] = []
        alerts += self._scan_cluster_stream()
        alerts += self._scan_utilization()
        alerts += self._scan_queue_wait()
        alerts += self._scan_training_stream()
        alerts.sort(key=lambda a: (a.ts, a.kind))
        for a in alerts:
            self.telemetry.event(
                f"alert:{a.kind}",
                "alerts",
                a.ts,
                category="alert",
                severity=a.severity,
                value=a.value,
                threshold=a.threshold,
                message=a.message,
            )
            self.telemetry.count("alerts_raised_total", 1, kind=a.kind)
        self.alerts = alerts
        return alerts

    # ------------------------------------------------------------------
    def _scan_cluster_stream(self) -> list[Alert]:
        """Rate detectors over fault/retry/fallback/requeue occurrences,
        normalized by dispatched windows, judged at each window end."""
        cfg = self.config
        # (time, kind) points; window ends carry kind None
        points: list[tuple[float, str | None, str]] = []
        for r in self.telemetry.tracer.records():
            if isinstance(r, Span) and r.name == "window":
                points.append((r.end, None, r.track))
            elif isinstance(r, Event) and r.category != "alert":
                if r.name == "fault:straggler":
                    points.append((r.ts, "straggler", r.track))
                elif r.name == "retry":
                    points.append((r.ts, "retry", r.track))
                elif r.name == "fallback":
                    points.append((r.ts, "fallback", r.track))
                elif r.name == "requeue":
                    points.append((r.ts, "requeue", r.track))
        points.sort(key=lambda p: p[0])

        thresholds = {
            "straggler": ("straggler_rate", cfg.straggler_rate, "critical"),
            "retry": ("retry_spike", cfg.retry_rate, "warning"),
            "fallback": ("fallback_spike", cfg.fallback_rate, "warning"),
            "requeue": ("requeue_spike", cfg.requeue_rate, "warning"),
        }
        counts = {k: 0 for k in thresholds}
        windows = 0
        fired: set[str] = set()
        alerts: list[Alert] = []
        for ts, kind, track in points:
            if kind is not None:
                counts[kind] += 1
                continue
            windows += 1
            if windows < cfg.min_windows:
                continue
            for key, (name, threshold, severity) in thresholds.items():
                if name in fired:
                    continue
                rate = counts[key] / windows
                if rate > threshold:
                    fired.add(name)
                    alerts.append(Alert(
                        kind=name,
                        severity=severity,
                        ts=ts,
                        track="cluster",
                        value=rate,
                        threshold=threshold,
                        message=(
                            f"{counts[key]} {key} occurrences over "
                            f"{windows} windows "
                            f"(rate {rate:.2f} > {threshold:.2f})"
                        ),
                    ))
        return alerts

    def _scan_utilization(self) -> list[Alert]:
        """Whole-run cluster utilization vs. the SLO floor."""
        cfg = self.config
        tracer = self.telemetry.tracer
        n_windows = len(tracer.spans(name="window"))
        if n_windows < cfg.min_windows:
            return []
        timelines = device_timelines(tracer)
        if not timelines:
            return []
        makespan = max(
            iv["end"] for ivs in timelines.values() for iv in ivs
        )
        if makespan <= 0:
            return []
        busy = sum(
            iv["duration"] for ivs in timelines.values() for iv in ivs
        )
        util = busy / (makespan * len(timelines))
        if util >= cfg.min_utilization:
            return []
        return [Alert(
            kind="utilization_drop",
            severity="warning",
            ts=makespan,
            track="cluster",
            value=util,
            threshold=cfg.min_utilization,
            message=(
                f"cluster utilization {util:.2f} below the "
                f"{cfg.min_utilization:.2f} SLO floor"
            ),
        )]

    def _scan_queue_wait(self) -> list[Alert]:
        """p95 queue wait vs. the SLO, read off either wait metric.

        Accepts the batch path's ``queue_wait_seconds``
        :class:`Histogram` (reservoir quantiles, sketch-backed beyond
        the reservoir) and the fleet path's ``fleet_queue_wait_seconds``
        :class:`SketchMetric`; both expose ``count`` / ``quantile`` /
        ``maximum`` on their snapshots, so one detector covers both.
        """
        cfg = self.config
        metric = next(
            (
                m
                for m in self.telemetry.registry.collect()
                if m.name in ("queue_wait_seconds", "fleet_queue_wait_seconds")
                and isinstance(m, (Histogram, SketchMetric))
            ),
            None,
        )
        if metric is None:
            return []
        alerts: list[Alert] = []
        for key in metric.series():
            snap = metric.snapshot(**dict(key))
            if snap.count < cfg.min_wait_samples:
                continue
            p95 = snap.quantile(0.95)
            if p95 <= cfg.queue_wait_p95:
                continue
            alerts.append(Alert(
                kind="queue_wait_p95",
                severity="warning",
                ts=snap.maximum,
                track="cluster",
                value=p95,
                threshold=cfg.queue_wait_p95,
                message=(
                    f"queue wait p95 {p95:.0f}s over {snap.count} jobs "
                    f"exceeds the {cfg.queue_wait_p95:.0f}s SLO"
                ),
            ))
            break  # one latched alert regardless of label splits
        return alerts

    def _scan_training_stream(self) -> list[Alert]:
        """Q-drift and TD-loss blowup over per-episode ``episode``
        events (ts = episode index), judged against the baseline built
        from the first ``baseline_episodes`` episodes."""
        cfg = self.config
        episodes = sorted(
            self.telemetry.tracer.events(name="episode", track="train"),
            key=lambda e: e.ts,
        )
        if len(episodes) <= cfg.baseline_episodes:
            return []
        base = episodes[: cfg.baseline_episodes]
        q_base = sum(e.args["q_max"] for e in base) / len(base)
        loss_base = max(
            sum(e.args["loss"] for e in base) / len(base), 1e-6
        )
        q_bound = cfg.q_drift * max(1.0, abs(q_base))
        loss_bound = cfg.loss_blowup * loss_base
        alerts: list[Alert] = []
        fired: set[str] = set()
        for e in episodes[cfg.baseline_episodes:]:
            drift = abs(e.args["q_max"] - q_base)
            if "q_value_drift" not in fired and drift > q_bound:
                fired.add("q_value_drift")
                alerts.append(Alert(
                    kind="q_value_drift",
                    severity="critical",
                    ts=e.ts,
                    track="train",
                    value=e.args["q_max"],
                    threshold=q_bound,
                    message=(
                        f"episode {int(e.ts)}: Q-max "
                        f"{e.args['q_max']:.2f} drifted {drift:.2f} from "
                        f"baseline {q_base:.2f} (bound {q_bound:.2f})"
                    ),
                ))
            if "td_error_blowup" not in fired and e.args["loss"] > loss_bound:
                fired.add("td_error_blowup")
                alerts.append(Alert(
                    kind="td_error_blowup",
                    severity="critical",
                    ts=e.ts,
                    track="train",
                    value=e.args["loss"],
                    threshold=loss_bound,
                    message=(
                        f"episode {int(e.ts)}: TD loss "
                        f"{e.args['loss']:.3g} exceeds "
                        f"{cfg.loss_blowup:.0f}x baseline "
                        f"{loss_base:.3g}"
                    ),
                ))
            if len(fired) == 2:
                break
        return alerts


@dataclass
class BurnRateConfig:
    """Multi-window burn-rate SLO policy over fleet rollup frames.

    The SLO is "``objective`` of checkpoint frames keep queue-wait p95
    at or under ``slo_wait_seconds``"; the error budget is
    ``1 - objective``. A frame whose ``queue_wait_p95`` exceeds the
    bound is *bad*, and a window's burn rate is its bad-frame fraction
    divided by the error budget (burn 1.0 = spending budget exactly on
    schedule). The detector pages only when both a fast window (quick
    to fire) and a slow window (resistant to blips) burn hot — the
    standard multi-window guard against one-frame spikes.
    """

    slo_wait_seconds: float = 7200.0
    objective: float = 0.95       # fraction of frames that must meet the SLO
    fast_frames: int = 6
    slow_frames: int = 36
    fast_burn: float = 6.0        # page when the fast window burns this hot...
    slow_burn: float = 3.0        # ...and the slow window confirms it


def scan_burn_rate(
    frames: list[dict], config: BurnRateConfig | None = None
) -> list[Alert]:
    """Latch one critical alert at the first multi-window burn crossing.

    ``frames`` are rollup-frame dicts (``FleetSnapshot.to_dict`` rows,
    e.g. from ``repro.obs.rollup.read_frames_jsonl``); only their
    ``time`` and ``queue_wait_p95`` fields are read, and frames before
    the sketch has samples (p95 still zero) count as good.
    """
    cfg = config or BurnRateConfig()
    budget = max(1.0 - cfg.objective, 1e-9)
    bad = [
        1 if float(f.get("queue_wait_p95", 0.0)) > cfg.slo_wait_seconds else 0
        for f in frames
    ]
    for i in range(len(frames)):
        if i + 1 < cfg.fast_frames:
            continue
        fast = sum(bad[i + 1 - cfg.fast_frames: i + 1]) / cfg.fast_frames
        slow_n = min(i + 1, cfg.slow_frames)
        slow = sum(bad[i + 1 - slow_n: i + 1]) / slow_n
        fast_rate = fast / budget
        slow_rate = slow / budget
        if fast_rate >= cfg.fast_burn and slow_rate >= cfg.slow_burn:
            return [Alert(
                kind="slo_burn_rate",
                severity="critical",
                ts=float(frames[i].get("time", float(i))),
                track="fleet",
                value=fast_rate,
                threshold=cfg.fast_burn,
                message=(
                    f"queue-wait SLO burning {fast_rate:.1f}x budget over "
                    f"the last {cfg.fast_frames} frames "
                    f"({slow_rate:.1f}x over {slow_n}; p95 bound "
                    f"{cfg.slo_wait_seconds:.0f}s, objective "
                    f"{cfg.objective:.0%})"
                ),
            )]
    return []


def write_alerts_jsonl(alerts: list[Alert], path) -> int:
    """One alert JSON line per raised alert."""
    n = 0
    with open(path, "w") as fh:
        for a in alerts:
            fh.write(json.dumps(a.to_dict(), sort_keys=True))
            fh.write("\n")
            n += 1
    return n
