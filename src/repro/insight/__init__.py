"""repro.insight — decision-level observability on top of telemetry.

Four pieces (DESIGN.md §10):

* :mod:`repro.insight.records` — the decision flight recorder:
  structured :class:`DecisionRecord`/:class:`WindowRecord` capture for
  :class:`~repro.core.optimizer.OnlineOptimizer` and
  :class:`~repro.core.trainer.OfflineTrainer`, with lossless JSONL
  round-trip;
* :mod:`repro.insight.regret` — post-hoc regret attribution: replay a
  decision log against the :class:`~repro.core.oracle.OracleScheduler`
  and the time-sharing baseline, attribute per-window regret to
  decisions and CI/MI/US job classes, rank the worst decisions;
* :mod:`repro.insight.alerts` — streaming anomaly/SLO detectors over a
  run's telemetry (straggler/retry/fallback/requeue rates, utilization
  floor, queue-wait p95 off either the batch histogram or the fleet
  sketch, training Q-drift and TD-loss blowup) raising typed
  :class:`Alert`\\ s back into the trace, plus the multi-window
  burn-rate SLO monitor (:func:`scan_burn_rate`) over fleet rollup
  frames;
* :mod:`repro.insight.benchgate` — the bench-regression gate diffing a
  fresh ``BENCH_training.json`` against the committed baseline with
  tolerance bands (the ``repro-gpu benchgate`` CI job), plus the
  self-contained telemetry-overhead gate
  (:func:`measure_overhead_bench`).

Everything here is observer-only: recording consumes no randomness and
mutates no scheduler state, so instrumented runs stay bitwise-identical
to bare ones.
"""

from repro.insight.alerts import (
    Alert,
    AlertConfig,
    AlertEngine,
    BurnRateConfig,
    scan_burn_rate,
    write_alerts_jsonl,
)
from repro.insight.benchgate import (
    OVERHEAD_BUDGET,
    GateCheck,
    compare_bench,
    compare_overhead_bench,
    format_checks,
    gate_passes,
    load_bench,
    measure_overhead_bench,
    measure_training_bench,
)
from repro.insight.records import (
    AlternativeAction,
    DecisionRecord,
    DecisionRecorder,
    WindowCapture,
    WindowRecord,
    read_decision_log,
    write_decision_log,
)
from repro.insight.regret import (
    DecisionRegret,
    RegretAnalyzer,
    WindowRegret,
    worst_decisions,
    write_regret_jsonl,
)

__all__ = [
    "Alert",
    "AlertConfig",
    "AlertEngine",
    "BurnRateConfig",
    "scan_burn_rate",
    "write_alerts_jsonl",
    "GateCheck",
    "OVERHEAD_BUDGET",
    "compare_bench",
    "compare_overhead_bench",
    "format_checks",
    "gate_passes",
    "load_bench",
    "measure_overhead_bench",
    "measure_training_bench",
    "AlternativeAction",
    "DecisionRecord",
    "DecisionRecorder",
    "WindowCapture",
    "WindowRecord",
    "read_decision_log",
    "write_decision_log",
    "DecisionRegret",
    "RegretAnalyzer",
    "WindowRegret",
    "worst_decisions",
    "write_regret_jsonl",
]
