"""repro.insight — decision-level observability on top of telemetry.

Four pieces (DESIGN.md §10):

* :mod:`repro.insight.records` — the decision flight recorder:
  structured :class:`DecisionRecord`/:class:`WindowRecord` capture for
  :class:`~repro.core.optimizer.OnlineOptimizer` and
  :class:`~repro.core.trainer.OfflineTrainer`, with lossless JSONL
  round-trip;
* :mod:`repro.insight.regret` — post-hoc regret attribution: replay a
  decision log against the :class:`~repro.core.oracle.OracleScheduler`
  and the time-sharing baseline, attribute per-window regret to
  decisions and CI/MI/US job classes, rank the worst decisions;
* :mod:`repro.insight.alerts` — streaming anomaly/SLO detectors over a
  run's telemetry (straggler/retry/fallback/requeue rates, utilization
  floor, queue-wait p95, training Q-drift and TD-loss blowup) raising
  typed :class:`Alert`\\ s back into the trace;
* :mod:`repro.insight.benchgate` — the bench-regression gate diffing a
  fresh ``BENCH_training.json`` against the committed baseline with
  tolerance bands (the ``repro-gpu benchgate`` CI job).

Everything here is observer-only: recording consumes no randomness and
mutates no scheduler state, so instrumented runs stay bitwise-identical
to bare ones.
"""

from repro.insight.alerts import (
    Alert,
    AlertConfig,
    AlertEngine,
    write_alerts_jsonl,
)
from repro.insight.benchgate import (
    GateCheck,
    compare_bench,
    format_checks,
    gate_passes,
    load_bench,
    measure_training_bench,
)
from repro.insight.records import (
    AlternativeAction,
    DecisionRecord,
    DecisionRecorder,
    WindowCapture,
    WindowRecord,
    read_decision_log,
    write_decision_log,
)
from repro.insight.regret import (
    DecisionRegret,
    RegretAnalyzer,
    WindowRegret,
    worst_decisions,
    write_regret_jsonl,
)

__all__ = [
    "Alert",
    "AlertConfig",
    "AlertEngine",
    "write_alerts_jsonl",
    "GateCheck",
    "compare_bench",
    "format_checks",
    "gate_passes",
    "load_bench",
    "measure_training_bench",
    "AlternativeAction",
    "DecisionRecord",
    "DecisionRecorder",
    "WindowCapture",
    "WindowRecord",
    "read_decision_log",
    "write_decision_log",
    "DecisionRegret",
    "RegretAnalyzer",
    "WindowRegret",
    "worst_decisions",
    "write_regret_jsonl",
]
