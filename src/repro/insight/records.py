"""Decision flight recorder: structured per-decision records.

Every co-scheduling decision the trained agent takes — online through
:class:`~repro.core.optimizer.OnlineOptimizer` or during offline
training episodes — can be captured as a :class:`DecisionRecord`: the
window signature the agent saw, the chosen action and its dueling
value/advantage decomposition, the top-k alternative actions with their
Q-gaps, and the predicted vs. realized co-run times. One
:class:`WindowRecord` per window/episode summarizes the realized
schedule so the regret analyzer (:mod:`repro.insight.regret`) can
replay it against the oracle.

Capture is a *pure observer*: staging runs only network inference and
the analytic predictor (no RNG, no environment mutation), so a run with
a recorder attached is bitwise-identical to one without — the same
contract the telemetry facade keeps (DESIGN.md §9/§10).

Records round-trip losslessly through JSON lines
(:func:`write_decision_log` / :func:`read_decision_log`): JSON floats
serialize via shortest-repr, so ``from_dict(to_dict(r)) == r`` holds
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.gpu.partition import format_partition

__all__ = [
    "AlternativeAction",
    "DecisionRecord",
    "WindowRecord",
    "DecisionRecorder",
    "WindowCapture",
    "write_decision_log",
    "read_decision_log",
]


@dataclass(frozen=True)
class AlternativeAction:
    """One runner-up template the agent could have picked instead."""

    action: int
    q_value: float
    q_gap: float  # best masked Q minus this action's Q (>= 0)

    def to_dict(self) -> dict:
        return {"action": self.action, "q_value": self.q_value,
                "q_gap": self.q_gap}

    @classmethod
    def from_dict(cls, d: dict) -> "AlternativeAction":
        return cls(action=int(d["action"]), q_value=float(d["q_value"]),
                   q_gap=float(d["q_gap"]))


@dataclass(frozen=True)
class DecisionRecord:
    """One agent decision: what was chosen, why, and what it cost.

    ``window`` is the window *as the agent saw it* (for the online path
    that is the profiled subset); ``chosen`` indexes into it. ``value``
    and ``advantage`` are the dueling decomposition ``Q = V + A -
    mean(A)`` of the chosen action (``V`` is 0.0 for a plain head).
    ``predicted_makespan`` is the analytic predictor's estimate for the
    committed group under its binding; ``realized_corun_time`` the
    simulated co-run result.
    """

    source: str                 # "online" | "train"
    seq: int                    # per-source window/episode sequence number
    step: int                   # decision index within the window
    window: tuple[str, ...]     # benchmark names the agent saw
    window_index: int           # env window index (0 for online)
    available: tuple[int, ...]  # schedulable window indices at decision time
    action: int
    concurrency: int
    partition: str              # hierarchical partition label
    chosen: tuple[int, ...]     # window indices bound to the template slots
    jobs: tuple[str, ...]       # benchmark names of the chosen jobs
    q_chosen: float
    value: float                # dueling V(s)
    advantage: float            # dueling A(s, a_chosen)
    alternatives: tuple[AlternativeAction, ...]  # top-k by masked Q
    greedy_action: int          # argmax of the masked Q row
    explored: bool              # action != greedy_action
    epsilon: float              # exploration rate at decision time
    predicted_makespan: float
    realized_corun_time: float
    solo_run_time: float        # sum of members' solo times
    reward: float | None        # training reward (None online)

    def to_dict(self) -> dict:
        return {
            "type": "decision",
            "source": self.source,
            "seq": self.seq,
            "step": self.step,
            "window": list(self.window),
            "window_index": self.window_index,
            "available": list(self.available),
            "action": self.action,
            "concurrency": self.concurrency,
            "partition": self.partition,
            "chosen": list(self.chosen),
            "jobs": list(self.jobs),
            "q_chosen": self.q_chosen,
            "value": self.value,
            "advantage": self.advantage,
            "alternatives": [a.to_dict() for a in self.alternatives],
            "greedy_action": self.greedy_action,
            "explored": self.explored,
            "epsilon": self.epsilon,
            "predicted_makespan": self.predicted_makespan,
            "realized_corun_time": self.realized_corun_time,
            "solo_run_time": self.solo_run_time,
            "reward": self.reward,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "DecisionRecord":
        return cls(
            source=str(d["source"]),
            seq=int(d["seq"]),
            step=int(d["step"]),
            window=tuple(str(n) for n in d["window"]),
            window_index=int(d["window_index"]),
            available=tuple(int(i) for i in d["available"]),
            action=int(d["action"]),
            concurrency=int(d["concurrency"]),
            partition=str(d["partition"]),
            chosen=tuple(int(i) for i in d["chosen"]),
            jobs=tuple(str(n) for n in d["jobs"]),
            q_chosen=float(d["q_chosen"]),
            value=float(d["value"]),
            advantage=float(d["advantage"]),
            alternatives=tuple(
                AlternativeAction.from_dict(a) for a in d["alternatives"]
            ),
            greedy_action=int(d["greedy_action"]),
            explored=bool(d["explored"]),
            epsilon=float(d["epsilon"]),
            predicted_makespan=float(d["predicted_makespan"]),
            realized_corun_time=float(d["realized_corun_time"]),
            solo_run_time=float(d["solo_run_time"]),
            reward=None if d["reward"] is None else float(d["reward"]),
        )

    @property
    def q_gap_to_greedy(self) -> float:
        """How much masked Q the agent left on the table (0 if greedy)."""
        best = max(
            (a.q_value for a in self.alternatives), default=self.q_chosen
        )
        return max(best - self.q_chosen, 0.0)

    @property
    def prediction_error(self) -> float:
        """Realized minus predicted group makespan."""
        return self.realized_corun_time - self.predicted_makespan


@dataclass(frozen=True)
class WindowRecord:
    """Realized summary of one optimized window / training episode.

    ``window`` here is the *full* window (including jobs the online
    path drained solo while profiling), so the regret analyzer replays
    the same problem instance the oracle would have been handed.
    """

    source: str
    seq: int
    window: tuple[str, ...]
    method: str
    c_max: int
    window_size: int
    total_time: float
    solo_time: float
    throughput_gain: float
    n_decisions: int
    n_unprofiled: int
    decision_seconds: float

    def to_dict(self) -> dict:
        return {
            "type": "window",
            "source": self.source,
            "seq": self.seq,
            "window": list(self.window),
            "method": self.method,
            "c_max": self.c_max,
            "window_size": self.window_size,
            "total_time": self.total_time,
            "solo_time": self.solo_time,
            "throughput_gain": self.throughput_gain,
            "n_decisions": self.n_decisions,
            "n_unprofiled": self.n_unprofiled,
            "decision_seconds": self.decision_seconds,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "WindowRecord":
        return cls(
            source=str(d["source"]),
            seq=int(d["seq"]),
            window=tuple(str(n) for n in d["window"]),
            method=str(d["method"]),
            c_max=int(d["c_max"]),
            window_size=int(d["window_size"]),
            total_time=float(d["total_time"]),
            solo_time=float(d["solo_time"]),
            throughput_gain=float(d["throughput_gain"]),
            n_decisions=int(d["n_decisions"]),
            n_unprofiled=int(d["n_unprofiled"]),
            decision_seconds=float(d["decision_seconds"]),
        )


class DecisionRecorder:
    """Accumulates decision/window records in capture order.

    Hand one instance to :class:`~repro.core.optimizer.OnlineOptimizer`
    and/or :class:`~repro.core.trainer.OfflineTrainer`; read the
    ``decisions``/``windows`` lists afterwards or persist everything
    with :func:`write_decision_log`.
    """

    def __init__(self, top_k: int = 5):
        if top_k < 1:
            raise ReproError("top_k must be at least 1")
        self.top_k = top_k
        self.decisions: list[DecisionRecord] = []
        self.windows: list[WindowRecord] = []
        self._records: list = []  # both kinds, capture order
        self._seq: dict[str, int] = {}

    def begin(self, source: str) -> int:
        """Allocate the next sequence number for ``source``."""
        seq = self._seq.get(source, 0)
        self._seq[source] = seq + 1
        return seq

    def record_decision(self, record: DecisionRecord) -> None:
        self.decisions.append(record)
        self._records.append(record)

    def record_window(self, record: WindowRecord) -> None:
        self.windows.append(record)
        self._records.append(record)

    def records(self) -> list:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)


class WindowCapture:
    """Stages per-step data during one window and emits final records.

    Usage (inside the optimizer/trainer loop)::

        cap = WindowCapture(recorder, "online", agent, env)
        ...
        cap.stage(obs, mask, action)          # before env.step(action)
        obs, reward, ... = env.step(action)
        cap.set_reward(reward)                # training path only
        ...
        cap.finalize(env_schedule, final_schedule, ...)

    ``stage`` must run *before* ``env.step`` so the availability
    snapshot matches what the agent observed. Staging is pure compute
    (one extra network inference); realized times and the predictor
    estimate are filled in at :meth:`finalize` by walking the terminal
    schedule — each environment step appends exactly one group, in
    decision order, so ``groups[i]`` belongs to staged decision ``i``.
    """

    def __init__(self, recorder: DecisionRecorder, source: str, agent, env):
        self.recorder = recorder
        self.source = source
        self.agent = agent
        self.env = env
        self.seq = recorder.begin(source)
        self._staged: list[dict] = []

    def stage(
        self, obs: np.ndarray, mask: np.ndarray, action: int,
        epsilon: float = 0.0,
    ) -> None:
        q, v, adv = self.agent.q_decomposition(obs)
        masked = np.where(np.asarray(mask, dtype=bool), q, -np.inf)
        greedy = int(np.argmax(masked))
        best = float(masked[greedy])
        order = np.argsort(masked)[::-1]
        alts = tuple(
            AlternativeAction(
                int(a), float(q[int(a)]), best - float(q[int(a)])
            )
            for a in order[: self.recorder.top_k]
            if mask[int(a)]
        )
        self._staged.append({
            "step": len(self._staged),
            "available": tuple(
                i for i, free in enumerate(self.env.availability) if free
            ),
            "action": int(action),
            "q_chosen": float(q[int(action)]),
            "value": v,
            "advantage": float(adv[int(action)]),
            "alternatives": alts,
            "greedy_action": greedy,
            "epsilon": float(epsilon),
            "reward": None,
        })

    def set_reward(self, reward: float) -> None:
        self._staged[-1]["reward"] = float(reward)

    def finalize(
        self,
        env_schedule,
        final_schedule,
        *,
        full_window: list,
        method: str,
        c_max: int,
        window_size: int,
        n_unprofiled: int = 0,
        decision_seconds: float = 0.0,
    ) -> None:
        """Emit one DecisionRecord per staged step plus the WindowRecord.

        ``env_schedule`` is the environment's terminal schedule (groups
        aligned 1:1 with staged decisions); ``final_schedule`` the
        schedule actually executed (after gain enforcement / solo
        drains), whose totals go into the window summary.
        """
        env = self.env
        jobs = env.window_jobs
        profiles = env.job_profiles
        idx_of = {j.job_id: i for i, j in enumerate(jobs)}
        window_names = tuple(j.benchmark_name for j in jobs)
        groups = env_schedule.groups
        if len(groups) < len(self._staged):
            raise ReproError(
                f"schedule has {len(groups)} groups for "
                f"{len(self._staged)} staged decisions"
            )
        for staged, group in zip(self._staged, groups):
            chosen = tuple(idx_of[j.job_id] for j in group.jobs)
            predicted = env.predictor.predict_group(
                [profiles[i] for i in chosen], group.partition
            ).makespan
            self.recorder.record_decision(DecisionRecord(
                source=self.source,
                seq=self.seq,
                step=staged["step"],
                window=window_names,
                window_index=env.window_index,
                available=staged["available"],
                action=staged["action"],
                concurrency=group.concurrency,
                partition=format_partition(group.partition),
                chosen=chosen,
                jobs=tuple(j.benchmark_name for j in group.jobs),
                q_chosen=staged["q_chosen"],
                value=staged["value"],
                advantage=staged["advantage"],
                alternatives=staged["alternatives"],
                greedy_action=staged["greedy_action"],
                explored=staged["action"] != staged["greedy_action"],
                epsilon=staged["epsilon"],
                predicted_makespan=float(predicted),
                realized_corun_time=group.corun_time,
                solo_run_time=group.solo_run_time,
                reward=staged["reward"],
            ))
        self.recorder.record_window(WindowRecord(
            source=self.source,
            seq=self.seq,
            window=tuple(j.benchmark_name for j in full_window),
            method=method,
            c_max=c_max,
            window_size=window_size,
            total_time=final_schedule.total_time,
            solo_time=final_schedule.total_solo_time,
            throughput_gain=final_schedule.throughput_gain,
            n_decisions=len(self._staged),
            n_unprofiled=n_unprofiled,
            decision_seconds=decision_seconds,
        ))

    def finalize_empty(
        self,
        final_schedule,
        *,
        full_window: list,
        method: str,
        c_max: int,
        window_size: int,
        n_unprofiled: int = 0,
        decision_seconds: float = 0.0,
    ) -> None:
        """Window summary for a pass that took no agent decision
        (everything drained solo: single profiled job, or all jobs
        unprofiled)."""
        self.recorder.record_window(WindowRecord(
            source=self.source,
            seq=self.seq,
            window=tuple(j.benchmark_name for j in full_window),
            method=method,
            c_max=c_max,
            window_size=window_size,
            total_time=final_schedule.total_time,
            solo_time=final_schedule.total_solo_time,
            throughput_gain=final_schedule.throughput_gain,
            n_decisions=0,
            n_unprofiled=n_unprofiled,
            decision_seconds=decision_seconds,
        ))


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------
def write_decision_log(recorder: DecisionRecorder, path) -> int:
    """Write every captured record to ``path`` as JSON lines.

    Records keep capture order; each line carries a ``"type"`` tag
    (``decision`` / ``window``). Returns the number of lines written.
    """
    import json

    n = 0
    with open(path, "w") as fh:
        for record in recorder.records():
            fh.write(json.dumps(record.to_dict(), sort_keys=True))
            fh.write("\n")
            n += 1
    return n


def read_decision_log(
    path,
) -> tuple[list[DecisionRecord], list[WindowRecord]]:
    """Load a decision log written by :func:`write_decision_log`."""
    import json

    decisions: list[DecisionRecord] = []
    windows: list[WindowRecord] = []
    with open(path) as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            d = json.loads(line)
            kind = d.get("type")
            if kind == "decision":
                decisions.append(DecisionRecord.from_dict(d))
            elif kind == "window":
                windows.append(WindowRecord.from_dict(d))
            else:
                raise ReproError(
                    f"{path}:{line_no}: unknown record type {kind!r}"
                )
    return decisions, windows
