"""Small unit helpers used across the GPU model and performance model.

The simulator works internally in SI units: seconds, bytes, bytes/second,
and FLOP/s. These helpers exist so module code reads like the hardware
spec sheets it was written from (``gib_per_s(1555)``) instead of raw
powers of ten, and so unit bugs stay greppable.
"""

from __future__ import annotations

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "KILO",
    "MEGA",
    "GIGA",
    "TERA",
    "gib",
    "mib",
    "gib_per_s",
    "gb_per_s",
    "gflops",
    "tflops",
    "usec",
    "msec",
    "percent",
    "clamp",
]

KIB = 1024
MIB = 1024**2
GIB = 1024**3

KILO = 10**3
MEGA = 10**6
GIGA = 10**9
TERA = 10**12


def gib(x: float) -> float:
    """Gibibytes to bytes."""
    return x * GIB


def mib(x: float) -> float:
    """Mebibytes to bytes."""
    return x * MIB


def gib_per_s(x: float) -> float:
    """GiB/s to bytes/s."""
    return x * GIB


def gb_per_s(x: float) -> float:
    """GB/s (decimal, as used in vendor spec sheets) to bytes/s."""
    return x * GIGA


def gflops(x: float) -> float:
    """GFLOP/s to FLOP/s."""
    return x * GIGA


def tflops(x: float) -> float:
    """TFLOP/s to FLOP/s."""
    return x * TERA


def usec(x: float) -> float:
    """Microseconds to seconds."""
    return x * 1e-6


def msec(x: float) -> float:
    """Milliseconds to seconds."""
    return x * 1e-3


def percent(x: float) -> float:
    """A percentage in [0, 100] to a fraction in [0, 1]."""
    return x / 100.0


def clamp(x: float, lo: float, hi: float) -> float:
    """Clamp ``x`` into the closed interval [lo, hi]."""
    if x < lo:
        return lo
    if x > hi:
        return hi
    return x
