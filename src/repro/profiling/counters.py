"""The hardware performance counter set of Table III.

Twelve statistics, as collected by NVIDIA Nsight Compute on the paper's
platform. The simulated profiler synthesizes them from the kernel model
and the device spec; downstream code (state featurization, reward
computation, classification) treats them as opaque measurements, exactly
as the paper's pipeline treats real counters.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.errors import ProfileError

__all__ = ["HardwareCounters", "COUNTER_NAMES"]


@dataclass(frozen=True)
class HardwareCounters:
    """One profiling sample (solo run at full device).

    Field units follow Nsight conventions: percentages in [0, 100],
    throughputs in bytes/s, cycle counts dimensionless, duration in
    seconds.
    """

    duration: float
    memory_pct: float
    elapsed_cycles: float
    grid_size: float
    registers_per_thread: float
    dram_throughput: float
    l1_tex_throughput: float
    l2_throughput: float
    sm_active_cycles: float
    compute_sm_pct: float
    waves_per_sm: float
    achieved_active_warps_per_sm: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ProfileError("duration must be positive")
        for pct_name in ("memory_pct", "compute_sm_pct"):
            v = getattr(self, pct_name)
            if not 0.0 <= v <= 100.0:
                raise ProfileError(f"{pct_name} must be in [0, 100]; got {v}")
        for nonneg in (
            "elapsed_cycles",
            "grid_size",
            "registers_per_thread",
            "dram_throughput",
            "l1_tex_throughput",
            "l2_throughput",
            "sm_active_cycles",
            "waves_per_sm",
            "achieved_active_warps_per_sm",
        ):
            if getattr(self, nonneg) < 0:
                raise ProfileError(f"{nonneg} must be >= 0")

    def as_vector(self) -> np.ndarray:
        """All counters as a float vector in declaration order."""
        return np.array(
            [getattr(self, f.name) for f in fields(self)], dtype=float
        )

    @classmethod
    def from_vector(cls, vec: np.ndarray) -> "HardwareCounters":
        names = [f.name for f in fields(cls)]
        if len(vec) != len(names):
            raise ProfileError(
                f"counter vector must have {len(names)} entries; got {len(vec)}"
            )
        return cls(**{n: float(v) for n, v in zip(names, vec)})

    def to_dict(self) -> dict[str, float]:
        return {f.name: float(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: dict[str, float]) -> "HardwareCounters":
        return cls(**{k: float(v) for k, v in d.items()})


#: Counter names in vector order (also defines ``f`` in the paper's
#: input-layer size ``W x (f + 5)``).
COUNTER_NAMES: tuple[str, ...] = tuple(
    f.name for f in fields(HardwareCounters)
)
