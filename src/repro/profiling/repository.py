"""The Job Profiles Repository (paper Section IV-B, Fig. 7).

Profiles are keyed by the *matching function* over job submission
information. The paper's simple scheme — application binary path plus
name — is implemented here verbatim; the key derivation is a single
overridable method so the "more sophisticated scheme" the paper defers
to future work can be plugged in.

Jobs without a stored profile are not co-scheduling candidates: the
online optimizer runs them exclusively (collecting their profile for
next time). The repository persists to JSON so the online phase can
outlive scheduler restarts.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ProfileError
from repro.profiling.profiler import JobProfile
from repro.workloads.jobs import Job

__all__ = ["ProfileRepository"]


class ProfileRepository:
    """In-memory profile store with JSON persistence."""

    def __init__(self) -> None:
        self._profiles: dict[str, JobProfile] = {}

    # ------------------------------------------------------------------
    # the matching function
    # ------------------------------------------------------------------
    def key_for(self, job: Job) -> str:
        """The paper's matching key: binary path + program name."""
        return f"{job.binary_path}:{job.benchmark_name}"

    # ------------------------------------------------------------------
    # store / lookup
    # ------------------------------------------------------------------
    def store(self, job: Job, profile: JobProfile) -> None:
        self._profiles[self.key_for(job)] = profile

    def has(self, job: Job) -> bool:
        return self.key_for(job) in self._profiles

    def lookup(self, job: Job) -> JobProfile:
        try:
            return self._profiles[self.key_for(job)]
        except KeyError:
            raise ProfileError(
                f"no profile for job {job.job_id} "
                f"({self.key_for(job)}); run it exclusively first"
            ) from None

    def get(self, job: Job) -> JobProfile | None:
        return self._profiles.get(self.key_for(job))

    def __len__(self) -> int:
        return len(self._profiles)

    def __contains__(self, job: Job) -> bool:
        return self.has(job)

    def copy(self) -> "ProfileRepository":
        """A shallow copy (profiles are immutable, sharing them is safe).

        Useful when one trained repository seeds several online
        optimizers that will each collect their own new profiles.
        """
        clone = ProfileRepository()
        clone._profiles = dict(self._profiles)
        return clone

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        payload = {k: p.to_dict() for k, p in self._profiles.items()}
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: str | Path) -> "ProfileRepository":
        repo = cls()
        payload = json.loads(Path(path).read_text())
        if not isinstance(payload, dict):
            raise ProfileError(f"malformed profile repository file: {path}")
        for key, d in payload.items():
            repo._profiles[key] = JobProfile.from_dict(d)
        return repo
