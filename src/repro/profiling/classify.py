"""CI / MI / US classification (paper Section V-A2).

The procedure, following the paper (which itself follows Arima et al.,
ICPP Workshops 2022):

1. If the performance degradation of a 1-GPC private-memory run versus
   the full 8-GPC run is below 10%, the program is **UnScalable (US)**.
2. Otherwise, if the ratio of ``Compute (SM) [%]`` to ``Memory [%]``
   exceeds 0.80, it is **Compute Intensive (CI)**.
3. Otherwise it is **Memory Intensive (MI)**.

The thresholds are module constants so ablations can vary them.
"""

from __future__ import annotations

from repro.errors import ProfileError
from repro.profiling.profiler import JobProfile, NsightProfiler
from repro.workloads.jobs import Job
from repro.workloads.suite import CLASS_CI, CLASS_MI, CLASS_US

__all__ = [
    "US_DEGRADATION_THRESHOLD",
    "CI_RATIO_THRESHOLD",
    "classify",
    "classify_job",
]

#: Rule 1: a 1-GPC run within this relative slowdown marks the program US.
US_DEGRADATION_THRESHOLD = 0.10

#: Rule 2: Compute(SM)% / Memory% above this marks a scalable program CI.
CI_RATIO_THRESHOLD = 0.80


def classify(profile: JobProfile) -> str:
    """Classify a profiled program into CI, MI, or US."""
    if profile.solo_time <= 0:
        raise ProfileError("profile has non-positive solo time")
    degradation = profile.one_gpc_time / profile.solo_time - 1.0
    if degradation < US_DEGRADATION_THRESHOLD:
        return CLASS_US
    memory_pct = profile.counters.memory_pct
    if memory_pct <= 0:
        return CLASS_CI
    if profile.counters.compute_sm_pct / memory_pct > CI_RATIO_THRESHOLD:
        return CLASS_CI
    return CLASS_MI


def classify_job(profiler: NsightProfiler, job: Job) -> tuple[str, JobProfile]:
    """Profile a job and classify it in one step."""
    profile = profiler.profile(job)
    return classify(profile), profile
