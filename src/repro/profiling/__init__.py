"""Nsight-Compute-like profiling: counters, repository, classification.

The paper characterizes every job with the hardware performance counters
of Table III, collected from a solo run, and stores them in a *Job
Profiles Repository* keyed by the application binary path + name
(Section IV-B). :mod:`repro.profiling.classify` implements the
CI/MI/US classification procedure of Section V-A2.
"""

from repro.profiling.counters import HardwareCounters, COUNTER_NAMES
from repro.profiling.profiler import NsightProfiler, JobProfile
from repro.profiling.repository import ProfileRepository
from repro.profiling.classify import classify, classify_job

__all__ = [
    "HardwareCounters",
    "COUNTER_NAMES",
    "NsightProfiler",
    "JobProfile",
    "ProfileRepository",
    "classify",
    "classify_job",
]
