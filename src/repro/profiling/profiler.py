"""The simulated Nsight Compute profiler.

Profiling a job means: run it solo on the full device, run it solo on a
1-GPC private MIG slice (the classification procedure needs both), and
synthesize the Table III counters from the observed run and the device
spec. Optional multiplicative measurement noise (deterministic per
program name) models run-to-run counter variation; it defaults to a
small value so that profiles look like measurements, not model
parameters, without destabilizing the classification.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.gpu.arch import GpuSpec
from repro.gpu.device import SimulatedGpu
from repro.profiling.counters import HardwareCounters
from repro.workloads.jobs import Job
from repro.workloads.kernels import KernelModel

__all__ = ["JobProfile", "NsightProfiler"]


@dataclass(frozen=True)
class JobProfile:
    """Everything the scheduler may know about a program.

    ``solo_time`` is the full-device solo run; ``one_gpc_time`` the
    1-GPC private MIG run used by the UnScalable test. The counters are
    the Table III sample from the full-device run.
    """

    benchmark_name: str
    binary_path: str
    counters: HardwareCounters
    solo_time: float
    one_gpc_time: float

    def to_dict(self) -> dict:
        return {
            "benchmark_name": self.benchmark_name,
            "binary_path": self.binary_path,
            "counters": self.counters.to_dict(),
            "solo_time": self.solo_time,
            "one_gpc_time": self.one_gpc_time,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "JobProfile":
        return cls(
            benchmark_name=d["benchmark_name"],
            binary_path=d["binary_path"],
            counters=HardwareCounters.from_dict(d["counters"]),
            solo_time=float(d["solo_time"]),
            one_gpc_time=float(d["one_gpc_time"]),
        )


class NsightProfiler:
    """Collects job profiles on a simulated device.

    ``noise`` is the relative sigma of multiplicative counter noise,
    seeded per program name so repeated profiling of the same binary is
    deterministic (a real Nsight run is noisy but a stored profile is a
    single snapshot).
    """

    def __init__(self, device: SimulatedGpu, noise: float = 0.0):
        if noise < 0 or noise > 0.2:
            raise ValueError("noise sigma must be in [0, 0.2]")
        self.device = device
        self.noise = noise

    def profile(self, job: Job) -> JobProfile:
        """Profile one job: full-device solo run + 1-GPC private run."""
        solo = self.device.run_solo(job)
        one_gpc = self.device.run_solo_restricted(job, gpcs=1)
        counters = self._synthesize(job.model, self.device.spec, solo.elapsed)
        return JobProfile(
            benchmark_name=job.benchmark_name,
            binary_path=job.binary_path,
            counters=counters,
            solo_time=solo.elapsed,
            one_gpc_time=one_gpc.elapsed,
        )

    # ------------------------------------------------------------------
    def _rng(self, name: str) -> np.random.Generator:
        digest = hashlib.sha256(name.encode()).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "little"))

    def _jitter(self, rng: np.random.Generator) -> float:
        if self.noise == 0.0:
            return 1.0
        return float(np.exp(rng.normal(0.0, self.noise)))

    def _synthesize(
        self, model: KernelModel, spec: GpuSpec, duration: float
    ) -> HardwareCounters:
        """Derive the Table III counters from the kernel model.

        ``Compute (SM) [%]`` is SM-busy time weighted by warp occupancy
        (an SM stalled at low occupancy is not "busy" to Nsight);
        ``Memory [%]`` is the average DRAM utilization. L2/L1
        throughputs back out of the DRAM traffic through the hit rates.
        """
        rng = self._rng(model.name)
        warp_eff = min(1.0, model.achieved_warps_per_sm / spec.max_warps_per_sm)
        compute_pct = 100.0 * model.compute_duty * warp_eff
        memory_pct = 100.0 * model.avg_dram_utilization
        dram_bps = model.bw_demand * spec.mem_bandwidth
        l2_bps = dram_bps / max(1e-3, 1.0 - model.l2_hit_rate)
        l1_bps = l2_bps / max(1e-3, 1.0 - model.l1_hit_rate)
        elapsed_cycles = duration * spec.sm_clock_hz
        sm_active = elapsed_cycles * model.compute_duty

        return HardwareCounters(
            duration=duration * self._jitter(rng),
            memory_pct=min(100.0, memory_pct * self._jitter(rng)),
            elapsed_cycles=elapsed_cycles * self._jitter(rng),
            grid_size=float(model.grid_size),
            registers_per_thread=float(model.registers_per_thread),
            dram_throughput=dram_bps * self._jitter(rng),
            l1_tex_throughput=l1_bps * self._jitter(rng),
            l2_throughput=l2_bps * self._jitter(rng),
            sm_active_cycles=sm_active * self._jitter(rng),
            compute_sm_pct=min(100.0, compute_pct * self._jitter(rng)),
            waves_per_sm=model.waves_per_sm * self._jitter(rng),
            achieved_active_warps_per_sm=(
                model.achieved_warps_per_sm * self._jitter(rng)
            ),
        )
