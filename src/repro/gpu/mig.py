"""MIG (Multi-Instance GPU): coarse-grained physical partitioning.

A MIG-enabled GPU is carved into **GPU instances** (GIs) at GPC
granularity. Each GI owns its compute slices and a proportional set of
memory slices (LLC + HBM blocks), giving full performance isolation
between GIs. Inside a GI, one or more **compute instances** (CIs) share
the GI's memory resources but own disjoint subsets of its compute
slices.

The model enforces the A100 restrictions the paper lists in
Section III-A:

1. Turning MIG on costs one GPC (8 GPCs -> 7 compute slices).
2. Reconfiguration is only legal while no job is resident.
3. Only the driver's placement table is allowed, which limits the
   number of distinct configurations (19 on the A100 — verified by
   :func:`enumerate_gi_combinations` and the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MigError
from repro.gpu.arch import GpuSpec, SlicePlacement

__all__ = [
    "GiProfile",
    "GpuInstance",
    "ComputeInstance",
    "MigManager",
    "enumerate_gi_combinations",
]


@dataclass(frozen=True)
class GiProfile:
    """A GPU-instance profile resolved against a device spec."""

    name: str
    compute_slices: int
    memory_slices: int
    starts: tuple[int, ...]

    @classmethod
    def from_placement(cls, name: str, placement: SlicePlacement) -> "GiProfile":
        return cls(
            name=name,
            compute_slices=placement.compute_slices,
            memory_slices=placement.memory_slices,
            starts=placement.starts,
        )


@dataclass
class ComputeInstance:
    """A compute instance: a contiguous run of compute slices inside a GI."""

    ci_id: int
    gi_id: int
    compute_slices: int
    resident_jobs: list[str] = field(default_factory=list)

    @property
    def busy(self) -> bool:
        return bool(self.resident_jobs)


@dataclass
class GpuInstance:
    """A GPU instance: isolated compute + memory slices."""

    gi_id: int
    profile: GiProfile
    start: int
    cis: list[ComputeInstance] = field(default_factory=list)

    @property
    def compute_slices(self) -> int:
        return self.profile.compute_slices

    @property
    def memory_slices(self) -> int:
        return self.profile.memory_slices

    @property
    def end(self) -> int:
        """One past the last compute slice this GI occupies."""
        return self.start + self.profile.compute_slices

    @property
    def busy(self) -> bool:
        return any(ci.busy for ci in self.cis)

    def unallocated_slices(self) -> int:
        return self.compute_slices - sum(ci.compute_slices for ci in self.cis)


#: CI sizes the A100 driver supports inside a GI (subset limited by GI width).
_CI_SIZES = (1, 2, 3, 4, 7)


class MigManager:
    """Driver-like state machine for MIG configuration on one device.

    Usage mirrors ``nvidia-smi mig``::

        mig = MigManager(A100_40GB)
        mig.enable()
        gi4 = mig.create_gi("4g.20gb")
        gi3 = mig.create_gi("3g.20gb")
        ci = mig.create_ci(gi4, 4)

    All mutating calls raise :class:`MigError` when a placement or
    lifecycle rule is violated, exactly where the real driver would
    return an error.
    """

    def __init__(self, spec: GpuSpec) -> None:
        self.spec = spec
        self.enabled = False
        self._next_gi = 0
        self._next_ci = 0
        self._gis: dict[int, GpuInstance] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def gis(self) -> list[GpuInstance]:
        """Current GPU instances ordered by start slice."""
        return sorted(self._gis.values(), key=lambda g: g.start)

    @property
    def busy(self) -> bool:
        return any(gi.busy for gi in self._gis.values())

    def enable(self) -> None:
        """Turn MIG mode on. Only legal while the device is idle."""
        if self.busy:
            raise MigError("cannot enable MIG while jobs are resident")
        self.enabled = True

    def disable(self) -> None:
        """Turn MIG mode off, destroying all instances. Device must be idle."""
        if self.busy:
            raise MigError("cannot disable MIG while jobs are resident")
        self._gis.clear()
        self.enabled = False

    def reset(self) -> None:
        """Destroy all GIs/CIs (device must be idle); MIG stays enabled."""
        if self.busy:
            raise MigError("cannot reconfigure MIG while jobs are resident")
        self._gis.clear()

    # ------------------------------------------------------------------
    # GPU instances
    # ------------------------------------------------------------------
    def profile(self, name: str) -> GiProfile:
        try:
            placement = self.spec.gi_profiles[name]
        except KeyError:
            raise MigError(
                f"unknown GI profile {name!r}; supported: "
                f"{sorted(self.spec.gi_profiles)}"
            ) from None
        return GiProfile.from_placement(name, placement)

    def profile_for_slices(self, compute_slices: int) -> GiProfile:
        """Find the GI profile with exactly ``compute_slices`` slices."""
        for name, placement in self.spec.gi_profiles.items():
            if placement.compute_slices == compute_slices:
                return GiProfile.from_placement(name, placement)
        raise MigError(f"no GI profile with {compute_slices} compute slices")

    def _occupied(self) -> set[int]:
        occ: set[int] = set()
        for gi in self._gis.values():
            occ.update(range(gi.start, gi.end))
        return occ

    def _memory_slices_used(self) -> int:
        return sum(gi.memory_slices for gi in self._gis.values())

    def create_gi(self, profile_name: str, start: int | None = None) -> GpuInstance:
        """Create a GPU instance; picks the first legal placement if
        ``start`` is omitted."""
        if not self.enabled:
            raise MigError("MIG is not enabled")
        if self.busy:
            raise MigError("cannot create GIs while jobs are resident")
        prof = self.profile(profile_name)
        if self._memory_slices_used() + prof.memory_slices > self.spec.mig_memory_slices:
            raise MigError(
                f"profile {profile_name} needs {prof.memory_slices} memory "
                f"slices but only "
                f"{self.spec.mig_memory_slices - self._memory_slices_used()} remain"
            )
        occupied = self._occupied()
        candidates = prof.starts if start is None else (start,)
        for s in candidates:
            if s not in prof.starts:
                raise MigError(
                    f"profile {profile_name} cannot start at slice {s}; "
                    f"legal starts: {prof.starts}"
                )
            span = set(range(s, s + prof.compute_slices))
            if span & occupied:
                continue
            gi = GpuInstance(gi_id=self._next_gi, profile=prof, start=s)
            self._next_gi += 1
            self._gis[gi.gi_id] = gi
            return gi
        raise MigError(
            f"no free placement for profile {profile_name} "
            f"(occupied slices: {sorted(occupied)})"
        )

    def destroy_gi(self, gi: GpuInstance) -> None:
        if gi.busy:
            raise MigError(f"GI {gi.gi_id} has resident jobs")
        self._gis.pop(gi.gi_id, None)

    # ------------------------------------------------------------------
    # compute instances
    # ------------------------------------------------------------------
    def create_ci(self, gi: GpuInstance, compute_slices: int) -> ComputeInstance:
        """Create a compute instance of ``compute_slices`` inside ``gi``."""
        if gi.gi_id not in self._gis:
            raise MigError(f"GI {gi.gi_id} does not exist on this device")
        if compute_slices not in _CI_SIZES:
            raise MigError(
                f"unsupported CI size {compute_slices}; allowed: {_CI_SIZES}"
            )
        if compute_slices > gi.unallocated_slices():
            raise MigError(
                f"GI {gi.gi_id} has only {gi.unallocated_slices()} free "
                f"slices, cannot allocate a {compute_slices}-slice CI"
            )
        ci = ComputeInstance(
            ci_id=self._next_ci, gi_id=gi.gi_id, compute_slices=compute_slices
        )
        self._next_ci += 1
        gi.cis.append(ci)
        return ci

    def destroy_ci(self, gi: GpuInstance, ci: ComputeInstance) -> None:
        if ci.busy:
            raise MigError(f"CI {ci.ci_id} has resident jobs")
        gi.cis.remove(ci)

    # ------------------------------------------------------------------
    # introspection used by the scheduler
    # ------------------------------------------------------------------
    def configuration(self) -> tuple[tuple[int, int], ...]:
        """The current layout as ``((start, compute_slices), ...)``."""
        return tuple((gi.start, gi.compute_slices) for gi in self.gis)

    def apply_layout(self, slice_counts: tuple[int, ...]) -> list[GpuInstance]:
        """Reset and create one GI per entry of ``slice_counts``.

        Convenience used by the schedulers: ``apply_layout((4, 3))``
        produces the paper's 4GPC+3GPC split.
        """
        self.reset()
        gis = []
        for n in slice_counts:
            prof = self.profile_for_slices(n)
            gis.append(self.create_gi(prof.name))
        return gis


def enumerate_gi_combinations(
    spec: GpuSpec, maximal_only: bool = True
) -> list[tuple[tuple[int, int], ...]]:
    """Enumerate legal GI configurations under the placement rules.

    A configuration is a set of non-overlapping GI placements that also
    respects the memory-slice budget; when ``maximal_only`` no further
    GI can be added. Placements are position-sensitive (a 2g GI at slice
    0 differs from one at slice 2), matching how the driver reports
    configurations. Under the A100 rules — including the memory budget,
    which is what blocks ``3g + 3g + 1g`` (4 + 4 + 1 = 9 > 8 memory
    slices) and leaves ``3g + 3g`` maximal with an unusable compute
    slice — this yields exactly the **19 variants** quoted in the paper.

    Returns a sorted list of configurations, each a tuple of
    ``(start, compute_slices)`` pairs sorted by start.
    """
    profiles = [
        GiProfile.from_placement(name, pl) for name, pl in spec.gi_profiles.items()
    ]
    placements = [
        (start, prof.compute_slices, prof.memory_slices)
        for prof in profiles
        for start in prof.starts
    ]
    n = spec.mig_compute_slices
    mem_budget = spec.mig_memory_slices
    mem_by_width = {p.compute_slices: p.memory_slices for p in profiles}

    results: set[tuple[tuple[int, int], ...]] = set()

    def fits(config: list[tuple[int, int]], cand: tuple[int, int, int]) -> bool:
        cs, cw, cm = cand
        cand_span = set(range(cs, cs + cw))
        mem_used = cm
        for s, w in config:
            if cand_span & set(range(s, s + w)):
                return False
            mem_used += mem_by_width[w]
        return mem_used <= mem_budget

    def recurse(config: list[tuple[int, int]]) -> None:
        extended = False
        for cand in placements:
            if fits(config, cand):
                extended = True
                nxt = sorted(config + [cand[:2]])
                key = tuple(nxt)
                if key not in _seen:
                    _seen.add(key)
                    recurse(nxt)
        if config and (not maximal_only or not extended):
            results.add(tuple(sorted(config)))

    _seen: set[tuple[tuple[int, int], ...]] = set()
    recurse([])
    # Sanity: every configuration must fit in the slice budget.
    for cfg in results:
        used = sum(w for _, w in cfg)
        if used > n:
            raise MigError(f"enumeration bug: configuration {cfg} overflows")
    return sorted(results)
