"""GPU architecture specification for the simulated device.

The model follows the NVIDIA Ampere layout the paper describes (Fig. 1):
a GPU is a set of GPCs (Graphics Processing Clusters), each GPC a set of
SMs; LLC slices and HBM stacks are shared by default but can be carved
into per-GI private slices by MIG.

Only quantities the scheduler and performance model observe are kept:
counts, peak rates, and the MIG slice geometry. Cycle-level details
(warp schedulers, register files) appear solely as occupancy terms in the
profiling counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.units import gb_per_s, gib, mib, tflops

__all__ = ["SlicePlacement", "GpuSpec", "A100_40GB", "A30_24GB", "H100_80GB"]


@dataclass(frozen=True)
class SlicePlacement:
    """Allowed placement rule for a MIG GPU-instance profile.

    ``compute_slices``
        number of compute slices (== GPC count) the profile occupies.
    ``memory_slices``
        number of memory slices bound to the profile.
    ``starts``
        tuple of legal start offsets (in compute-slice coordinates).

    On the A100 the driver only places instances at fixed offsets; this
    is what limits the total number of configurations to 19.
    """

    compute_slices: int
    memory_slices: int
    starts: tuple[int, ...]


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a (simulated) MIG-capable GPU.

    The default construction corresponds to no particular product;
    use the module-level :data:`A100_40GB` instance for the paper's
    evaluation platform.
    """

    name: str
    n_gpcs: int
    sms_per_gpc: int
    # MIG geometry: number of compute slices available once MIG is on.
    # On the A100, enabling MIG costs one GPC (8 -> 7 usable).
    mig_compute_slices: int
    mig_memory_slices: int
    # Peak rates for the whole (non-MIG) device.
    peak_fp64_flops: float
    peak_fp32_flops: float
    mem_bandwidth: float  # bytes/s
    mem_capacity: float  # bytes
    llc_capacity: float  # bytes
    sm_clock_hz: float
    max_warps_per_sm: int
    max_mps_clients: int
    # MIG GI profiles supported by the driver, keyed by marketing name.
    gi_profiles: dict[str, SlicePlacement] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_gpcs <= 0 or self.sms_per_gpc <= 0:
            raise ConfigurationError("GPU must have positive GPC/SM counts")
        if not 0 < self.mig_compute_slices <= self.n_gpcs:
            raise ConfigurationError(
                "MIG compute slices must be in (0, n_gpcs]; "
                f"got {self.mig_compute_slices} for {self.n_gpcs} GPCs"
            )
        for pname, prof in self.gi_profiles.items():
            if prof.compute_slices > self.mig_compute_slices:
                raise ConfigurationError(
                    f"profile {pname} wider than the MIG slice budget"
                )
            for s in prof.starts:
                if s < 0 or s + prof.compute_slices > self.mig_compute_slices:
                    raise ConfigurationError(
                        f"profile {pname} start {s} overflows the slice space"
                    )

    @property
    def total_sms(self) -> int:
        """SM count of the full, non-MIG device."""
        return self.n_gpcs * self.sms_per_gpc

    def compute_fraction_of_slices(self, slices: int) -> float:
        """Fraction of full-device compute owned by ``slices`` MIG slices.

        One compute slice corresponds to one GPC, and the full device has
        ``n_gpcs`` GPCs, so a 4-slice GI on an 8-GPC A100 owns 0.5 of the
        device — matching the paper's ``{0.5}`` notation.
        """
        if not 0 <= slices <= self.mig_compute_slices:
            raise ConfigurationError(f"invalid slice count {slices}")
        return slices / self.n_gpcs

    def memory_fraction_of_slices(self, slices: int) -> float:
        """Fraction of full-device bandwidth owned by ``slices`` memory slices."""
        if not 0 <= slices <= self.mig_memory_slices:
            raise ConfigurationError(f"invalid memory slice count {slices}")
        return slices / self.mig_memory_slices

    def memory_slices_for_gpcs(self, gpcs: int) -> int:
        """Memory slices bound to a GI of ``gpcs`` GPCs.

        Resolved through the profile table: on the A100 the mapping is
        not purely proportional — ``3g.20gb`` owns 4 memory slices
        (20 GB), the same as ``4g.20gb``, which is why the paper's
        4GPC+3GPC private split reads ``[{0.375},0.5m]+[{0.5},0.5m]``.
        """
        for placement in self.gi_profiles.values():
            if placement.compute_slices == gpcs:
                return placement.memory_slices
        if gpcs >= self.mig_compute_slices:
            return self.mig_memory_slices
        return gpcs


def _a100_profiles() -> dict[str, SlicePlacement]:
    """The five A100 GI profiles with their driver placement rules.

    The start offsets replicate the A100 MIG placement table: 1g anywhere
    in 0..6, 2g at even offsets {0, 2, 4}, 3g at {0, 4}, 4g and 7g only
    at 0. Under these rules the number of *maximal* (no further GI
    placeable) configurations is exactly 19, which is the variant count
    the paper cites in Section III-A.
    """
    return {
        "1g.5gb": SlicePlacement(1, 1, tuple(range(7))),
        "2g.10gb": SlicePlacement(2, 2, (0, 2, 4)),
        "3g.20gb": SlicePlacement(3, 4, (0, 4)),
        "4g.20gb": SlicePlacement(4, 4, (0,)),
        "7g.40gb": SlicePlacement(7, 8, (0,)),
    }


#: The paper's evaluation platform: NVIDIA A100 40GB PCIe (Table II).
A100_40GB = GpuSpec(
    name="NVIDIA A100 40GB PCIe",
    n_gpcs=8,
    sms_per_gpc=14,  # 108 SMs enabled on the 40GB part; 14 average per GPC
    mig_compute_slices=7,
    mig_memory_slices=8,
    peak_fp64_flops=tflops(9.7),
    peak_fp32_flops=tflops(19.5),
    mem_bandwidth=gb_per_s(1555),
    mem_capacity=gib(40),
    llc_capacity=mib(40),
    sm_clock_hz=1.41e9,
    max_warps_per_sm=64,
    max_mps_clients=48,
    gi_profiles=_a100_profiles(),
)


def _h100_profiles() -> dict[str, SlicePlacement]:
    """H100 GI profiles: same 7-slice topology as the A100, with the
    memory-slice table scaled to the 80 GB part (1g.10gb etc.)."""
    return {
        "1g.10gb": SlicePlacement(1, 1, tuple(range(7))),
        "2g.20gb": SlicePlacement(2, 2, (0, 2, 4)),
        "3g.40gb": SlicePlacement(3, 4, (0, 4)),
        "4g.40gb": SlicePlacement(4, 4, (0,)),
        "7g.80gb": SlicePlacement(7, 8, (0,)),
    }


#: A Hopper-generation part: same MIG topology, higher peak rates. Used
#: to demonstrate the pipeline is architecture-parametric (the paper's
#: model coefficients are hardware-specific; retraining per device is
#: expected and cheap on the simulator).
H100_80GB = GpuSpec(
    name="NVIDIA H100 80GB PCIe",
    n_gpcs=8,
    sms_per_gpc=16,  # 114 SMs enabled on the PCIe part; 16 per full GPC
    mig_compute_slices=7,
    mig_memory_slices=8,
    peak_fp64_flops=tflops(26.0),
    peak_fp32_flops=tflops(51.0),
    mem_bandwidth=gb_per_s(2000),
    mem_capacity=gib(80),
    llc_capacity=mib(50),
    sm_clock_hz=1.755e9,
    max_warps_per_sm=64,
    max_mps_clients=48,
    gi_profiles=_h100_profiles(),
)


def _a30_profiles() -> dict[str, SlicePlacement]:
    """A30 GI profiles (4 compute slices)."""
    return {
        "1g.6gb": SlicePlacement(1, 1, tuple(range(4))),
        "2g.12gb": SlicePlacement(2, 2, (0, 2)),
        "4g.24gb": SlicePlacement(4, 4, (0,)),
    }


#: A smaller MIG-capable part, used in tests to show the model generalizes.
A30_24GB = GpuSpec(
    name="NVIDIA A30 24GB",
    n_gpcs=4,
    sms_per_gpc=14,
    mig_compute_slices=4,
    mig_memory_slices=4,
    peak_fp64_flops=tflops(5.2),
    peak_fp32_flops=tflops(10.3),
    mem_bandwidth=gb_per_s(933),
    mem_capacity=gib(24),
    llc_capacity=mib(24),
    sm_clock_hz=1.44e9,
    max_warps_per_sm=64,
    max_mps_clients=48,
    gi_profiles=_a30_profiles(),
)
