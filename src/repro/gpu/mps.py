"""MPS (Multi-Process Service): fine-grained logical partitioning.

MPS lets multiple client processes share the compute resources of a GPU
(or of one MIG compute instance) concurrently. Each client is assigned
an *active thread percentage* — the share of SMs its kernels may occupy.
Unlike MIG, MPS provides no memory-side isolation: all clients in the
same scope contend for the same LLC/HBM bandwidth.

The model captures what the paper's scheduler configures:

* per-client active-thread percentages (``CUDA_MPS_ACTIVE_THREAD_PERCENTAGE``),
* the *default mode*, where every client may use 100% of the SMs and the
  hardware time-multiplexes them (used by the ``MIG+MPS Default``
  baseline),
* the client-count cap of the control daemon.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MpsError
from repro.units import clamp

__all__ = ["MpsClient", "MpsControl", "DEFAULT_MODE"]

#: Sentinel percentage for MPS default mode (no partitioning; clients
#: time-share the full SM array).
DEFAULT_MODE = 100.0


@dataclass(frozen=True)
class MpsClient:
    """One MPS client: a job bound to a share of the compute resources."""

    job_id: str
    active_thread_pct: float

    def __post_init__(self) -> None:
        if not 0.0 < self.active_thread_pct <= 100.0:
            raise MpsError(
                "active thread percentage must be in (0, 100]; "
                f"got {self.active_thread_pct} for job {self.job_id!r}"
            )

    @property
    def compute_share(self) -> float:
        """The client's share as a fraction of its scope's SMs."""
        return self.active_thread_pct / 100.0


@dataclass
class MpsControl:
    """An MPS control daemon scoped to one CI (or the bare device).

    ``scope_compute_fraction`` is the fraction of *full-device* compute
    owned by the scope this daemon controls: 1.0 on a bare GPU, or
    ``slices / n_gpcs`` inside a MIG CI. Client shares multiply into it,
    so a 50% client inside a 4-slice CI of an 8-GPC device owns 0.25 of
    the device — exactly the ``(0.5){0.5}`` composition in the paper's
    partition notation.
    """

    scope_compute_fraction: float = 1.0
    max_clients: int = 48
    default_mode: bool = False
    _clients: dict[str, MpsClient] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.scope_compute_fraction <= 1.0:
            raise MpsError(
                f"scope fraction must be in (0, 1]; got {self.scope_compute_fraction}"
            )
        if self.max_clients <= 0:
            raise MpsError("max_clients must be positive")

    @property
    def clients(self) -> list[MpsClient]:
        return list(self._clients.values())

    @property
    def total_allocated_pct(self) -> float:
        return sum(c.active_thread_pct for c in self._clients.values())

    def connect(self, job_id: str, active_thread_pct: float | None = None) -> MpsClient:
        """Register a client.

        In default mode the percentage argument is ignored and the
        client gets the full scope (hardware time-multiplexing decides
        actual occupancy). In partitioned mode the percentage is
        mandatory, and the daemon refuses oversubscription beyond 100%
        of the scope — the real daemon allows it, but the paper's
        configurations never oversubscribe and the scheduler treats it
        as a configuration error.
        """
        if job_id in self._clients:
            raise MpsError(f"job {job_id!r} is already connected")
        if len(self._clients) >= self.max_clients:
            raise MpsError(
                f"MPS client limit reached ({self.max_clients}); "
                f"cannot connect {job_id!r}"
            )
        if self.default_mode:
            pct = DEFAULT_MODE
        else:
            if active_thread_pct is None:
                raise MpsError(
                    "partitioned MPS requires an active thread percentage"
                )
            pct = active_thread_pct
            if self.total_allocated_pct + pct > 100.0 + 1e-9:
                raise MpsError(
                    f"oversubscription: {self.total_allocated_pct:.1f}% already "
                    f"allocated, cannot add {pct:.1f}% for {job_id!r}"
                )
        client = MpsClient(job_id=job_id, active_thread_pct=pct)
        self._clients[job_id] = client
        return client

    def disconnect(self, job_id: str) -> None:
        if job_id not in self._clients:
            raise MpsError(f"job {job_id!r} is not connected")
        del self._clients[job_id]

    def quit(self) -> None:
        """Tear the daemon down, disconnecting every client."""
        self._clients.clear()

    def device_compute_fraction(self, job_id: str) -> float:
        """Fraction of *full-device* compute granted to ``job_id``.

        In default mode clients time-share the scope: with ``k`` active
        clients, each effectively sees ``1/k`` of the scope on average
        (the hardware scheduler interleaves them). This is what makes
        the ``MIG+MPS Default`` baseline weaker than tuned percentages.
        """
        try:
            client = self._clients[job_id]
        except KeyError:
            raise MpsError(f"job {job_id!r} is not connected") from None
        if self.default_mode:
            share = 1.0 / max(1, len(self._clients))
        else:
            share = client.compute_share
        return clamp(share * self.scope_compute_fraction, 0.0, 1.0)
