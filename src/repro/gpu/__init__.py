"""Simulated modern-GPU substrate: architecture, MIG, MPS, partitions.

This subpackage models everything the paper's scheduler touches on a real
NVIDIA A100:

* :mod:`repro.gpu.arch` — the device topology (GPCs, SMs, LLC slices, HBM
  stacks) and peak rates.
* :mod:`repro.gpu.mig` — Multi-Instance GPU: coarse, physical partitioning
  into GPU instances (GIs) and compute instances (CIs) at GPC granularity,
  including the placement-rule table that yields exactly the 19 supported
  A100 configurations the paper cites.
* :mod:`repro.gpu.mps` — Multi-Process Service: fine, logical partitioning
  via active-thread percentages inside a CI (or the bare GPU).
* :mod:`repro.gpu.partition` — the hierarchical partition tree combining
  both levels, plus the paper's bracket notation
  (``[(0.1)+(0.9),1m]``, ``[{0.375},0.5m]+[{0.5},0.5m]``).
* :mod:`repro.gpu.variants` — enumeration of the partition variants per
  concurrency level (Table VII) and the 29-entry action catalog.
* :mod:`repro.gpu.device` — a simulated device that accepts partition
  configurations and runs jobs under the performance model.
"""

from repro.gpu.arch import GpuSpec, A100_40GB, A30_24GB
from repro.gpu.mig import (
    GiProfile,
    GpuInstance,
    ComputeInstance,
    MigManager,
    enumerate_gi_combinations,
)
from repro.gpu.mps import MpsControl, MpsClient
from repro.gpu.partition import (
    MpsShare,
    CiNode,
    GiNode,
    PartitionTree,
    format_partition,
    parse_partition,
)
from repro.gpu.variants import (
    PartitionVariant,
    enumerate_mps_only,
    enumerate_hierarchical,
    action_catalog,
)
from repro.gpu.device import SimulatedGpu, LaunchResult

__all__ = [
    "GpuSpec",
    "A100_40GB",
    "A30_24GB",
    "GiProfile",
    "GpuInstance",
    "ComputeInstance",
    "MigManager",
    "enumerate_gi_combinations",
    "MpsControl",
    "MpsClient",
    "MpsShare",
    "CiNode",
    "GiNode",
    "PartitionTree",
    "format_partition",
    "parse_partition",
    "PartitionVariant",
    "enumerate_mps_only",
    "enumerate_hierarchical",
    "action_catalog",
    "SimulatedGpu",
    "LaunchResult",
]
