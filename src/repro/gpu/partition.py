"""Hierarchical partition trees and the paper's bracket notation.

A partition describes how the device is carved for one co-scheduling
group. It has three levels, mirroring Fig. 1 / Fig. 2 of the paper:

* **GI level** (MIG GPU instances): physical isolation. Each GI owns a
  fraction of the device memory bandwidth (its HBM/LLC slices).
* **CI level** (MIG compute instances): exclusive compute slices inside
  a GI; memory is shared across all CIs of the GI.
* **MPS level**: logical shares (active-thread percentages) inside one
  CI; one share = one job slot.

Notation (Section V-A5 of the paper)::

    [(0.1)+(0.9),1m]                      MPS only, two jobs at 10%/90%
    [{0.375}+{0.5},1m]                    MIG only, shared memory
    [{0.375},0.5m]+[{0.5},0.5m]           MIG only, private memory
    [(0.1)+(0.9),{0.5},0.5m]+[{0.375},0.5m]
                                          hierarchical: MPS inside a CI

``{β}`` is a CI owning ``β``x100% of the *device* compute; ``(p)`` is an
MPS share owning ``p``x100% of its *enclosing scope*; ``αm`` is the GI's
fraction of device memory bandwidth. MPS shares bind to the CI that
follows them; trailing shares without a CI occupy the GI's full scope.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import PartitionError
from repro.gpu.arch import GpuSpec

__all__ = [
    "MpsShare",
    "CiNode",
    "GiNode",
    "PartitionTree",
    "Slot",
    "format_partition",
    "parse_partition",
]

#: Tolerance for fractional comparisons (partition fractions are small
#: rationals; accumulated float error stays far below this).
_EPS = 1e-9


@dataclass(frozen=True)
class MpsShare:
    """One job slot: a share of its enclosing CI's compute resources."""

    fraction: float  # of the enclosing CI, in (0, 1]

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0 + _EPS:
            raise PartitionError(f"MPS share must be in (0, 1]; got {self.fraction}")


@dataclass(frozen=True)
class CiNode:
    """A compute instance: ``compute_fraction`` of the *device*, holding
    one or more MPS shares (one per co-located job)."""

    compute_fraction: float
    shares: tuple[MpsShare, ...] = (MpsShare(1.0),)

    def __post_init__(self) -> None:
        if not 0.0 < self.compute_fraction <= 1.0 + _EPS:
            raise PartitionError(
                f"CI compute fraction must be in (0, 1]; got {self.compute_fraction}"
            )
        if not self.shares:
            raise PartitionError("a CI must hold at least one MPS share")
        total = sum(s.fraction for s in self.shares)
        if total > 1.0 + 1e-6:
            raise PartitionError(
                f"MPS shares oversubscribe the CI: sum={total:.3f} > 1"
            )

    @property
    def n_slots(self) -> int:
        return len(self.shares)


@dataclass(frozen=True)
class GiNode:
    """A GPU instance: ``mem_fraction`` of device bandwidth + CIs."""

    mem_fraction: float
    cis: tuple[CiNode, ...]

    def __post_init__(self) -> None:
        if not 0.0 < self.mem_fraction <= 1.0 + _EPS:
            raise PartitionError(
                f"GI memory fraction must be in (0, 1]; got {self.mem_fraction}"
            )
        if not self.cis:
            raise PartitionError("a GI must hold at least one CI")

    @property
    def compute_fraction(self) -> float:
        return sum(ci.compute_fraction for ci in self.cis)

    @property
    def n_slots(self) -> int:
        return sum(ci.n_slots for ci in self.cis)


@dataclass(frozen=True)
class Slot:
    """A resolved job slot with device-level resource fractions.

    ``compute_fraction`` is the slot's share of full-device compute
    (MPS share x CI fraction). ``mem_fraction`` is its GI's bandwidth
    fraction — shared with every other slot in ``mem_domain``.
    """

    gi_index: int
    ci_index: int
    share_index: int
    compute_fraction: float
    mem_fraction: float


@dataclass(frozen=True)
class PartitionTree:
    """A complete hierarchical partition for one co-scheduling group."""

    gis: tuple[GiNode, ...]
    mig_enabled: bool = True

    def __post_init__(self) -> None:
        if not self.gis:
            raise PartitionError("a partition needs at least one GI")
        if not self.mig_enabled and len(self.gis) != 1:
            raise PartitionError("without MIG the device is a single GI")

    # -- structure ------------------------------------------------------
    @property
    def n_slots(self) -> int:
        return sum(gi.n_slots for gi in self.gis)

    @property
    def total_compute_fraction(self) -> float:
        return sum(gi.compute_fraction for gi in self.gis)

    @property
    def total_mem_fraction(self) -> float:
        return sum(gi.mem_fraction for gi in self.gis)

    def slots(self) -> list[Slot]:
        """All job slots, in GI -> CI -> share order (the binding order
        used throughout the scheduler)."""
        out: list[Slot] = []
        for gi_i, gi in enumerate(self.gis):
            for ci_i, ci in enumerate(gi.cis):
                for sh_i, share in enumerate(ci.shares):
                    out.append(
                        Slot(
                            gi_index=gi_i,
                            ci_index=ci_i,
                            share_index=sh_i,
                            compute_fraction=share.fraction * ci.compute_fraction,
                            mem_fraction=gi.mem_fraction,
                        )
                    )
        return out

    def mem_domains(self) -> list[list[int]]:
        """Slot indices grouped by memory domain (one domain per GI)."""
        domains: list[list[int]] = []
        idx = 0
        for gi in self.gis:
            domains.append(list(range(idx, idx + gi.n_slots)))
            idx += gi.n_slots
        return domains

    # -- validation ------------------------------------------------------
    def validate(self, spec: GpuSpec) -> None:
        """Check feasibility against a device spec.

        Raises :class:`PartitionError` for: non-GPC-aligned MIG
        fractions, slice-budget overflow, memory-slice overflow, or a
        memory fraction inconsistent with the GI width.
        """
        if not self.mig_enabled:
            gi = self.gis[0]
            if len(gi.cis) != 1:
                raise PartitionError("CIs require MIG; found several without it")
            if abs(gi.mem_fraction - 1.0) > _EPS:
                raise PartitionError("without MIG the GI owns all memory")
            if gi.cis[0].compute_fraction < 1.0 - _EPS:
                raise PartitionError("without MIG the single CI spans the device")
            return

        total_slices = 0
        total_mem_slices = 0
        for gi in self.gis:
            gi_slices = 0
            for ci in gi.cis:
                slices = ci.compute_fraction * spec.n_gpcs
                if abs(slices - round(slices)) > 1e-6 or round(slices) < 1:
                    raise PartitionError(
                        f"CI fraction {ci.compute_fraction} is not a whole "
                        f"number of GPCs on {spec.name}"
                    )
                gi_slices += round(slices)
            expected_mem = spec.memory_slices_for_gpcs(gi_slices)
            mem_slices = gi.mem_fraction * spec.mig_memory_slices
            if abs(mem_slices - round(mem_slices)) > 1e-6:
                raise PartitionError(
                    f"GI memory fraction {gi.mem_fraction} is not a whole "
                    f"number of memory slices"
                )
            if round(mem_slices) != expected_mem:
                raise PartitionError(
                    f"GI with {gi_slices} GPCs must own {expected_mem} memory "
                    f"slices, not {round(mem_slices)}"
                )
            total_slices += gi_slices
            total_mem_slices += round(mem_slices)
        if total_slices > spec.mig_compute_slices:
            raise PartitionError(
                f"partition uses {total_slices} compute slices; the device "
                f"offers {spec.mig_compute_slices} under MIG"
            )
        if total_mem_slices > spec.mig_memory_slices:
            raise PartitionError(
                f"partition uses {total_mem_slices} memory slices; the device "
                f"offers {spec.mig_memory_slices}"
            )


# ---------------------------------------------------------------------------
# notation
# ---------------------------------------------------------------------------

def _fmt(x: float) -> str:
    """Format a fraction the way the paper prints it (trim zeros)."""
    s = f"{x:.4f}".rstrip("0").rstrip(".")
    return s if s else "0"


def format_partition(tree: PartitionTree) -> str:
    """Render a partition in the paper's bracket notation."""
    parts = []
    for gi in tree.gis:
        fields: list[str] = []
        for ci in gi.cis:
            plain = len(ci.shares) == 1 and abs(ci.shares[0].fraction - 1.0) < _EPS
            if tree.mig_enabled:
                if plain:
                    fields.append("{%s}" % _fmt(ci.compute_fraction))
                else:
                    procs = "+".join(f"({_fmt(s.fraction)})" for s in ci.shares)
                    fields.append(procs + ",{%s}" % _fmt(ci.compute_fraction))
            else:
                procs = "+".join(f"({_fmt(s.fraction)})" for s in ci.shares)
                fields.append(procs)
        fields.append(f"{_fmt(gi.mem_fraction)}m")
        parts.append("[" + ",".join(fields) + "]")
    return "+".join(parts)


_TOKEN_RE = re.compile(
    r"\{(?P<ci>[0-9.]+)\}|\((?P<proc>[0-9.]+)\)|(?P<mem>[0-9.]+)m"
)


def parse_partition(text: str, mig_enabled: bool | None = None) -> PartitionTree:
    """Parse the paper's bracket notation into a :class:`PartitionTree`.

    The parser is deliberately lenient about separators (the paper mixes
    ``+`` and ``,``): inside a GI, only the ordered sequence of tokens
    matters. MPS shares bind to the next ``{..}`` CI; trailing shares
    form a full-scope CI. ``mig_enabled`` is inferred when omitted: a
    partition with several GIs or any ``{..}`` CI implies MIG.
    """
    text = text.strip()
    if not text:
        raise PartitionError("empty partition string")
    # split on '+' between ']' and '[' only
    gi_strings = re.split(r"\]\s*\+\s*\[", text)
    gi_strings[0] = gi_strings[0].lstrip("[")
    gi_strings[-1] = gi_strings[-1].rstrip("]")

    gis: list[GiNode] = []
    saw_ci = False
    for gi_text in gi_strings:
        pending: list[MpsShare] = []
        cis: list[CiNode] = []
        mem: float | None = None
        matched_len = 0
        for m in _TOKEN_RE.finditer(gi_text):
            matched_len += len(m.group(0))
            if m.group("proc") is not None:
                pending.append(MpsShare(float(m.group("proc"))))
            elif m.group("ci") is not None:
                saw_ci = True
                shares = tuple(pending) if pending else (MpsShare(1.0),)
                cis.append(CiNode(float(m.group("ci")), shares))
                pending = []
            else:
                if mem is not None:
                    raise PartitionError(
                        f"multiple memory fields in GI {gi_text!r}"
                    )
                mem = float(m.group("mem"))
        leftover = re.sub(r"[\s,+]", "", _TOKEN_RE.sub("", gi_text))
        if leftover:
            raise PartitionError(
                f"unrecognized text {leftover!r} in partition {text!r}"
            )
        if pending:
            # trailing MPS shares with no CI: they occupy the whole scope
            cis.append(CiNode(1.0 if mem is None else mem_scope(mem, cis), tuple(pending)))
        if mem is None:
            raise PartitionError(f"GI {gi_text!r} lacks a memory field (e.g. '0.5m')")
        if not cis:
            raise PartitionError(f"GI {gi_text!r} has no compute allocation")
        gis.append(GiNode(mem_fraction=mem, cis=tuple(cis)))

    if mig_enabled is None:
        mig_enabled = saw_ci or len(gis) > 1
    return PartitionTree(gis=tuple(gis), mig_enabled=mig_enabled)


def mem_scope(mem: float, existing: list[CiNode]) -> float:
    """Compute fraction for a trailing bare-scope CI.

    Without MIG the scope is the full device (1.0). We approximate the
    scope of a bare MPS group inside a GI as the GI's remaining compute;
    when no CI precedes it, that is the full device for the non-MIG case
    and the GI width (== mem fraction for non-full GIs) otherwise.
    """
    used = sum(ci.compute_fraction for ci in existing)
    if existing:
        remaining = mem - used
        if remaining <= _EPS:
            raise PartitionError("bare MPS group has no compute left in the GI")
        return remaining
    return 1.0
