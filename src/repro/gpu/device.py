"""The simulated GPU device: partition configuration + job execution.

:class:`SimulatedGpu` stands in for the paper's A100. It exposes the
operations the resource manager performs on real hardware:

* drive the MIG state machine (:class:`repro.gpu.mig.MigManager`) and
  MPS daemons (:class:`repro.gpu.mps.MpsControl`) to realize a
  :class:`~repro.gpu.partition.PartitionTree`,
* launch a co-scheduling group and obtain measured execution times
  (delegated to :mod:`repro.perfmodel`),
* run a job solo — on the full device or on a restricted 1-GPC slice,
  which is what the profiling/classification flow needs.

The device keeps a wall clock so schedulers can account makespans over
many groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    MigError,
    PartitionError,
    ReconfigFaultError,
    SchedulingError,
    TransientDeviceError,
)
from repro.faults import FaultInjector, FaultKind
from repro.telemetry.facade import NULL_TELEMETRY, Telemetry
from repro.gpu.arch import A100_40GB, GpuSpec
from repro.gpu.mig import MigManager
from repro.gpu.mps import MpsControl
from repro.gpu.partition import (
    CiNode,
    GiNode,
    PartitionTree,
    format_partition,
)
from repro.workloads.jobs import Job

if False:  # import-cycle guard: perfmodel imports gpu.partition
    from repro.perfmodel.corun import CoRunResult  # noqa: F401

__all__ = ["LaunchResult", "SimulatedGpu"]


@dataclass(frozen=True)
class LaunchResult:
    """Outcome of one launch (a solo run or one job inside a group)."""

    job_id: str
    benchmark_name: str
    start_time: float
    elapsed: float
    failed: bool = False  # the job crashed ``elapsed`` seconds in

    @property
    def end_time(self) -> float:
        return self.start_time + self.elapsed


@dataclass
class GroupRunRecord:
    """Bookkeeping for one co-scheduled group execution."""

    partition: PartitionTree
    corun: "CoRunResult"
    launches: list[LaunchResult] = field(default_factory=list)


class SimulatedGpu:
    """A MIG+MPS capable device with a wall clock.

    The configuration path is deliberately faithful to the driver
    workflow: ``configure`` resets MIG, creates GIs/CIs per the
    partition tree, and spins up one MPS daemon per CI. Violations of
    the hardware rules surface as :class:`MigError`/:class:`MpsError`
    exactly as they would from the driver, so scheduler bugs cannot
    silently produce impossible configurations.
    """

    def __init__(
        self,
        spec: GpuSpec = A100_40GB,
        faults: FaultInjector | None = None,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        self.spec = spec
        self.mig = MigManager(spec)
        self.clock = 0.0
        # Busy time accumulates only while groups execute; schedulers may
        # jump ``clock`` forward to model idle gaps without touching it.
        self.busy_time = 0.0
        self.faults = faults
        self.telemetry = telemetry
        self.track = "gpu"  # trace track name; GpuNode overrides with its own
        self.history: list[GroupRunRecord] = []
        self._mps_daemons: list[MpsControl] = []

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def configure(self, tree: PartitionTree) -> list[MpsControl]:
        """Realize a partition tree on the device.

        Returns the MPS daemons in slot order scope (one per CI). The
        previous configuration is torn down first; this is only legal
        when the device is idle, matching the MIG restriction.
        """
        tree.validate(self.spec)
        if (
            self.faults is not None
            and self.faults.enabled
            and tree.mig_enabled
            and self.faults.reconfig_fails(format_partition(tree))
        ):
            # Raised before any teardown: the previous configuration
            # stays intact, exactly as a failed nvidia-smi call would
            # leave the real device.
            if self.telemetry.enabled:
                self.telemetry.event(
                    "fault:reconfig",
                    self.track,
                    self.clock,
                    category="fault",
                    partition=format_partition(tree),
                )
            raise ReconfigFaultError(
                f"injected MIG reconfiguration failure realizing "
                f"{format_partition(tree)}"
            )
        for daemon in self._mps_daemons:
            daemon.quit()
        self._mps_daemons = []

        if not tree.mig_enabled:
            if self.mig.enabled:
                self.mig.disable()
            ci = tree.gis[0].cis[0]
            daemon = MpsControl(
                scope_compute_fraction=ci.compute_fraction,
                max_clients=self.spec.max_mps_clients,
            )
            self._mps_daemons.append(daemon)
            if self.telemetry.enabled:
                self.telemetry.event(
                    "configure",
                    self.track,
                    self.clock,
                    category="device",
                    partition=format_partition(tree),
                )
                self.telemetry.count(
                    "device_reconfigs_total", 1, node=self.track
                )
            return self._mps_daemons

        if not self.mig.enabled:
            self.mig.enable()
        else:
            self.mig.reset()
        # Wider GIs have fewer legal placements (a 4g must start at
        # slice 0), so create them first regardless of tree order.
        order = sorted(
            range(len(tree.gis)),
            key=lambda i: tree.gis[i].compute_fraction,
            reverse=True,
        )
        daemons_by_gi: dict[int, list[MpsControl]] = {}
        for gi_index in order:
            gi_node = tree.gis[gi_index]
            gi_slices = round(gi_node.compute_fraction * self.spec.n_gpcs)
            gi = self.mig.create_gi(self.mig.profile_for_slices(gi_slices).name)
            daemons_by_gi[gi_index] = []
            for ci_node in gi_node.cis:
                ci_slices = round(ci_node.compute_fraction * self.spec.n_gpcs)
                self.mig.create_ci(gi, ci_slices)
                daemons_by_gi[gi_index].append(
                    MpsControl(
                        scope_compute_fraction=ci_node.compute_fraction,
                        max_clients=self.spec.max_mps_clients,
                    )
                )
        for gi_index in range(len(tree.gis)):
            self._mps_daemons.extend(daemons_by_gi[gi_index])
        if self.telemetry.enabled:
            self.telemetry.event(
                "configure",
                self.track,
                self.clock,
                category="device",
                partition=format_partition(tree),
            )
            self.telemetry.count("device_reconfigs_total", 1, node=self.track)
        return self._mps_daemons

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_group(self, jobs: list[Job], tree: PartitionTree) -> GroupRunRecord:
        """Configure the device and co-run a job group to completion.

        Jobs bind to ``tree.slots()`` in order. The wall clock advances
        by the group's makespan.

        With a :class:`~repro.faults.FaultInjector` attached, a launch
        may raise :class:`TransientDeviceError` (retryable, no state
        change) or :class:`ReconfigFaultError` (from ``configure``), and
        individual launches may come back ``failed`` (crashed partway)
        or stretched by a straggler slowdown.
        """
        inject = self.faults is not None and self.faults.enabled
        if inject and self.faults.launch_hits_transient(
            "+".join(sorted(j.benchmark_name for j in jobs))
        ):
            if self.telemetry.enabled:
                self.telemetry.event(
                    "fault:transient",
                    self.track,
                    self.clock,
                    category="fault",
                    jobs=[j.benchmark_name for j in jobs],
                )
            raise TransientDeviceError(
                "injected transient device error; launch can be retried"
            )
        daemons = self.configure(tree)
        slots = tree.slots()
        if len(jobs) != len(slots):
            raise SchedulingError(
                f"{len(jobs)} jobs cannot fill {len(slots)} slots"
            )
        # Register each job with its CI's MPS daemon (exercises the MPS
        # oversubscription rules).
        daemon_of_ci: dict[tuple[int, int], MpsControl] = {}
        d = 0
        for gi_i, gi in enumerate(tree.gis):
            for ci_i, _ in enumerate(gi.cis):
                daemon_of_ci[(gi_i, ci_i)] = daemons[d]
                d += 1
        for job, slot in zip(jobs, slots):
            share = tree.gis[slot.gi_index].cis[slot.ci_index].shares[slot.share_index]
            daemon_of_ci[(slot.gi_index, slot.ci_index)].connect(
                job.job_id, share.fraction * 100.0
            )

        from repro.perfmodel.cache import cached_simulate_corun

        corun = cached_simulate_corun([j.model for j in jobs], tree)
        start = self.clock
        if inject:
            tel = self.telemetry
            elapsed: list[float] = []
            crashed: list[bool] = []
            for j, t in zip(jobs, corun.finish_times):
                kind = self.faults.job_fault(j.benchmark_name)
                if kind is FaultKind.JOB_FAILURE:
                    elapsed.append(t * self.faults.config.crash_fraction)
                    crashed.append(True)
                    if tel.enabled:
                        tel.event(
                            "fault:job_failure",
                            self.track,
                            start + elapsed[-1],
                            category="fault",
                            job=j.benchmark_name,
                        )
                elif kind is FaultKind.STRAGGLER:
                    elapsed.append(
                        t * self.faults.straggler_factor(j.benchmark_name)
                    )
                    crashed.append(False)
                    if tel.enabled:
                        tel.event(
                            "fault:straggler",
                            self.track,
                            start,
                            category="fault",
                            job=j.benchmark_name,
                            slowdown=elapsed[-1] / t if t > 0 else 1.0,
                        )
                else:
                    elapsed.append(t)
                    crashed.append(False)
            makespan = max(elapsed)
        else:
            elapsed = list(corun.finish_times)
            crashed = [False] * len(jobs)
            makespan = corun.makespan
        launches = [
            LaunchResult(
                job_id=j.job_id,
                benchmark_name=j.benchmark_name,
                start_time=start,
                elapsed=t,
                failed=f,
            )
            for j, t, f in zip(jobs, elapsed, crashed)
        ]
        self.clock = start + makespan
        self.busy_time += makespan
        for daemon in daemons:
            daemon.quit()
        record = GroupRunRecord(partition=tree, corun=corun, launches=launches)
        self.history.append(record)
        if self.telemetry.enabled:
            self.telemetry.span(
                "run_group",
                self.track,
                start,
                self.clock,
                category="device",
                partition=format_partition(tree),
                concurrency=len(jobs),
                jobs=[j.benchmark_name for j in jobs],
            )
            self.telemetry.count("device_groups_total", 1, node=self.track)
            self.telemetry.count(
                "device_busy_seconds_total", makespan, node=self.track
            )
        return record

    def run_solo(self, job: Job) -> LaunchResult:
        """Run one job with the entire device (time-sharing step)."""
        tree = PartitionTree(
            gis=(GiNode(1.0, (CiNode(1.0),)),), mig_enabled=False
        )
        record = self.run_group([job], tree)
        return record.launches[0]

    def run_solo_restricted(self, job: Job, gpcs: int) -> LaunchResult:
        """Run one job alone on a private ``gpcs``-GPC MIG slice.

        Used by the classification procedure (paper Section V-A2): the
        1-GPC private run versus the full 8-GPC run decides the
        UnScalable class.
        """
        if not 0 < gpcs <= self.spec.mig_compute_slices:
            raise PartitionError(
                f"restricted run requires 1..{self.spec.mig_compute_slices} "
                f"GPCs; got {gpcs}"
            )
        mem = self.spec.memory_slices_for_gpcs(gpcs) / self.spec.mig_memory_slices
        tree = PartitionTree(
            gis=(GiNode(mem, (CiNode(gpcs / self.spec.n_gpcs),)),),
            mig_enabled=True,
        )
        record = self.run_group([job], tree)
        return record.launches[0]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def reset_clock(self) -> None:
        self.clock = 0.0
        self.busy_time = 0.0

    @property
    def total_groups_run(self) -> int:
        return len(self.history)
