"""Partitioning-variant enumeration (paper Table VII) and action catalog.

Two distinct consumers:

* The **exhaustive baselines** (MPS Only, MIG Only) sweep every variant
  from :func:`enumerate_mps_only` / :func:`enumerate_mig_only` /
  :func:`enumerate_hierarchical`, matching the paper's "determined
  through an exhaustive search".
* The **RL agent** acts over a fixed, curated catalog of exactly **29
  group templates** (Table VI fixes the advantage-head width at
  ``A = 29``), produced by :func:`action_catalog`. The catalog spans
  concurrency 2–4 and all four partitioning styles of Fig. 2.

MPS splits are expressed in *deciles* (the paper sweeps active-thread
percentages in 10% steps: ``(0.1)+(0.9)`` … ``(0.5)+(0.5)``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import PartitionError
from repro.gpu.arch import A100_40GB, GpuSpec
from repro.gpu.partition import CiNode, GiNode, MpsShare, PartitionTree

__all__ = [
    "PartitionVariant",
    "decile_compositions",
    "enumerate_mps_only",
    "enumerate_mig_only",
    "enumerate_hierarchical",
    "action_catalog",
    "variant_counts",
]

#: Variant kinds, matching the options of the paper's Fig. 2.
KIND_MPS = "mps_only"
KIND_MIG_SHARED = "mig_shared"
KIND_MIG_PRIVATE = "mig_private"
KIND_HIERARCHICAL = "hierarchical"


@dataclass(frozen=True)
class PartitionVariant:
    """A concrete partition choice for one co-scheduling group."""

    tree: PartitionTree
    kind: str
    concurrency: int
    label: str

    def __post_init__(self) -> None:
        if self.tree.n_slots != self.concurrency:
            raise PartitionError(
                f"variant {self.label!r} declares concurrency "
                f"{self.concurrency} but provides {self.tree.n_slots} slots"
            )


@lru_cache(maxsize=None)
def decile_compositions(n_parts: int, total: int = 10) -> tuple[tuple[int, ...], ...]:
    """Unordered partitions of ``total`` deciles into ``n_parts`` parts >= 1.

    Returned non-decreasing, e.g. ``decile_compositions(2)`` is
    ``((1, 9), (2, 8), (3, 7), (4, 6), (5, 5))`` — the paper's
    ``[(0.1)+(0.9),1m] … [(0.5)+(0.5),1m]`` sweep.
    """
    out = []

    def rec(
        remaining: int, parts_left: int, minimum: int, acc: tuple[int, ...]
    ) -> None:
        if parts_left == 1:
            if remaining >= minimum:
                out.append(acc + (remaining,))
            return
        for first in range(minimum, remaining // parts_left + 1):
            rec(remaining - first, parts_left - 1, first, acc + (first,))

    rec(total, n_parts, 1, ())
    return tuple(out)


def _mps_tree(deciles: tuple[int, ...], scope_mem: float = 1.0) -> PartitionTree:
    shares = tuple(MpsShare(d / 10.0) for d in deciles)
    return PartitionTree(
        gis=(GiNode(mem_fraction=scope_mem, cis=(CiNode(1.0, shares),)),),
        mig_enabled=False,
    )


def enumerate_mps_only(concurrency: int) -> list[PartitionVariant]:
    """All MPS-only variants for a given concurrency (Table VII column 2).

    Full device (8/8 GPCs, all bandwidth), one MPS share per job, shares
    in deciles summing to 100%.
    """
    if concurrency < 1:
        raise PartitionError("concurrency must be >= 1")
    variants = []
    for deciles in decile_compositions(concurrency):
        tree = _mps_tree(deciles)
        label = "[" + "+".join(f"({d / 10:.1f})" for d in deciles) + ",1m]"
        variants.append(
            PartitionVariant(tree, KIND_MPS, concurrency, label)
        )
    return variants


def _gi_private(spec: GpuSpec, gpcs: int, shares: tuple[MpsShare, ...] = (MpsShare(1.0),)) -> GiNode:
    """A private GI of ``gpcs`` GPCs holding a single CI."""
    mem = spec.memory_slices_for_gpcs(gpcs) / spec.mig_memory_slices
    return GiNode(mem_fraction=mem, cis=(CiNode(gpcs / spec.n_gpcs, shares),))


def enumerate_mig_only(
    spec: GpuSpec = A100_40GB, concurrency: int = 2
) -> list[PartitionVariant]:
    """MIG-only variants: one job per CI, no MPS inside.

    For concurrency 2 on the A100 this includes the paper's two options
    (Fig. 2): the 3+4 shared-memory split (two CIs inside one 7-GPC GI)
    and the 3+4 private split (two GIs). Wider concurrency uses the
    driver's GI combination table.
    """
    from repro.gpu.mig import enumerate_gi_combinations

    variants = []
    # Shared-memory option: a single full-width GI subdivided into CIs.
    for sizes in _ci_partitions(spec.mig_compute_slices, concurrency):
        cis = tuple(CiNode(s / spec.n_gpcs) for s in sizes)
        tree = PartitionTree(gis=(GiNode(1.0, cis),), mig_enabled=True)
        label = "[" + "+".join("{%g}" % (s / spec.n_gpcs) for s in sizes) + ",1m]"
        variants.append(PartitionVariant(tree, KIND_MIG_SHARED, concurrency, label))
    # Private option: one GI per job.
    for combo in enumerate_gi_combinations(spec, maximal_only=False):
        if len(combo) != concurrency:
            continue
        gis = tuple(_gi_private(spec, w) for _, w in combo)
        try:
            tree = PartitionTree(gis=gis, mig_enabled=True)
            tree.validate(spec)
        except PartitionError:
            continue
        label = "+".join(
            "[{%g},%gm]" % (w / spec.n_gpcs, g.mem_fraction)
            for (_, w), g in zip(combo, gis)
        )
        variants.append(PartitionVariant(tree, KIND_MIG_PRIVATE, concurrency, label))
    # De-duplicate private variants that differ only in placement.
    seen: set[tuple] = set()
    unique = []
    for v in variants:
        key = (v.kind, tuple(sorted((g.mem_fraction, g.compute_fraction) for g in v.tree.gis)),
               tuple(sorted(ci.compute_fraction for g in v.tree.gis for ci in g.cis)))
        if key not in seen:
            seen.add(key)
            unique.append(v)
    return unique


def _ci_partitions(total_slices: int, n_cis: int) -> list[tuple[int, ...]]:
    """Ways to split ``total_slices`` into ``n_cis`` CI sizes from the
    driver's CI size table (1, 2, 3, 4, 7), unordered."""
    sizes = [s for s in (1, 2, 3, 4, 7) if s <= total_slices]
    out = set()
    for combo in itertools.combinations_with_replacement(sizes, n_cis):
        if sum(combo) == total_slices:
            out.add(tuple(sorted(combo)))
    return sorted(out)


def _hier_private_pair_tree(
    spec: GpuSpec,
    left_deciles: tuple[int, ...] | None,
    right_deciles: tuple[int, ...] | None,
    left_gpcs: int = 3,
    right_gpcs: int = 4,
) -> PartitionTree:
    """3GPC + 4GPC private GIs; each side holds either one exclusive job
    (``None``) or an MPS group with the given decile split."""

    def gi(gpcs: int, deciles: tuple[int, ...] | None) -> GiNode:
        shares = (
            (MpsShare(1.0),)
            if deciles is None
            else tuple(MpsShare(d / 10.0) for d in deciles)
        )
        return _gi_private(spec, gpcs, shares)

    return PartitionTree(
        gis=(gi(left_gpcs, left_deciles), gi(right_gpcs, right_deciles)),
        mig_enabled=True,
    )


def _hier_shared_tree(
    spec: GpuSpec,
    left_deciles: tuple[int, ...] | None,
    right_deciles: tuple[int, ...] | None,
    left_gpcs: int = 3,
    right_gpcs: int = 4,
) -> PartitionTree:
    """One full-width GI (shared memory) with two CIs; MPS optional per CI."""

    def ci(gpcs: int, deciles: tuple[int, ...] | None) -> CiNode:
        shares = (
            (MpsShare(1.0),)
            if deciles is None
            else tuple(MpsShare(d / 10.0) for d in deciles)
        )
        return CiNode(gpcs / spec.n_gpcs, shares)

    return PartitionTree(
        gis=(GiNode(1.0, (ci(left_gpcs, left_deciles), ci(right_gpcs, right_deciles))),),
        mig_enabled=True,
    )


def enumerate_hierarchical(
    spec: GpuSpec = A100_40GB, concurrency: int = 2
) -> list[PartitionVariant]:
    """The MIG+MPS variant space of Table VII for one concurrency level.

    * ``C = 2``: all MPS-only splits, plus MIG 3+4 shared and private.
    * ``C = 3``: MPS-only 3-way splits; 3+4 private with an MPS pair on
      the 4GPC (or 3GPC) side; 3+4 shared-memory CIs with an MPS pair in
      one CI.
    * ``C = 4``: MPS-only 4-way splits; 3+4 private with MPS pairs on
      both sides; 3+4 shared with MPS pairs in both CIs.
    """
    variants: list[PartitionVariant] = list(enumerate_mps_only(concurrency))
    pair_splits = decile_compositions(2)  # (1,9) .. (5,5)

    if concurrency == 2:
        variants += [
            v
            for v in enumerate_mig_only(spec, 2)
            if _is_3_4_split(v, spec)
        ]
    elif concurrency == 3:
        for side in ("left", "right"):
            for split in pair_splits:
                ld, rd = (split, None) if side == "left" else (None, split)
                tree = _hier_private_pair_tree(spec, ld, rd)
                variants.append(
                    PartitionVariant(
                        tree, KIND_HIERARCHICAL, 3,
                        _label_hier(tree),
                    )
                )
                tree = _hier_shared_tree(spec, ld, rd)
                variants.append(
                    PartitionVariant(tree, KIND_HIERARCHICAL, 3, _label_hier(tree))
                )
    elif concurrency == 4:
        for ls in pair_splits:
            for rs in pair_splits:
                tree = _hier_private_pair_tree(spec, ls, rs)
                variants.append(
                    PartitionVariant(tree, KIND_HIERARCHICAL, 4, _label_hier(tree))
                )
                tree = _hier_shared_tree(spec, ls, rs)
                variants.append(
                    PartitionVariant(tree, KIND_HIERARCHICAL, 4, _label_hier(tree))
                )
    else:
        raise PartitionError(
            f"hierarchical enumeration supports concurrency 2..4; got {concurrency}"
        )
    for v in variants:
        v.tree.validate(spec)
    return variants


def _is_3_4_split(v: PartitionVariant, spec: GpuSpec) -> bool:
    fracs = sorted(
        round(ci.compute_fraction * spec.n_gpcs)
        for gi in v.tree.gis
        for ci in gi.cis
    )
    return fracs == [3, 4]


def _label_hier(tree: PartitionTree) -> str:
    from repro.gpu.partition import format_partition

    return format_partition(tree)


def action_catalog(spec: GpuSpec = A100_40GB) -> list[PartitionVariant]:
    """The RL agent's fixed 29-entry action catalog.

    Composition (kept deliberately small so the advantage head of
    Table VI has exactly 29 outputs):

    =====  ==================================================  =====
    C      family                                              count
    =====  ==================================================  =====
    2      MPS splits (1+9 … 5+5)                              5
    2      MIG 3+4 shared / private                            2
    3      MPS splits (1+1+8, 1+2+7, 2+2+6, 2+3+5, 3+3+4)      5
    3      3+4 private, MPS pair on 4GPC side (1+9, 3+7, 5+5)  3
    3      3+4 shared, MPS pair in 4GPC CI (1+9, 3+7, 5+5)     3
    4      MPS splits (1+1+1+7, 1+2+3+4, 2+2+3+3 + 2.5x4)      4
    4      3+4 private, pairs both sides (skew/bal x skew/bal) 4
    4      3+4 shared, pairs both CIs (skew/bal x skew/bal)    3
    =====  ==================================================  =====

    Total: 29.
    """
    catalog: list[PartitionVariant] = []

    # --- C = 2 ---------------------------------------------------------
    catalog += enumerate_mps_only(2)  # 5
    catalog += [v for v in enumerate_mig_only(spec, 2) if _is_3_4_split(v, spec)]  # 2

    # --- C = 3 ---------------------------------------------------------
    for deciles in ((1, 1, 8), (1, 2, 7), (2, 2, 6), (2, 3, 5), (3, 3, 4)):
        tree = _mps_tree(deciles)
        catalog.append(PartitionVariant(tree, KIND_MPS, 3, _label_hier(tree)))
    # private 3+4: MPS pair on the 4GPC side (skewed/balanced) or on the
    # 3GPC side (balanced) — the lone job gets the other GI to itself
    for left, right in ((None, (1, 9)), (None, (5, 5)), (((5, 5)), None)):
        tree = _hier_private_pair_tree(spec, left, right)
        catalog.append(PartitionVariant(tree, KIND_HIERARCHICAL, 3, _label_hier(tree)))
    for left, right in ((None, (1, 9)), (None, (5, 5)), (((5, 5)), None)):
        tree = _hier_shared_tree(spec, left, right)
        catalog.append(PartitionVariant(tree, KIND_HIERARCHICAL, 3, _label_hier(tree)))

    # --- C = 4 ---------------------------------------------------------
    for deciles in ((1, 1, 1, 7), (1, 2, 3, 4), (2, 2, 3, 3)):
        tree = _mps_tree(deciles)
        catalog.append(PartitionVariant(tree, KIND_MPS, 4, _label_hier(tree)))
    # the paper's canonical (0.25)x4 is not a whole-decile split; model it
    # directly
    tree = PartitionTree(
        gis=(GiNode(1.0, (CiNode(1.0, tuple(MpsShare(0.25) for _ in range(4))),)),),
        mig_enabled=False,
    )
    catalog.append(PartitionVariant(tree, KIND_MPS, 4, _label_hier(tree)))
    for ls in ((1, 9), (5, 5)):
        for rs in ((1, 9), (5, 5)):
            tree = _hier_private_pair_tree(spec, ls, rs)
            catalog.append(
                PartitionVariant(tree, KIND_HIERARCHICAL, 4, _label_hier(tree))
            )
    for ls, rs in (((1, 9), (1, 9)), ((1, 9), (5, 5)), ((5, 5), (5, 5))):
        tree = _hier_shared_tree(spec, ls, rs)
        catalog.append(
            PartitionVariant(tree, KIND_HIERARCHICAL, 4, _label_hier(tree))
        )

    assert len(catalog) == 29, f"action catalog must have 29 entries, got {len(catalog)}"
    for v in catalog:
        v.tree.validate(spec)
    return catalog


def variant_counts(spec: GpuSpec = A100_40GB, c_max: int = 4) -> dict[int, int]:
    """Number of available setups ``N_C`` per concurrency (used by the
    paper's offline-overhead bound in Section V-B)."""
    return {
        c: len(enumerate_hierarchical(spec, c)) for c in range(2, c_max + 1)
    }
