"""Windowed time-series rollups: FleetSnapshot-aligned frames.

The fleet engine's CHECKPOINT events already snapshot counters on a
fixed simulated-time cadence; PR 9 enriches those snapshots with the
streaming quantities an operator watches (queue depth, utilization,
queue-wait p95/p99 from the always-on sketch, decisions/sec, energy)
and this module gives them a byte-stable JSONL form — the ``frames``
artifact that ``repro-gpu top``, the dashboard, and the burn-rate SLO
monitor all consume. Readers zero-fill: a missing or empty artifact is
an empty series, never an exception.
"""

from __future__ import annotations

import json
import os

__all__ = [
    "write_frames_jsonl",
    "read_frames_jsonl",
    "frames_series",
]


def write_frames_jsonl(snapshots, path: str) -> int:
    """One sorted-keys JSON object per snapshot; returns frames written."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    written = 0
    with open(path, "w", encoding="utf-8") as handle:
        for snapshot in snapshots:
            doc = snapshot.to_dict() if hasattr(snapshot, "to_dict") else dict(snapshot)
            handle.write(json.dumps(doc, sort_keys=True) + "\n")
            written += 1
    return written


def read_frames_jsonl(path: str) -> list[dict]:
    """Load frames; missing file / blank lines zero-fill to ``[]``."""
    if not os.path.exists(path):
        return []
    frames = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            frames.append(json.loads(line))
    return frames


def frames_series(frames: list[dict], key: str, default: float = 0.0) -> list[float]:
    """One column of the frame table, zero-filled for absent keys."""
    return [float(frame.get(key, default)) for frame in frames]
