"""repro.obs — causal lifecycle tracing and streaming fleet observability.

The fleet-scale half of the observability stack (DESIGN.md §15), built
on the PR 3 telemetry substrate:

* :mod:`repro.obs.trace` — deterministic per-job :class:`TraceContext`
  (trace ids keyed on job id + run seed) and the
  :class:`LifecycleTracer` that turns every job's arrival → admission →
  placement → dispatch/retry → terminal outcome into one causally
  linked span tree, streamed to JSONL in constant memory;
* :mod:`repro.obs.sketch` — :class:`QuantileSketch`, a mergeable
  DDSketch-style log-bucketed sketch with a documented relative-error
  bound, replacing reservoir sampling for fleet-scale percentiles;
* :mod:`repro.obs.rollup` — FleetSnapshot-aligned time-series frames
  (queue depth, utilization, wait percentiles, decisions/sec, energy)
  with byte-stable JSONL round-trip;
* :mod:`repro.obs.phase` — :class:`PhaseTimers`, wall-clock engine
  self-profiling via injectable :mod:`repro.clock` clocks;
* :mod:`repro.obs.top` — the ``repro-gpu top`` renderer over a run
  directory's artifacts.

Everything here is deterministic by construction: no wall clock outside
the injectable phase timers, no RNG anywhere, sorted iteration on every
serialization path (statcheck-enforced).
"""

from repro.obs.phase import PHASES, PhaseTimers
from repro.obs.rollup import frames_series, read_frames_jsonl, write_frames_jsonl
from repro.obs.sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch
from repro.obs.top import load_run, render_top, sparkline
from repro.obs.trace import (
    LifecycleTracer,
    TraceContext,
    lifecycle_chrome_trace,
    read_lifecycle_jsonl,
    summarize_lifecycle,
    trace_id_for,
)

__all__ = [
    "PHASES",
    "PhaseTimers",
    "frames_series",
    "read_frames_jsonl",
    "write_frames_jsonl",
    "DEFAULT_RELATIVE_ACCURACY",
    "QuantileSketch",
    "load_run",
    "render_top",
    "sparkline",
    "LifecycleTracer",
    "TraceContext",
    "lifecycle_chrome_trace",
    "read_lifecycle_jsonl",
    "summarize_lifecycle",
    "trace_id_for",
]
