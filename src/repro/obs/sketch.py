"""Deterministic, mergeable quantile sketch (DDSketch-style).

The Algorithm-R reservoirs in :mod:`repro.telemetry.registry` are exact
only while a series holds fewer samples than the reservoir — at the
200K-arrival fleet scale a p99 read off 512 retained samples is a
lottery, and two reservoirs cannot be merged. This module is the
streaming replacement: a log-bucketed sketch with a *relative-error
guarantee* that is

* **deterministic** — pure bucket arithmetic, no RNG, no wall clock
  (statcheck DET001/DET002 clean by construction);
* **mergeable** — two sketches with the same ``relative_accuracy``
  merge by adding bucket counts, so per-node or per-shard sketches roll
  up into fleet-wide percentiles losslessly;
* **constant-memory** — at most ``max_bins`` buckets per sign; when the
  budget is exceeded the lowest-magnitude buckets collapse upward, so
  the *upper* quantiles (the SLO-relevant tail) keep their guarantee.

Error bound
-----------
For relative accuracy ``a`` the bucket base is ``gamma = (1+a)/(1-a)``
and a value ``v > 0`` lands in bucket ``i = ceil(log_gamma(v))``, i.e.
``gamma**(i-1) < v <= gamma**i``. Quantiles report the bucket's
geometric pseudo-midpoint ``2*gamma**i / (gamma+1)``, which satisfies
``|estimate - v| / v <= a`` for every ``v`` in the bucket. Negative
values mirror into a second bucket store; values with
``|v| <= min_value`` share an exact zero bucket (absolute error at most
``min_value``). Reported quantiles are additionally clamped to the
exactly-tracked ``[minimum, maximum]``, and ``q=0`` / ``q=1`` return
those exact extremes.

The rank convention matches the registry's reservoir quantile: the
estimate covers the order statistic at index ``floor(q * (count - 1))``
of the sorted stream.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = ["QuantileSketch", "DEFAULT_RELATIVE_ACCURACY"]

#: 1% relative error — 2048 bins cover [1e-6 s, 1e12 s] per sign.
DEFAULT_RELATIVE_ACCURACY = 0.01


class QuantileSketch:
    """A mergeable log-bucketed quantile sketch over a float stream."""

    __slots__ = (
        "relative_accuracy",
        "min_value",
        "max_bins",
        "_gamma",
        "_log_gamma",
        "_bins",
        "_neg_bins",
        "zero_count",
        "count",
        "total",
        "minimum",
        "maximum",
    )

    def __init__(
        self,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        min_value: float = 1e-6,
        max_bins: int = 2048,
    ):
        if not 0.0 < relative_accuracy < 1.0:
            raise ConfigurationError(
                f"relative_accuracy must be in (0, 1); got {relative_accuracy}"
            )
        if min_value <= 0.0:
            raise ConfigurationError("min_value must be positive")
        if max_bins < 2:
            raise ConfigurationError("max_bins must be at least 2")
        self.relative_accuracy = float(relative_accuracy)
        self.min_value = float(min_value)
        self.max_bins = int(max_bins)
        self._gamma = (1.0 + self.relative_accuracy) / (1.0 - self.relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._bins: dict[int, int] = {}
        self._neg_bins: dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _index(self, magnitude: float) -> int:
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def add(self, value: float, count: int = 1) -> None:
        """Record ``value`` (``count`` times)."""
        if count < 1:
            raise ConfigurationError("count must be a positive integer")
        value = float(value)
        if math.isnan(value) or math.isinf(value):
            raise ConfigurationError(f"cannot sketch non-finite value {value!r}")
        self.count += count
        self.total += value * count
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        magnitude = abs(value)
        if magnitude <= self.min_value:
            self.zero_count += count
            return
        index = self._index(magnitude)
        bins = self._bins if value > 0.0 else self._neg_bins
        bins[index] = bins.get(index, 0) + count
        if len(bins) > self.max_bins:
            self._collapse(bins)

    def _collapse(self, bins: dict[int, int]) -> None:
        """Fold lowest-magnitude buckets upward until within budget.

        Collapsing toward larger magnitudes preserves the guarantee for
        the tail quantiles; the collapsed head degrades gracefully to
        "at most the collapsed bucket's bound".
        """
        keys = sorted(bins)
        while len(keys) > self.max_bins:
            low = keys.pop(0)
            bins[keys[0]] = bins.get(keys[0], 0) + bins.pop(low)

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other``'s stream into this sketch (lossless)."""
        if other._gamma != self._gamma or other.min_value != self.min_value:
            raise ConfigurationError(
                "can only merge sketches with identical accuracy parameters"
            )
        self.count += other.count
        self.total += other.total
        self.zero_count += other.zero_count
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        for source, target in ((other._bins, self._bins), (other._neg_bins, self._neg_bins)):
            for index in sorted(source):
                target[index] = target.get(index, 0) + source[index]
            if len(target) > self.max_bins:
                self._collapse(target)

    def copy(self) -> "QuantileSketch":
        clone = QuantileSketch(self.relative_accuracy, self.min_value, self.max_bins)
        clone.merge(self)
        return clone

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _clamp(self, estimate: float) -> float:
        return min(max(estimate, self.minimum), self.maximum)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimate (0 when the sketch is empty)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1]; got {q}")
        if not self.count:
            return 0.0
        if q <= 0.0:
            return self.minimum
        if q >= 1.0:
            return self.maximum
        rank = q * (self.count - 1)
        seen = 0
        # negatives first, most-negative (largest magnitude) to smallest
        for index in sorted(self._neg_bins, reverse=True):
            seen += self._neg_bins[index]
            if rank < seen:
                return self._clamp(-2.0 * self._gamma**index / (self._gamma + 1.0))
        seen += self.zero_count
        if rank < seen:
            return self._clamp(0.0)
        for index in sorted(self._bins):
            seen += self._bins[index]
            if rank < seen:
                return self._clamp(2.0 * self._gamma**index / (self._gamma + 1.0))
        return self.maximum

    def quantiles(self, qs) -> list[float]:
        """Several quantile estimates from **one** pass over the bins.

        Equivalent to ``[self.quantile(q) for q in qs]`` but sorts the
        bucket keys once instead of once per quantile — the hot path for
        periodic rollup frames that want p50/p95/p99 together.
        """
        for q in qs:
            if not 0.0 <= q <= 1.0:
                raise ConfigurationError(f"quantile must be in [0, 1]; got {q}")
        if not self.count:
            return [0.0 for _ in qs]
        out: dict[int, float] = {}
        remaining = []  # (rank, position), ascending rank
        for pos, q in enumerate(qs):
            if q <= 0.0:
                out[pos] = self.minimum
            elif q >= 1.0:
                out[pos] = self.maximum
            else:
                remaining.append((q * (self.count - 1), pos))
        remaining.sort(reverse=True)  # pop ascending ranks from the end
        seen = 0

        def _drain(estimate: float) -> None:
            while remaining and remaining[-1][0] < seen:
                out[remaining.pop()[1]] = self._clamp(estimate)

        for index in sorted(self._neg_bins, reverse=True):
            seen += self._neg_bins[index]
            _drain(-2.0 * self._gamma**index / (self._gamma + 1.0))
        seen += self.zero_count
        _drain(0.0)
        for index in sorted(self._bins):
            if not remaining:
                break
            seen += self._bins[index]
            _drain(2.0 * self._gamma**index / (self._gamma + 1.0))
        while remaining:
            out[remaining.pop()[1]] = self.maximum
        return [out[pos] for pos in range(len(qs))]

    def to_buckets(self) -> tuple:
        """Cumulative ``(upper_bound, count)`` pairs, Prometheus-style.

        Bounds ascend strictly; the final pair is ``("+Inf", count)``.
        """
        out: list[tuple] = []
        acc = 0
        for index in sorted(self._neg_bins, reverse=True):
            acc += self._neg_bins[index]
            out.append((-(self._gamma ** (index - 1)), acc))
        if self.zero_count:
            acc += self.zero_count
            out.append((self.min_value, acc))
        for index in sorted(self._bins):
            acc += self._bins[index]
            out.append((self._gamma**index, acc))
        out.append(("+Inf", self.count))
        return tuple(out)

    # ------------------------------------------------------------------
    # serialization (byte-stable: sorted keys throughout)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "relative_accuracy": self.relative_accuracy,
            "min_value": self.min_value,
            "max_bins": self.max_bins,
            "count": self.count,
            "total": self.total,
            "zero_count": self.zero_count,
            "minimum": self.minimum if self.count else 0.0,
            "maximum": self.maximum if self.count else 0.0,
            "bins": {str(i): self._bins[i] for i in sorted(self._bins)},
            "neg_bins": {str(i): self._neg_bins[i] for i in sorted(self._neg_bins)},
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "QuantileSketch":
        sketch = cls(
            relative_accuracy=float(doc["relative_accuracy"]),
            min_value=float(doc["min_value"]),
            max_bins=int(doc["max_bins"]),
        )
        sketch.count = int(doc["count"])
        sketch.total = float(doc["total"])
        sketch.zero_count = int(doc["zero_count"])
        if sketch.count:
            sketch.minimum = float(doc["minimum"])
            sketch.maximum = float(doc["maximum"])
        sketch._bins = {int(i): int(n) for i, n in doc["bins"].items()}
        sketch._neg_bins = {int(i): int(n) for i, n in doc["neg_bins"].items()}
        return sketch

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QuantileSketch(count={self.count}, a={self.relative_accuracy}, "
            f"bins={len(self._bins)}+{len(self._neg_bins)})"
        )
