"""`repro-gpu top` — fleet health rendered from a run directory.

Pure functions: load the observability artifacts a fleet run leaves
behind (``frames.jsonl`` rollups, ``lifecycle.jsonl`` per-job records,
``fleet.json`` summary when present) and render a terminal dashboard
string. No printing here (HYG001) — the CLI prints the returned text —
and every loader zero-fills, so ``top`` on an empty or partial run
directory renders a placeholder instead of raising.
"""

from __future__ import annotations

import json
import os

from repro.obs.rollup import frames_series, read_frames_jsonl
from repro.obs.trace import read_lifecycle_jsonl, summarize_lifecycle

__all__ = ["load_run", "render_top", "sparkline"]

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 48) -> str:
    """A unicode sparkline, resampled (bucket means) to ``width``."""
    values = [float(v) for v in values]
    if not values:
        return "(no data)"
    if len(values) > width:
        resampled = []
        for i in range(width):
            lo = i * len(values) // width
            hi = max(lo + 1, (i + 1) * len(values) // width)
            chunk = values[lo:hi]
            resampled.append(sum(chunk) / len(chunk))
        values = resampled
    low, high = min(values), max(values)
    span = high - low
    if span <= 0.0:
        return _BARS[1] * len(values)
    return "".join(
        _BARS[1 + int((v - low) / span * (len(_BARS) - 2))] for v in values
    )


def load_run(out_dir: str) -> dict:
    """Gather the observability artifacts under ``out_dir`` (zero-fill)."""
    frames = read_frames_jsonl(os.path.join(out_dir, "frames.jsonl"))
    lifecycle = read_lifecycle_jsonl(os.path.join(out_dir, "lifecycle.jsonl"))
    summary: dict = {}
    summary_path = os.path.join(out_dir, "fleet.json")
    if os.path.exists(summary_path):
        try:
            with open(summary_path, encoding="utf-8") as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict):
                summary = loaded
        except (OSError, ValueError):
            summary = {}
    return {
        "dir": out_dir,
        "frames": frames,
        "lifecycle": summarize_lifecycle(lifecycle),
        "summary": summary,
    }


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.3f}"


def render_top(run: dict, alerts=(), width: int = 48) -> str:
    """The fleet-health panel: headline counters, rollup sparklines,
    lifecycle outcome mix, and burn-rate SLO status."""
    frames = run.get("frames", [])
    lifecycle = run.get("lifecycle", {}) or {}
    summary = run.get("summary", {}) or {}
    lines = [f"repro-gpu top — {run.get('dir', '?')}"]

    latest = frames[-1] if frames else {}
    headline = [
        ("t", latest.get("time", summary.get("makespan", 0.0))),
        ("submitted", latest.get("submitted", summary.get("submitted", 0))),
        ("completed", latest.get("completed", summary.get("completed", 0))),
        ("failed", latest.get("failed", summary.get("failed", 0))),
        ("rejected", latest.get("rejected", summary.get("rejected", 0))),
        ("pending", latest.get("pending", summary.get("pending", 0))),
        ("busy", latest.get("busy_nodes", 0)),
    ]
    lines.append("  ".join(f"{k}={_fmt(float(v))}" for k, v in headline))

    if frames:
        rows = (
            ("pending", "pending"),
            ("busy_nodes", "busy nodes"),
            ("utilization", "utilization"),
            ("queue_wait_p95", "queue-wait p95 (s)"),
            ("queue_wait_p99", "queue-wait p99 (s)"),
            ("decisions_per_sec", "decisions/sec"),
            ("energy_joules", "energy (J)"),
        )
        lines.append("")
        for key, label in rows:
            series = frames_series(frames, key)
            lines.append(
                f"{label:>20} {sparkline(series, width)} "
                f"last={_fmt(series[-1])} max={_fmt(max(series))}"
            )
    else:
        lines.append("(no frames.jsonl — run repro-gpu fleet with --telemetry "
                     "and a checkpoint interval)")

    if lifecycle.get("jobs"):
        outcomes = lifecycle.get("outcomes", {})
        mix = "  ".join(f"{k}={outcomes[k]}" for k in sorted(outcomes))
        lines.append("")
        lines.append(
            f"lifecycle: {lifecycle['jobs']} jobs  {mix}  "
            f"attempts={lifecycle.get('attempts', 0)}  "
            f"mean_wait={_fmt(lifecycle.get('mean_wait', 0.0))}s  "
            f"max_wait={_fmt(lifecycle.get('max_wait', 0.0))}s"
        )

    lines.append("")
    alerts = list(alerts)
    if alerts:
        for alert in alerts:
            doc = alert.to_dict() if hasattr(alert, "to_dict") else dict(alert)
            lines.append(
                f"SLO BURN [{doc.get('severity', '?')}] t={_fmt(float(doc.get('ts', 0.0)))} "
                f"{doc.get('message', doc.get('kind', 'alert'))}"
            )
    else:
        lines.append("SLO burn rate: ok")
    return "\n".join(lines)
