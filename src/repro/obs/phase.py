"""Engine self-profiling: wall-clock time attributed to phases.

Answers "where does a fleet run's real time go" — event-heap pops,
policy decisions (the batched serving pass), schedule replay on the
simulated devices, or telemetry/lifecycle emission. The clock is
injectable (:data:`repro.clock.perf_clock` by default, a
:class:`repro.clock.CountingClock` in tests), so the profiling layer
itself obeys the determinism contract: simulated results never depend
on it, and tests pin its arithmetic with a counted clock.

The measured split is what the benchgate telemetry-overhead budget is
stated against: telemetry-on fleet throughput must stay within a fixed
ratio of telemetry-off (DESIGN.md §15).
"""

from __future__ import annotations

from repro.clock import Clock, perf_clock

__all__ = ["PhaseTimers", "PHASES"]

#: canonical phase names the fleet engine attributes time to
PHASES = ("event_pop", "decision", "replay", "telemetry")


class PhaseTimers:
    """Accumulates (seconds, calls) per named phase.

    Usage in the engine::

        t0 = timers.clock()
        ...work...
        timers.add("decision", timers.clock() - t0)
    """

    def __init__(self, clock: Clock = perf_clock):
        self.clock = clock
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    def add(self, phase: str, seconds: float, calls: int = 1) -> None:
        """Attribute ``seconds`` to ``phase``; ``calls`` lets hot loops
        accumulate locally and flush one aggregate sample."""
        if seconds < 0.0:
            seconds = 0.0  # monotonic clocks can still tie; never go negative
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.calls[phase] = self.calls.get(phase, 0) + calls

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds[k] for k in sorted(self.seconds))

    def fraction(self, phase: str) -> float:
        total = self.total_seconds
        return self.seconds.get(phase, 0.0) / total if total > 0.0 else 0.0

    def to_dict(self) -> dict:
        """Sorted, byte-stable phase table."""
        return {
            "total_seconds": self.total_seconds,
            "phases": {
                name: {
                    "seconds": self.seconds[name],
                    "calls": self.calls.get(name, 0),
                    "fraction": self.fraction(name),
                }
                for name in sorted(self.seconds)
            },
        }
