"""Causal per-job lifecycle tracing for the fleet engine.

PR 3's span tracer answers "what ran on node N when"; it cannot answer
"why did job J wait 40 s" because nothing links a job's arrival,
admission verdict, placement decision, dispatch attempts, crashes,
requeues, and terminal outcome into one causal chain. This module adds
that chain:

* :class:`TraceContext` — a deterministic per-job identity. The trace
  id is a keyed BLAKE2b digest of the job id salted with the run seed
  (no wall clock, no global RNG — statcheck-clean), so reruns of a
  seeded simulation produce byte-identical ids.
* :class:`LifecycleTracer` — builds one span tree per job. Span ids
  come from a seeded monotonic counter; every span names its parent,
  and the tree is serialized to a JSONL lifecycle log (sorted keys)
  the moment the job reaches a terminal state (completed / failed /
  rejected) and evicted from memory — **constant memory**: only
  in-flight jobs are resident, regardless of arrival count.
* :func:`lifecycle_chrome_trace` — converts lifecycle records into the
  same Chrome ``trace_event`` JSON the PR 3 exporter emits, one thread
  per node plus a ``jobs`` overview track, so Perfetto renders the
  causal view next to the window timeline.

Record schema (one JSON object per terminal job)::

    {"trace_id": ..., "job_id": ..., "benchmark": ..., "outcome":
     "completed" | "failed" | "rejected", "submit": t, "end": t,
     "wait": s, "attempts": n, "spans": [{"span_id", "parent_id",
     "name", "start", "end", "args"}...], "events": [{"name", "ts",
     "span_id", "args"}...]}

The root span is named ``job`` and covers submit → terminal; each
dispatch attempt contributes a ``queued`` span (time spent waiting for
that attempt) and an ``execute`` span (the co-run on the node),
both children of the root.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "TraceContext",
    "LifecycleTracer",
    "trace_id_for",
    "read_lifecycle_jsonl",
    "lifecycle_chrome_trace",
    "summarize_lifecycle",
]


def trace_id_for(job_id: str, seed: int = 0) -> str:
    """Deterministic 16-hex-char trace id for a job under a run seed."""
    digest = hashlib.blake2b(
        str(job_id).encode("utf-8"),
        digest_size=8,
        key=str(int(seed)).encode("utf-8"),
    )
    return digest.hexdigest()


@dataclass(frozen=True)
class TraceContext:
    """The causal identity threaded through a job's lifecycle."""

    trace_id: str
    job_id: str
    benchmark: str

    @classmethod
    def for_job(cls, job, seed: int = 0) -> "TraceContext":
        return cls(
            trace_id=trace_id_for(job.job_id, seed),
            job_id=job.job_id,
            benchmark=job.benchmark_name,
        )


class LifecycleTracer:
    """One causally-linked span tree per job, streamed to JSONL.

    Hooks are called by :class:`~repro.cluster.fleet.FleetEngine` when a
    lifecycle tracer is attached; they are pure observers (no RNG, no
    clock reads) so traced and untraced runs stay schedule-identical.
    """

    def __init__(
        self,
        seed: int = 0,
        path: str | None = None,
        retain: bool | None = None,
    ):
        self.seed = int(seed)
        self.path = path
        self._file = None
        if path is not None:
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._file = open(path, "w", encoding="utf-8")
        # retain defaults on only when nothing is being streamed out
        self.retain = (path is None) if retain is None else bool(retain)
        self.records: list[dict] = []
        self.finished = 0
        self.outcomes: dict[str, int] = {"completed": 0, "failed": 0, "rejected": 0}
        # span ids: seeded monotonic counter — unique, reproducible
        self._span_seq = self.seed * 0x100000
        self._open: dict[str, dict] = {}

    # ------------------------------------------------------------------
    def _next_span_id(self) -> str:
        self._span_seq += 1
        return f"s{self._span_seq:010x}"

    def _begin(self, job, t: float) -> dict:
        context = TraceContext.for_job(job, self.seed)
        record = {
            "trace_id": context.trace_id,
            "job_id": context.job_id,
            "benchmark": context.benchmark,
            "submit": t,
            "attempts": 0,
            "root": self._next_span_id(),
            "queued_since": t,
            "spans": [],
            "events": [],
        }
        self._open[context.job_id] = record
        return record

    def _event(self, record: dict, name: str, ts: float, **args) -> None:
        record["events"].append(
            {"name": name, "ts": ts, "span_id": record["root"], "args": args}
        )

    def _span(
        self, record: dict, name: str, start: float, end: float, **args
    ) -> dict:
        span = {
            "span_id": self._next_span_id(),
            "parent_id": record["root"],
            "name": name,
            "start": start,
            "end": end,
            "args": args,
        }
        record["spans"].append(span)
        return span

    # ------------------------------------------------------------------
    # engine hooks, in lifecycle order
    # ------------------------------------------------------------------
    def arrival(self, job, t: float, admitted: bool) -> None:
        record = self._begin(job, t)
        self._event(record, "arrival", t, admitted=admitted)
        if not admitted:
            self._finalize(record, "rejected", t)

    def placed(
        self, job, t: float, node_index: int, node_name: str, info: dict | None = None
    ) -> None:
        record = self._open.get(job.job_id)
        if record is None:  # pragma: no cover - defensive
            return
        args = {"node": node_name, "node_index": int(node_index)}
        if info:
            args.update(info)
        self._event(record, "placed", t, **args)

    def attempt(
        self,
        job,
        start: float,
        finish: float,
        node_name: str,
        policy: str,
        fell_back: bool,
        crashed: bool,
        window_size: int,
        window_seen: bool,
        cache_hits: int | None = None,
    ) -> None:
        """One dispatch attempt: a ``queued`` span then an ``execute``
        span; ``window_seen``/``cache_hits`` carry the decision-cache
        provenance (signature previously dispatched; round-level hit
        delta in the fleet-wide :class:`DecisionCache`)."""
        record = self._open.get(job.job_id)
        if record is None:  # pragma: no cover - defensive
            return
        record["attempts"] += 1
        queued_since = record.pop("queued_since", start)
        self._span(record, "queued", queued_since, start)
        args = {
            "node": node_name,
            "policy": policy,
            "fell_back": fell_back,
            "crashed": crashed,
            "window_size": int(window_size),
            "window_seen": window_seen,
        }
        if cache_hits is not None:
            args["round_cache_hits"] = int(cache_hits)
        self._span(record, "execute", start, finish, **args)
        if crashed:
            self._event(record, "crash", finish)

    def requeued(self, job, t: float) -> None:
        record = self._open.get(job.job_id)
        if record is None:  # pragma: no cover - defensive
            return
        self._event(record, "requeue", t)
        record["queued_since"] = t

    def completed(self, job, t: float, wait: float) -> None:
        record = self._open.get(job.job_id)
        if record is None:  # pragma: no cover - defensive
            return
        record["wait"] = wait
        self._finalize(record, "completed", t)

    def failed(self, job, t: float) -> None:
        record = self._open.get(job.job_id)
        if record is None:  # pragma: no cover - defensive
            return
        self._finalize(record, "failed", t)

    # ------------------------------------------------------------------
    def _finalize(self, record: dict, outcome: str, end: float) -> None:
        record.pop("queued_since", None)
        root_id = record.pop("root")
        record["outcome"] = outcome
        record["end"] = end
        record["spans"].insert(
            0,
            {
                "span_id": root_id,
                "parent_id": None,
                "name": "job",
                "start": record["submit"],
                "end": end,
                "args": {"benchmark": record["benchmark"], "outcome": outcome},
            },
        )
        self._open.pop(record["job_id"], None)
        self.finished += 1
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        if self._file is not None:
            self._file.write(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
        if self.retain:
            self.records.append(record)

    @property
    def open_jobs(self) -> int:
        """Jobs still in flight (should be 0 after a drained run)."""
        return len(self._open)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "LifecycleTracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# readers / converters (zero-fill on missing or empty artifacts)
# ----------------------------------------------------------------------
def read_lifecycle_jsonl(path: str) -> list[dict]:
    """Load lifecycle records; missing file or blank lines -> zero-fill
    (an empty list), never an exception for an absent artifact."""
    if not os.path.exists(path):
        return []
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            records.append(json.loads(line))
    return records


def summarize_lifecycle(records: list[dict]) -> dict:
    """Outcome counts, attempt totals, and wait moments over records."""
    outcomes: dict[str, int] = {}
    attempts = 0
    waits: list[float] = []
    for record in records:
        outcome = str(record.get("outcome", "unknown"))
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        attempts += int(record.get("attempts", 0))
        if "wait" in record:
            waits.append(float(record["wait"]))
    return {
        "jobs": len(records),
        "outcomes": {k: outcomes[k] for k in sorted(outcomes)},
        "attempts": attempts,
        "mean_wait": sum(waits) / len(waits) if waits else 0.0,
        "max_wait": max(waits) if waits else 0.0,
    }


def lifecycle_chrome_trace(records: list[dict]) -> dict:
    """Chrome ``trace_event`` JSON from lifecycle records.

    Thread 0 is the ``jobs`` overview (root spans); each node observed
    in ``execute`` spans gets its own thread, in sorted-name order.
    Times are simulated seconds scaled to microseconds, matching the
    PR 3 exporter. Tolerates an empty record list (valid empty trace).
    """
    nodes = sorted(
        {
            str(span["args"].get("node", ""))
            for record in records
            for span in record.get("spans", ())
            if span.get("name") == "execute"
        }
        - {""}
    )
    tid_of = {name: i + 1 for i, name in enumerate(nodes)}
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro-fleet-lifecycle"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "jobs"},
        },
    ]
    for name in nodes:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid_of[name],
                "args": {"name": name},
            }
        )

    def _us(t: float) -> float:
        return float(t) * 1e6

    for record in records:
        base_args = {
            "trace_id": record.get("trace_id"),
            "job_id": record.get("job_id"),
        }
        for span in record.get("spans", ()):
            if span.get("name") == "job":
                tid = 0
                label = f"job {record.get('benchmark', '?')}"
            elif span.get("name") == "execute":
                tid = tid_of.get(str(span["args"].get("node", "")), 0)
                label = f"execute {record.get('benchmark', '?')}"
            else:
                continue  # queued spans clutter the flame view
            args = dict(base_args)
            args.update(
                {"span_id": span.get("span_id"), "parent_id": span.get("parent_id")}
            )
            args.update(span.get("args", {}))
            events.append(
                {
                    "name": label,
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": _us(span["start"]),
                    "dur": _us(span["end"]) - _us(span["start"]),
                    "cat": "lifecycle",
                    "args": args,
                }
            )
        for event in record.get("events", ()):
            events.append(
                {
                    "name": str(event.get("name", "event")),
                    "ph": "i",
                    "pid": 1,
                    "tid": 0,
                    "ts": _us(float(event.get("ts", 0.0))),
                    "s": "t",
                    "cat": "lifecycle",
                    "args": dict(base_args, **event.get("args", {})),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _validate_record(record: dict) -> None:
    """Raise when a record is not one closed causal tree (test helper)."""
    spans = record.get("spans", [])
    if not spans:
        raise ConfigurationError(f"record {record.get('job_id')} has no spans")
    ids = {span["span_id"] for span in spans}
    if len(ids) != len(spans):
        raise ConfigurationError("duplicate span ids in record")
    roots = [span for span in spans if span["parent_id"] is None]
    if len(roots) != 1 or roots[0]["name"] != "job":
        raise ConfigurationError("record must have exactly one root 'job' span")
    for span in spans:
        parent = span["parent_id"]
        if parent is not None and parent not in ids:
            raise ConfigurationError(f"span {span['span_id']} orphaned")
