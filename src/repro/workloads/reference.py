"""Runnable NumPy reference kernels for a subset of the suite.

The scheduler pipeline operates on analytic kernel models; these
reference implementations exist so the examples (and tests) can show
the *shape* of the workloads being modelled and produce real numbers —
bytes moved, floating-point operations, a checksum — on the host CPU.
They are small, faithful miniatures of the original benchmarks'
computational patterns:

==============  =====================================================
suite program   pattern
==============  =====================================================
stream          triad: ``a = b + s * c`` (bandwidth bound)
randomaccess    GUPS-style scattered XOR updates (latency bound)
hotspot         2D 5-point stencil heat relaxation
hotspot3D       3D 7-point stencil
lud_*           blocked LU decomposition without pivoting
kmeans          Lloyd iteration (assign + centroid update)
needle          Needleman-Wunsch DP with affine-free scoring
pathfinder      row-wise min-accumulation DP
lavaMD          cutoff-radius particle interactions on a cell grid
gaussian        Gaussian elimination forward sweep
backprop        one dense-layer forward/backward pass
qs_*            Monte Carlo particle attenuation sweep (Quicksilver)
==============  =====================================================

Every kernel takes a ``scale`` parameter so examples stay fast, and
returns a :class:`KernelRunStats` whose checksum is deterministic for a
given seed — the tests pin those checksums.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["KernelRunStats", "REFERENCE_KERNELS", "run_reference"]


@dataclass(frozen=True)
class KernelRunStats:
    """Outcome of one reference-kernel run on the host."""

    name: str
    flops: float
    bytes_moved: float
    checksum: float

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte — the roofline x-coordinate."""
        return self.flops / max(self.bytes_moved, 1.0)


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------

def stream_triad(scale: int = 1 << 20, seed: int = 0) -> KernelRunStats:
    """STREAM triad: a = b + s * c."""
    rng = _rng(seed)
    b = rng.random(scale)
    c = rng.random(scale)
    a = b + 3.0 * c
    return KernelRunStats(
        name="stream",
        flops=2.0 * scale,
        bytes_moved=3.0 * 8 * scale,
        checksum=float(a.sum()),
    )


def randomaccess_gups(scale: int = 1 << 18, seed: int = 0) -> KernelRunStats:
    """GUPS: scattered XOR updates into a power-of-two table."""
    rng = _rng(seed)
    table = np.arange(scale, dtype=np.uint64)
    idx = rng.integers(0, scale, size=scale // 2)
    np.bitwise_xor.at(table, idx, idx.astype(np.uint64))
    return KernelRunStats(
        name="randomaccess",
        flops=float(len(idx)),
        bytes_moved=2.0 * 8 * len(idx),
        checksum=float(table.sum() % (1 << 53)),
    )


def hotspot2d(scale: int = 256, iters: int = 8, seed: int = 0) -> KernelRunStats:
    """5-point stencil heat relaxation with a power source term."""
    rng = _rng(seed)
    t = rng.random((scale, scale))
    p = rng.random((scale, scale)) * 0.1
    for _ in range(iters):
        center = t[1:-1, 1:-1]
        t_new = center + 0.2 * (
            t[:-2, 1:-1] + t[2:, 1:-1] + t[1:-1, :-2] + t[1:-1, 2:]
            - 4 * center
        ) + p[1:-1, 1:-1]
        t[1:-1, 1:-1] = t_new
    n = (scale - 2) ** 2 * iters
    return KernelRunStats(
        name="hotspot",
        flops=8.0 * n,
        bytes_moved=6.0 * 8 * n,
        checksum=float(t.sum()),
    )


def hotspot3d(scale: int = 48, iters: int = 4, seed: int = 0) -> KernelRunStats:
    """7-point 3D stencil."""
    rng = _rng(seed)
    t = rng.random((scale, scale, scale))
    for _ in range(iters):
        c = t[1:-1, 1:-1, 1:-1]
        t[1:-1, 1:-1, 1:-1] = c + 0.1 * (
            t[:-2, 1:-1, 1:-1] + t[2:, 1:-1, 1:-1]
            + t[1:-1, :-2, 1:-1] + t[1:-1, 2:, 1:-1]
            + t[1:-1, 1:-1, :-2] + t[1:-1, 1:-1, 2:]
            - 6 * c
        )
    n = (scale - 2) ** 3 * iters
    return KernelRunStats(
        name="hotspot3D",
        flops=10.0 * n,
        bytes_moved=8.0 * 8 * n,
        checksum=float(t.sum()),
    )


def lud(scale: int = 96, seed: int = 0) -> KernelRunStats:
    """LU decomposition (Doolittle, no pivoting) on a diagonally
    dominant matrix."""
    rng = _rng(seed)
    a = rng.random((scale, scale)) + np.eye(scale) * scale
    for k in range(scale - 1):
        a[k + 1 :, k] /= a[k, k]
        a[k + 1 :, k + 1 :] -= np.outer(a[k + 1 :, k], a[k, k + 1 :])
    return KernelRunStats(
        name="lud_A",
        flops=2.0 / 3.0 * scale**3,
        bytes_moved=8.0 * scale**3 / 3.0,
        checksum=float(np.trace(a)),
    )


def kmeans(scale: int = 4096, k: int = 8, iters: int = 5, seed: int = 0) -> KernelRunStats:
    """Lloyd's algorithm on 2-D points."""
    rng = _rng(seed)
    pts = rng.random((scale, 2))
    centers = pts[rng.choice(scale, size=k, replace=False)].copy()
    for _ in range(iters):
        d = ((pts[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        assign = d.argmin(axis=1)
        for j in range(k):
            members = pts[assign == j]
            if len(members):
                centers[j] = members.mean(axis=0)
    return KernelRunStats(
        name="kmeans",
        flops=float(iters * scale * k * 6),
        bytes_moved=float(iters * scale * k * 16),
        checksum=float(centers.sum()),
    )


def needleman_wunsch(scale: int = 256, seed: int = 0) -> KernelRunStats:
    """Global sequence alignment DP (anti-diagonal dependency — the
    reason the GPU version is unscalable)."""
    rng = _rng(seed)
    a = rng.integers(0, 4, size=scale)
    b = rng.integers(0, 4, size=scale)
    score = np.zeros((scale + 1, scale + 1))
    score[0, :] = -np.arange(scale + 1)
    score[:, 0] = -np.arange(scale + 1)
    for i in range(1, scale + 1):
        match = np.where(a[i - 1] == b, 1.0, -1.0)
        row = score[i - 1]
        cur = score[i]
        for j in range(1, scale + 1):
            cur[j] = max(
                row[j - 1] + match[j - 1], row[j] - 1.0, cur[j - 1] - 1.0
            )
    return KernelRunStats(
        name="needle",
        flops=3.0 * scale * scale,
        bytes_moved=4.0 * 8 * scale * scale,
        checksum=float(score[-1, -1]),
    )


def pathfinder(scale: int = 2048, rows: int = 64, seed: int = 0) -> KernelRunStats:
    """Row-by-row minimum-path accumulation."""
    rng = _rng(seed)
    grid = rng.integers(1, 10, size=(rows, scale)).astype(float)
    acc = grid[0].copy()
    for r in range(1, rows):
        left = np.concatenate(([np.inf], acc[:-1]))
        right = np.concatenate((acc[1:], [np.inf]))
        acc = grid[r] + np.minimum(acc, np.minimum(left, right))
    n = rows * scale
    return KernelRunStats(
        name="pathfinder",
        flops=3.0 * n,
        bytes_moved=4.0 * 8 * n,
        checksum=float(acc.min()),
    )


def lavamd(scale: int = 512, cutoff: float = 0.25, seed: int = 0) -> KernelRunStats:
    """Cutoff-radius pairwise interactions (dense compute)."""
    rng = _rng(seed)
    pos = rng.random((scale, 3))
    q = rng.random(scale)
    d = np.linalg.norm(pos[:, None, :] - pos[None, :, :], axis=2)
    mask = (d < cutoff) & (d > 0)
    inv = np.where(mask, 1.0 / np.maximum(d, 1e-9), 0.0)
    energy = 0.5 * float((q[:, None] * q[None, :] * inv).sum())
    n = int(mask.sum())
    return KernelRunStats(
        name="lavaMD",
        flops=float(scale * scale * 9 + n * 4),
        bytes_moved=float(scale * scale * 8),
        checksum=energy,
    )


def gaussian_elim(scale: int = 96, seed: int = 0) -> KernelRunStats:
    """Forward elimination sweep."""
    rng = _rng(seed)
    a = rng.random((scale, scale + 1)) + np.eye(scale, scale + 1) * scale
    for k in range(scale - 1):
        factors = a[k + 1 :, k] / a[k, k]
        a[k + 1 :, k:] -= np.outer(factors, a[k, k:])
    return KernelRunStats(
        name="gaussian",
        flops=2.0 / 3.0 * scale**3,
        bytes_moved=8.0 * scale**3 / 3.0,
        checksum=float(np.abs(np.diagonal(a)).sum()),
    )


def backprop_layer(scale: int = 512, hidden: int = 64, seed: int = 0) -> KernelRunStats:
    """One dense layer forward + backward pass."""
    rng = _rng(seed)
    x = rng.random((32, scale))
    w = rng.random((scale, hidden)) * 0.01
    y = np.tanh(x @ w)
    grad_y = y - 0.5
    grad_w = x.T @ (grad_y * (1 - y**2))
    return KernelRunStats(
        name="backprop",
        flops=4.0 * 32 * scale * hidden,
        bytes_moved=8.0 * (x.size + w.size * 2 + y.size * 2),
        checksum=float(grad_w.sum()),
    )


def quicksilver_sweep(scale: int = 1 << 14, segments: int = 8, seed: int = 0) -> KernelRunStats:
    """Monte Carlo particle attenuation: branchy per-particle loops
    with divergent control flow (the Quicksilver pattern)."""
    rng = _rng(seed)
    energy = rng.random(scale) + 0.1
    weight = np.ones(scale)
    absorbed = 0.0
    for _ in range(segments):
        sigma = 0.5 + 0.5 * np.sin(energy * 7.0) ** 2
        step = -np.log(rng.random(scale)) / sigma
        absorb = step < 1.0
        absorbed += float(weight[absorb].sum() * 0.1)
        weight[absorb] *= 0.9
        energy = np.where(absorb, energy * 0.7 + 0.05, energy)
    n = scale * segments
    return KernelRunStats(
        name="qs_Coral_P1",
        flops=12.0 * n,
        bytes_moved=5.0 * 8 * n,
        checksum=absorbed,
    )


#: suite-program name -> runnable reference kernel
REFERENCE_KERNELS: dict[str, Callable[..., KernelRunStats]] = {
    "stream": stream_triad,
    "randomaccess": randomaccess_gups,
    "hotspot": hotspot2d,
    "hotspot3D": hotspot3d,
    "lud_A": lud,
    "kmeans": kmeans,
    "needle": needleman_wunsch,
    "pathfinder": pathfinder,
    "lavaMD": lavamd,
    "gaussian": gaussian_elim,
    "backprop": backprop_layer,
    "qs_Coral_P1": quicksilver_sweep,
}


def run_reference(name: str, **kwargs) -> KernelRunStats:
    """Run the reference kernel for a suite program name."""
    try:
        fn = REFERENCE_KERNELS[name]
    except KeyError:
        raise ConfigurationError(
            f"no reference kernel for {name!r}; available: "
            f"{sorted(REFERENCE_KERNELS)}"
        ) from None
    return fn(**kwargs)
