"""Jobs and job queues.

A :class:`Job` is one submission: a benchmark program plus the metadata
the scheduler's profile-matching function uses (the paper keys the Job
Profiles Repository on binary path + name). A :class:`JobQueue` models
the batch queue; the scheduler only ever looks at the first ``W`` jobs
(the *window*), per the problem definition in Section IV-A.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.workloads.kernels import KernelModel
from repro.workloads.suite import benchmark

__all__ = ["Job", "JobQueue"]

_job_counter = itertools.count()


@dataclass(frozen=True)
class Job:
    """One queued job.

    ``job_id`` is unique per submission; ``binary_path`` is the profile
    repository key (two submissions of the same program share profiles).
    """

    job_id: str
    benchmark_name: str
    binary_path: str
    user: str = "hpcuser"

    @classmethod
    def submit(cls, benchmark_name: str, user: str = "hpcuser") -> "Job":
        """Create a submission of a known benchmark program."""
        benchmark(benchmark_name)  # validate the name early
        n = next(_job_counter)
        return cls(
            job_id=f"job-{n:06d}",
            benchmark_name=benchmark_name,
            binary_path=f"/apps/bench/{benchmark_name}/bin/{benchmark_name}",
            user=user,
        )

    @property
    def model(self) -> KernelModel:
        """Ground-truth kernel model (what the simulated hardware runs).

        Scheduler code must not consult this — it sees only profiles.
        """
        return benchmark(self.benchmark_name)

    @property
    def solo_time(self) -> float:
        """Solo execution time on the full device (the hardware truth)."""
        return self.model.solo_time


@dataclass
class JobQueue:
    """A FIFO batch queue of jobs."""

    jobs: list[Job] = field(default_factory=list)
    name: str = "queue"

    @classmethod
    def from_benchmarks(cls, names: list[str], name: str = "queue") -> "JobQueue":
        return cls(jobs=[Job.submit(n) for n in names], name=name)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs)

    def window(self, w: int) -> list[Job]:
        """The first ``w`` jobs — the co-scheduling target (Fig. 6)."""
        if w <= 0:
            raise SchedulingError(f"window size must be positive; got {w}")
        if w > len(self.jobs):
            raise SchedulingError(
                f"window size {w} exceeds queue length {len(self.jobs)}"
            )
        return self.jobs[:w]

    def pop_window(self, w: int) -> list[Job]:
        """Remove and return the first ``w`` jobs."""
        window = self.window(w)
        self.jobs = self.jobs[w:]
        return window

    def push(self, job: Job) -> None:
        self.jobs.append(job)

    @property
    def benchmark_names(self) -> list[str]:
        return [j.benchmark_name for j in self.jobs]
