"""Job-mix generators: random training queues and the paper's Q1–Q12.

The paper evaluates four job-mix categories (Section V-A2):

* **X-dominant** (X in {CI, MI, US}): 50% of the window from class X,
  the rest filled from the other classes round-robin. For ``W = 12``
  that is 6 + 3 + 3.
* **Balanced**: classes picked round-robin — 4 + 4 + 4 at ``W = 12``.

Training queues are drawn only from the 18 non-starred programs and must
contain all three classes. The exact inference mixes of Table V are
reproduced verbatim by :func:`paper_queues`.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.jobs import JobQueue
from repro.workloads.suite import (
    CLASS_CI,
    CLASS_MI,
    CLASS_US,
    PAPER_CLASSES,
    TRAINING_SET,
    benchmarks_in_class,
)

__all__ = ["MixCategory", "QueueGenerator", "paper_queues", "PAPER_QUEUE_CATEGORY"]


class MixCategory(enum.Enum):
    """The four job-mix categories of the evaluation."""

    CI_DOMINANT = "CI-dominant"
    MI_DOMINANT = "MI-dominant"
    US_DOMINANT = "US-dominant"
    BALANCED = "Balanced"

    @property
    def dominant_class(self) -> str | None:
        return {
            MixCategory.CI_DOMINANT: CLASS_CI,
            MixCategory.MI_DOMINANT: CLASS_MI,
            MixCategory.US_DOMINANT: CLASS_US,
            MixCategory.BALANCED: None,
        }[self]


def class_quotas(category: MixCategory, w: int) -> dict[str, int]:
    """Per-class job counts for a window of size ``w``.

    X-dominant: ceil-half from X, remainder round-robin over the other
    two classes. Balanced: pure round-robin over (CI, MI, US).
    """
    if w < 3:
        raise ConfigurationError("window must hold at least one job per class")
    classes = [CLASS_CI, CLASS_MI, CLASS_US]
    quotas = {c: 0 for c in classes}
    dom = category.dominant_class
    if dom is None:
        for i in range(w):
            quotas[classes[i % 3]] += 1
    else:
        quotas[dom] = w // 2
        others = [c for c in classes if c != dom]
        for i in range(w - w // 2):
            quotas[others[i % 2]] += 1
    return quotas


class QueueGenerator:
    """Random queue generator over a benchmark pool.

    ``training_only`` restricts draws to the 18 non-starred programs —
    the pool used for the paper's 20 offline-training queues.
    """

    def __init__(self, seed: int = 0, training_only: bool = True):
        self.rng = np.random.default_rng(seed)
        self.training_only = training_only

    def _pool(self, cls: str) -> list[str]:
        pool = benchmarks_in_class(cls)
        if self.training_only:
            pool = [p for p in pool if p in TRAINING_SET]
        if not pool:
            raise ConfigurationError(f"no benchmarks available in class {cls}")
        return pool

    def queue(
        self,
        category: MixCategory = MixCategory.BALANCED,
        w: int = 12,
        name: str | None = None,
    ) -> JobQueue:
        """Draw one random queue matching a mix category's quotas.

        Programs are drawn with replacement only when a class quota
        exceeds its pool size; order is shuffled so class runs do not
        cluster at the queue head.
        """
        names: list[str] = []
        for cls, count in class_quotas(category, w).items():
            pool = self._pool(cls)
            replace = count > len(pool)
            names.extend(
                self.rng.choice(pool, size=count, replace=replace).tolist()
            )
        self.rng.shuffle(names)
        return JobQueue.from_benchmarks(
            names, name=name or f"{category.value}-w{w}"
        )

    def training_queues(self, n: int = 20, w: int = 12) -> list[JobQueue]:
        """The offline-training workload: ``n`` random queues, each
        containing all three classes (paper Section V-A2)."""
        cats = list(MixCategory)
        return [
            self.queue(cats[i % len(cats)], w, name=f"train-{i:02d}")
            for i in range(n)
        ]


#: Table V verbatim: the 12 inference job mixes for W = 12.
_PAPER_QUEUES: dict[str, list[str]] = {
    "Q1": ["huffman", "bt_solver_C", "bt_solver_B", "hotspot3D", "heartwall",
           "lavaMD", "lud_B", "cfd", "sp_solver_B", "pathfinder", "needle",
           "qs_NoFission"],
    "Q2": ["bt_solver_C", "heartwall", "lavaMD", "huffman", "hotspot",
           "hotspot3D", "cfd", "sp_solver_C", "gaussian", "pathfinder",
           "needle", "qs_Coral_P1"],
    "Q3": ["huffman", "bt_solver_C", "hotspot3D", "hotspot", "heartwall",
           "lavaMD", "lud_B", "stream", "sp_solver_C", "qs_NoFission",
           "pathfinder", "needle"],
    "Q4": ["bt_solver_B", "heartwall", "bt_solver_C", "lud_B", "gaussian",
           "sp_solver_B", "cfd", "sp_solver_C", "stream", "qs_NoCollisions",
           "pathfinder", "qs_Coral_P2"],
    "Q5": ["heartwall", "hotspot", "bt_solver_B", "lud_B", "gaussian",
           "randomaccess", "stream", "lud_C", "sp_solver_B", "qs_Coral_P2",
           "dwt2d", "qs_Coral_P1"],
    "Q6": ["bt_solver_C", "huffman", "lavaMD", "sp_solver_B", "gaussian",
           "randomaccess", "lud_C", "stream", "cfd", "qs_NoFission",
           "needle", "qs_Coral_P1"],
    "Q7": ["heartwall", "hotspot", "hotspot3D", "gaussian", "stream",
           "lud_B", "pathfinder", "qs_NoFission", "qs_Coral_P2", "backprop",
           "qs_NoCollisions", "dwt2d"],
    "Q8": ["bt_solver_C", "hotspot3D", "lavaMD", "stream", "cfd", "lud_B",
           "qs_Coral_P1", "needle", "kmeans", "qs_Coral_P2", "qs_NoFission",
           "qs_NoCollisions"],
    "Q9": ["lavaMD", "hotspot3D", "hotspot", "sp_solver_B", "lud_C",
           "randomaccess", "qs_Coral_P1", "dwt2d", "kmeans", "needle",
           "qs_NoCollisions", "qs_Coral_P2"],
    "Q10": ["lavaMD", "huffman", "hotspot3D", "bt_solver_C", "lud_C",
            "lud_B", "stream", "sp_solver_C", "qs_NoCollisions", "needle",
            "pathfinder", "qs_Coral_P1"],
    "Q11": ["huffman", "hotspot3D", "hotspot", "bt_solver_B", "cfd",
            "lud_C", "stream", "gaussian", "qs_Coral_P2", "needle",
            "pathfinder", "dwt2d"],
    "Q12": ["lavaMD", "hotspot", "huffman", "heartwall", "sp_solver_C",
            "lud_C", "randomaccess", "gaussian", "needle", "pathfinder",
            "qs_NoCollisions", "backprop"],
}

#: Category of each paper queue (derived from its class composition).
PAPER_QUEUE_CATEGORY: dict[str, MixCategory] = {
    "Q1": MixCategory.CI_DOMINANT, "Q2": MixCategory.CI_DOMINANT,
    "Q3": MixCategory.CI_DOMINANT,
    "Q4": MixCategory.MI_DOMINANT, "Q5": MixCategory.MI_DOMINANT,
    "Q6": MixCategory.MI_DOMINANT,
    "Q7": MixCategory.US_DOMINANT, "Q8": MixCategory.US_DOMINANT,
    "Q9": MixCategory.US_DOMINANT,
    "Q10": MixCategory.BALANCED, "Q11": MixCategory.BALANCED,
    "Q12": MixCategory.BALANCED,
}


def paper_queues() -> dict[str, JobQueue]:
    """The exact W=12 inference job mixes of Table V, Q1 through Q12."""
    return {
        qname: JobQueue.from_benchmarks(names, name=qname)
        for qname, names in _PAPER_QUEUES.items()
    }


def queue_class_counts(queue: JobQueue) -> dict[str, int]:
    """Count jobs per Table IV class in a queue (test/verification aid)."""
    counts = {CLASS_CI: 0, CLASS_MI: 0, CLASS_US: 0}
    for job in queue:
        counts[PAPER_CLASSES[job.benchmark_name]] += 1
    return counts
