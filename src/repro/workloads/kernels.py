"""Analytic kernel models: the ground truth behind the simulated GPU.

Each benchmark program is reduced to the quantities that decide its
behaviour under compute/bandwidth partitioning:

``t_compute``
    seconds of compute-bound work when run solo on the full device.
``t_memory``
    seconds of bandwidth-bound work when run solo on the full device
    (i.e. the kernel's DRAM traffic divided by its solo achieved
    bandwidth).
``parallel_fraction``
    Amdahl fraction of the compute work that scales with the SM share.
``saturation_fraction``
    the device fraction at which the kernel's parallelism saturates:
    above it, extra SMs buy nothing; below it, the Amdahl law applies
    to the share *relative to the knee*. Unscalable (US) programs have
    a knee near one GPC (so a 1-GPC private slice is nearly free but a
    5% MPS share is not), scalable kernels a knee at 1.0.
``bw_demand``
    fraction of the device's peak DRAM bandwidth the kernel drives when
    unconstrained (its achieved bandwidth / peak). A stream-like kernel
    approaches 0.9+; latency-bound kernels sit far lower.
``interference_sensitivity``
    extra memory-time inflation per unit of co-runner bandwidth pressure
    in the same memory domain (LLC thrash, row-buffer conflicts). This
    is what MIG's physical isolation removes and MPS cannot (paper
    Section III-B, Fig. 4).
``overlap``
    fraction of the shorter of (compute, memory) phases hidden under the
    longer one; modern GPUs overlap aggressively, so this defaults high.

The model's separation of concerns mirrors the paper's: the *profiles*
(Table III counters, produced by :mod:`repro.profiling`) are what the
scheduler sees; the kernel model itself is only visible to the simulated
device, playing the role of the physical hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["KernelModel"]


@dataclass(frozen=True)
class KernelModel:
    """Ground-truth performance description of one benchmark program."""

    name: str
    t_compute: float
    t_memory: float
    parallel_fraction: float
    bw_demand: float
    interference_sensitivity: float
    saturation_fraction: float = 1.0
    overlap: float = 0.8
    # Occupancy/shape statistics used only to synthesize profile counters.
    grid_size: int = 1 << 16
    registers_per_thread: int = 40
    waves_per_sm: float = 8.0
    achieved_warps_per_sm: float = 40.0
    l1_hit_rate: float = 0.6
    l2_hit_rate: float = 0.5

    def __post_init__(self) -> None:
        if self.t_compute < 0 or self.t_memory < 0:
            raise ConfigurationError(f"{self.name}: phase times must be >= 0")
        if self.t_compute == 0 and self.t_memory == 0:
            raise ConfigurationError(f"{self.name}: kernel does no work")
        if not 0.0 <= self.parallel_fraction < 1.0:
            raise ConfigurationError(
                f"{self.name}: parallel fraction must be in [0, 1)"
            )
        if not 0.0 < self.saturation_fraction <= 1.0:
            raise ConfigurationError(
                f"{self.name}: saturation fraction must be in (0, 1]"
            )
        if not 0.0 < self.bw_demand <= 1.0:
            raise ConfigurationError(f"{self.name}: bw demand must be in (0, 1]")
        if self.interference_sensitivity < 0:
            raise ConfigurationError(
                f"{self.name}: interference sensitivity must be >= 0"
            )
        if not 0.0 <= self.overlap <= 1.0:
            raise ConfigurationError(f"{self.name}: overlap must be in [0, 1]")

    # ------------------------------------------------------------------
    # solo-run characteristics (full device)
    # ------------------------------------------------------------------
    @property
    def solo_time(self) -> float:
        """Solo execution time on the full device.

        Compute and memory phases overlap by ``overlap`` of the shorter
        phase: ``T = max + (1 - overlap) * min``.
        """
        hi = max(self.t_compute, self.t_memory)
        lo = min(self.t_compute, self.t_memory)
        return hi + (1.0 - self.overlap) * lo

    @property
    def compute_duty(self) -> float:
        """Fraction of the solo run during which SMs do compute work."""
        return min(1.0, self.t_compute / self.solo_time)

    @property
    def memory_duty(self) -> float:
        """Fraction of the solo run during which DRAM is being driven."""
        return min(1.0, self.t_memory / self.solo_time)

    @property
    def avg_dram_utilization(self) -> float:
        """Average DRAM bandwidth utilization over the solo run — this
        is what Nsight's 'Memory [%]' reports at kernel granularity."""
        return self.bw_demand * self.memory_duty

    def compute_scale(self, compute_fraction: float) -> float:
        """Amdahl inflation of the compute phase on a partial SM share.

        ``compute_fraction`` is the job's share of full-device compute
        (MIG slices x MPS percentage). Returns the multiplier on
        ``t_compute`` (1.0 at or above the saturation knee, larger
        below it): Amdahl's law applied to the share normalized by the
        knee, so an unscalable kernel with a 1-GPC knee is unharmed by
        a 1-GPC slice but slows once squeezed below it.
        """
        if not 0.0 < compute_fraction <= 1.0 + 1e-9:
            raise ConfigurationError(
                f"compute fraction must be in (0, 1]; got {compute_fraction}"
            )
        f = self.parallel_fraction
        effective = min(compute_fraction / self.saturation_fraction, 1.0)
        return (1.0 - f) + f / effective

    def memory_scale(self, bandwidth_fraction: float) -> float:
        """Inflation of the memory phase given an available bandwidth
        fraction (before interference)."""
        if bandwidth_fraction <= 0:
            raise ConfigurationError("bandwidth fraction must be positive")
        achieved = min(self.bw_demand, bandwidth_fraction)
        return self.bw_demand / achieved

    def execution_time(
        self,
        compute_fraction: float,
        bandwidth_fraction: float,
        interference_pressure: float = 0.0,
        compute_inflation: float = 1.0,
    ) -> float:
        """Execution time under a resource allocation.

        ``interference_pressure`` is the summed bandwidth demand of
        co-runners sharing this job's memory domain (0 when the domain
        is private). It inflates the memory phase by
        ``1 + sensitivity * pressure``. ``compute_inflation`` scales the
        compute phase for SM-level crowding (MPS clients sharing one
        compute instance); 1.0 when the job owns its CI.
        """
        if compute_inflation < 1.0:
            raise ConfigurationError("compute inflation cannot be below 1")
        tc = self.t_compute * self.compute_scale(compute_fraction) * compute_inflation
        tm = (
            self.t_memory
            * self.memory_scale(bandwidth_fraction)
            * (1.0 + self.interference_sensitivity * max(0.0, interference_pressure))
        )
        hi, lo = (tc, tm) if tc >= tm else (tm, tc)
        return hi + (1.0 - self.overlap) * lo

    def progress_rate(
        self,
        compute_fraction: float,
        bandwidth_fraction: float,
        interference_pressure: float = 0.0,
    ) -> float:
        """Fraction of the job's total work completed per second under
        an allocation — the staged co-run simulator integrates this."""
        return 1.0 / self.execution_time(
            compute_fraction, bandwidth_fraction, interference_pressure
        )

    def effective_bw_demand(
        self, compute_fraction: float, bandwidth_fraction: float
    ) -> float:
        """Bandwidth the job actually tries to drive under an allocation.

        A compute-throttled job issues memory traffic more slowly; we
        scale its unconstrained demand by the ratio of its solo duty
        cycle to its slowed-down duty cycle, capped by the granted
        bandwidth share. Used for contention accounting.
        """
        t_solo = self.solo_time
        t_now = self.execution_time(compute_fraction, bandwidth_fraction)
        pace = t_solo / t_now if t_now > 0 else 1.0
        return min(self.bw_demand * max(pace, 1e-6), bandwidth_fraction, self.bw_demand)
