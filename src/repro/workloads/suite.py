"""The benchmark suite of the paper (Table IV), as kernel models.

27 programs: Rodinia kernels, a CUDA stream benchmark, a random-access
benchmark, the NAS-style BT/SP solvers, and Quicksilver (CORAL) variants.
Model parameters are synthetic but principled:

* the **class** each program lands in under the paper's classification
  procedure (:mod:`repro.profiling.classify`) matches Table IV, which
  pins ``parallel_fraction`` (US programs must lose < 10% on a 1-GPC
  private slice) and the compute/memory balance (CI programs need
  ``Compute% / Memory% > 0.8``);
* relative magnitudes follow the programs' published character — stream
  saturates bandwidth, randomaccess is latency-bound and interference
  sensitive, lavaMD is dense compute, Quicksilver is branchy Monte
  Carlo transport with limited intra-GPU scalability, the _A/_B/_C
  suffixes are growing problem classes.

The 9 programs marked unseen (``*`` in Table IV) are excluded from
offline training and only appear at inference time.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.workloads.kernels import KernelModel

__all__ = [
    "BENCHMARKS",
    "TRAINING_SET",
    "UNSEEN_SET",
    "CLASS_CI",
    "CLASS_MI",
    "CLASS_US",
    "PAPER_CLASSES",
    "benchmark",
    "benchmark_names",
    "benchmarks_in_class",
]

CLASS_CI = "CI"
CLASS_MI = "MI"
CLASS_US = "US"


def _k(**kw) -> KernelModel:
    return KernelModel(**kw)


#: All benchmark models, keyed by program name.
BENCHMARKS: dict[str, KernelModel] = {
    m.name: m
    for m in [
        # ----------------------------------------------------------------
        # Compute-intensive (CI): dominated by SM work, scale well,
        # modest bandwidth demand.
        # ----------------------------------------------------------------
        _k(name="lavaMD", t_compute=38.0, t_memory=6.0, parallel_fraction=0.6,
           bw_demand=0.18, interference_sensitivity=0.15,
           grid_size=1 << 15, registers_per_thread=56, waves_per_sm=6.0,
           achieved_warps_per_sm=36.0, l1_hit_rate=0.82, l2_hit_rate=0.7),
        _k(name="huffman", t_compute=9.0, t_memory=2.2, parallel_fraction=0.5,
           bw_demand=0.22, interference_sensitivity=0.2,
           grid_size=1 << 13, registers_per_thread=32, waves_per_sm=3.0,
           achieved_warps_per_sm=28.0, l1_hit_rate=0.55, l2_hit_rate=0.5),
        _k(name="hotspot3D", t_compute=22.0, t_memory=7.0, parallel_fraction=0.65,
           bw_demand=0.30, interference_sensitivity=0.2,
           grid_size=1 << 16, registers_per_thread=40, waves_per_sm=10.0,
           achieved_warps_per_sm=44.0, l1_hit_rate=0.7, l2_hit_rate=0.62),
        _k(name="hotspot", t_compute=13.0, t_memory=4.0, parallel_fraction=0.6,
           bw_demand=0.28, interference_sensitivity=0.2,
           grid_size=1 << 14, registers_per_thread=37, waves_per_sm=7.0,
           achieved_warps_per_sm=40.0, l1_hit_rate=0.72, l2_hit_rate=0.6),
        _k(name="heartwall", t_compute=26.0, t_memory=5.0, parallel_fraction=0.55,
           bw_demand=0.20, interference_sensitivity=0.18,
           grid_size=1 << 12, registers_per_thread=60, waves_per_sm=4.0,
           achieved_warps_per_sm=30.0, l1_hit_rate=0.65, l2_hit_rate=0.55),
        _k(name="bt_solver_A", t_compute=31.0, t_memory=9.0, parallel_fraction=0.65,
           bw_demand=0.33, interference_sensitivity=0.22,
           grid_size=1 << 15, registers_per_thread=64, waves_per_sm=9.0,
           achieved_warps_per_sm=42.0, l1_hit_rate=0.68, l2_hit_rate=0.58),
        _k(name="bt_solver_B", t_compute=42.0, t_memory=12.0, parallel_fraction=0.65,
           bw_demand=0.32, interference_sensitivity=0.22,
           grid_size=1 << 16, registers_per_thread=64, waves_per_sm=11.0,
           achieved_warps_per_sm=44.0, l1_hit_rate=0.68, l2_hit_rate=0.58),
        _k(name="bt_solver_C", t_compute=55.0, t_memory=15.0, parallel_fraction=0.7,
           bw_demand=0.31, interference_sensitivity=0.22,
           grid_size=1 << 17, registers_per_thread=64, waves_per_sm=13.0,
           achieved_warps_per_sm=46.0, l1_hit_rate=0.68, l2_hit_rate=0.58),
        # ----------------------------------------------------------------
        # Memory-intensive (MI): bandwidth-bound, interference sensitive.
        # ----------------------------------------------------------------
        _k(name="lud_A", t_compute=6.0, t_memory=16.0, parallel_fraction=0.45,
           bw_demand=0.62, interference_sensitivity=0.45,
           grid_size=1 << 14, registers_per_thread=28, waves_per_sm=12.0,
           achieved_warps_per_sm=48.0, l1_hit_rate=0.4, l2_hit_rate=0.45),
        _k(name="lud_B", t_compute=8.0, t_memory=22.0, parallel_fraction=0.45,
           bw_demand=0.65, interference_sensitivity=0.45,
           grid_size=1 << 15, registers_per_thread=28, waves_per_sm=14.0,
           achieved_warps_per_sm=50.0, l1_hit_rate=0.4, l2_hit_rate=0.45),
        _k(name="lud_C", t_compute=10.0, t_memory=28.0, parallel_fraction=0.46,
           bw_demand=0.68, interference_sensitivity=0.45,
           grid_size=1 << 16, registers_per_thread=28, waves_per_sm=16.0,
           achieved_warps_per_sm=52.0, l1_hit_rate=0.4, l2_hit_rate=0.45),
        _k(name="sp_solver_A", t_compute=7.0, t_memory=24.0, parallel_fraction=0.5,
           bw_demand=0.72, interference_sensitivity=0.4,
           grid_size=1 << 15, registers_per_thread=44, waves_per_sm=15.0,
           achieved_warps_per_sm=52.0, l1_hit_rate=0.35, l2_hit_rate=0.4),
        _k(name="sp_solver_B", t_compute=9.0, t_memory=30.0, parallel_fraction=0.5,
           bw_demand=0.74, interference_sensitivity=0.4,
           grid_size=1 << 16, registers_per_thread=44, waves_per_sm=17.0,
           achieved_warps_per_sm=54.0, l1_hit_rate=0.35, l2_hit_rate=0.4),
        _k(name="sp_solver_C", t_compute=11.0, t_memory=38.0, parallel_fraction=0.52,
           bw_demand=0.75, interference_sensitivity=0.4,
           grid_size=1 << 17, registers_per_thread=44, waves_per_sm=19.0,
           achieved_warps_per_sm=56.0, l1_hit_rate=0.35, l2_hit_rate=0.4),
        _k(name="randomaccess", t_compute=3.0, t_memory=25.0, parallel_fraction=0.3,
           bw_demand=0.55, interference_sensitivity=0.8,
           grid_size=1 << 16, registers_per_thread=24, waves_per_sm=20.0,
           achieved_warps_per_sm=58.0, l1_hit_rate=0.05, l2_hit_rate=0.1),
        _k(name="cfd", t_compute=10.0, t_memory=20.0, parallel_fraction=0.5,
           bw_demand=0.60, interference_sensitivity=0.5,
           grid_size=1 << 15, registers_per_thread=52, waves_per_sm=12.0,
           achieved_warps_per_sm=46.0, l1_hit_rate=0.45, l2_hit_rate=0.5),
        _k(name="gaussian", t_compute=5.0, t_memory=14.0, parallel_fraction=0.45,
           bw_demand=0.58, interference_sensitivity=0.45,
           grid_size=1 << 13, registers_per_thread=26, waves_per_sm=10.0,
           achieved_warps_per_sm=44.0, l1_hit_rate=0.5, l2_hit_rate=0.48),
        _k(name="stream", t_compute=4.0, t_memory=20.0, parallel_fraction=0.6,
           bw_demand=0.92, interference_sensitivity=0.35,
           grid_size=1 << 18, registers_per_thread=20, waves_per_sm=24.0,
           achieved_warps_per_sm=60.0, l1_hit_rate=0.02, l2_hit_rate=0.05),
        # ----------------------------------------------------------------
        # Unscalable (US): parallelism saturates near one GPC; a 1-GPC
        # private slice loses < 10% vs. the full device.
        # ----------------------------------------------------------------
        _k(name="kmeans", t_compute=9.0, t_memory=0.8, parallel_fraction=0.94,
           bw_demand=0.08, interference_sensitivity=0.25,
           saturation_fraction=0.115,
           grid_size=1 << 10, registers_per_thread=30, waves_per_sm=0.6,
           achieved_warps_per_sm=10.0, l1_hit_rate=0.6, l2_hit_rate=0.55),
        _k(name="dwt2d", t_compute=7.0, t_memory=0.7, parallel_fraction=0.93,
           bw_demand=0.09, interference_sensitivity=0.25,
           saturation_fraction=0.12,
           grid_size=1 << 9, registers_per_thread=34, waves_per_sm=0.5,
           achieved_warps_per_sm=9.0, l1_hit_rate=0.62, l2_hit_rate=0.5),
        _k(name="needle", t_compute=10.0, t_memory=0.9, parallel_fraction=0.95,
           bw_demand=0.07, interference_sensitivity=0.25,
           saturation_fraction=0.11,
           grid_size=1 << 8, registers_per_thread=28, waves_per_sm=0.3,
           achieved_warps_per_sm=6.0, l1_hit_rate=0.66, l2_hit_rate=0.52),
        _k(name="pathfinder", t_compute=7.0, t_memory=0.7, parallel_fraction=0.94,
           bw_demand=0.10, interference_sensitivity=0.25,
           saturation_fraction=0.118,
           grid_size=1 << 10, registers_per_thread=24, waves_per_sm=0.6,
           achieved_warps_per_sm=11.0, l1_hit_rate=0.7, l2_hit_rate=0.6),
        _k(name="backprop", t_compute=6.0, t_memory=0.9, parallel_fraction=0.92,
           bw_demand=0.11, interference_sensitivity=0.28,
           saturation_fraction=0.122,
           grid_size=1 << 11, registers_per_thread=26, waves_per_sm=0.8,
           achieved_warps_per_sm=12.0, l1_hit_rate=0.58, l2_hit_rate=0.5),
        _k(name="qs_Coral_P1", t_compute=13.0, t_memory=1.2, parallel_fraction=0.95,
           bw_demand=0.09, interference_sensitivity=0.22,
           saturation_fraction=0.112,
           grid_size=1 << 12, registers_per_thread=70, waves_per_sm=0.9,
           achieved_warps_per_sm=14.0, l1_hit_rate=0.5, l2_hit_rate=0.42),
        _k(name="qs_Coral_P2", t_compute=15.0, t_memory=1.4, parallel_fraction=0.95,
           bw_demand=0.095, interference_sensitivity=0.22,
           saturation_fraction=0.112,
           grid_size=1 << 12, registers_per_thread=70, waves_per_sm=1.0,
           achieved_warps_per_sm=15.0, l1_hit_rate=0.5, l2_hit_rate=0.42),
        _k(name="qs_NoFission", t_compute=11.0, t_memory=1.0, parallel_fraction=0.96,
           bw_demand=0.085, interference_sensitivity=0.22,
           saturation_fraction=0.108,
           grid_size=1 << 12, registers_per_thread=68, waves_per_sm=0.8,
           achieved_warps_per_sm=13.0, l1_hit_rate=0.5, l2_hit_rate=0.42),
        _k(name="qs_NoCollisions", t_compute=10.0, t_memory=1.0, parallel_fraction=0.94,
           bw_demand=0.08, interference_sensitivity=0.22,
           saturation_fraction=0.114,
           grid_size=1 << 12, registers_per_thread=66, waves_per_sm=0.8,
           achieved_warps_per_sm=13.0, l1_hit_rate=0.52, l2_hit_rate=0.44),
    ]
}

#: Table IV ground truth: what the classification procedure must yield.
PAPER_CLASSES: dict[str, str] = {
    "lavaMD": CLASS_CI, "huffman": CLASS_CI, "hotspot3D": CLASS_CI,
    "hotspot": CLASS_CI, "heartwall": CLASS_CI, "bt_solver_A": CLASS_CI,
    "bt_solver_B": CLASS_CI, "bt_solver_C": CLASS_CI,
    "lud_A": CLASS_MI, "lud_B": CLASS_MI, "lud_C": CLASS_MI,
    "sp_solver_A": CLASS_MI, "sp_solver_B": CLASS_MI, "sp_solver_C": CLASS_MI,
    "randomaccess": CLASS_MI, "cfd": CLASS_MI, "gaussian": CLASS_MI,
    "stream": CLASS_MI,
    "kmeans": CLASS_US, "dwt2d": CLASS_US, "needle": CLASS_US,
    "pathfinder": CLASS_US, "backprop": CLASS_US, "qs_Coral_P1": CLASS_US,
    "qs_Coral_P2": CLASS_US, "qs_NoFission": CLASS_US,
    "qs_NoCollisions": CLASS_US,
}

#: Programs excluded from offline training (starred in Table IV).
UNSEEN_SET: tuple[str, ...] = (
    "huffman", "hotspot", "heartwall",
    "lud_C", "cfd", "gaussian",
    "needle", "backprop", "qs_NoFission",
)

#: The 18 programs the agent trains on.
TRAINING_SET: tuple[str, ...] = tuple(
    name for name in BENCHMARKS if name not in UNSEEN_SET
)


def benchmark(name: str) -> KernelModel:
    """Look up one benchmark model by program name."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; known: {sorted(BENCHMARKS)}"
        ) from None


def benchmark_names() -> list[str]:
    return list(BENCHMARKS)


def benchmarks_in_class(cls: str) -> list[str]:
    """All program names whose Table IV class is ``cls``."""
    if cls not in (CLASS_CI, CLASS_MI, CLASS_US):
        raise ConfigurationError(f"unknown class {cls!r}")
    return [name for name, c in PAPER_CLASSES.items() if c == cls]
