"""Benchmark workload models (Table IV of the paper).

The paper evaluates with the Rodinia suite, a CUDA stream benchmark, a
random-access benchmark, and Quicksilver (CORAL) variants. Since no GPU
exists in this environment, each program is modelled analytically by a
:class:`~repro.workloads.kernels.KernelModel` whose parameters (compute
vs. memory time, Amdahl parallel fraction, bandwidth demand,
interference sensitivity) were chosen so the paper's classification
procedure reproduces Table IV exactly (verified in the test suite).

:mod:`repro.workloads.reference` additionally provides runnable NumPy
mini-kernels for a representative subset of the suite, used by the
example scripts to demonstrate end-to-end profiling.
"""

from repro.workloads.kernels import KernelModel
from repro.workloads.suite import (
    BENCHMARKS,
    TRAINING_SET,
    UNSEEN_SET,
    benchmark,
    benchmark_names,
    benchmarks_in_class,
)
from repro.workloads.jobs import Job, JobQueue
from repro.workloads.generator import (
    MixCategory,
    QueueGenerator,
    paper_queues,
)
from repro.workloads.arrivals import (
    DiurnalBurstArrivals,
    PoissonArrivals,
    TraceArrivals,
)

__all__ = [
    "KernelModel",
    "BENCHMARKS",
    "TRAINING_SET",
    "UNSEEN_SET",
    "benchmark",
    "benchmark_names",
    "benchmarks_in_class",
    "Job",
    "JobQueue",
    "MixCategory",
    "QueueGenerator",
    "paper_queues",
    "DiurnalBurstArrivals",
    "PoissonArrivals",
    "TraceArrivals",
]
