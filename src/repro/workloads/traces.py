"""Job-arrival traces: synthetic generation and SWF-style persistence.

The paper's deployment scenario is an over-crowded HPC queue (Section
VI). This module provides the workload side of that scenario:

* :class:`TraceEvent` / :class:`JobTrace` — a time-stamped sequence of
  job submissions;
* :func:`generate_trace` — synthetic traces with Poisson arrivals,
  per-user program affinities, and a configurable class mix (crowded
  queues are bursty: a Gamma-modulated rate produces realistic load
  waves);
* SWF-like text persistence (one event per line:
  ``job_id submit_time user program``), so traces can be versioned and
  exchanged like Standard Workload Format logs;
* :func:`replay` — turn the events that have arrived by a given time
  into a :class:`~repro.workloads.jobs.JobQueue` for the schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.generator import MixCategory, class_quotas
from repro.workloads.jobs import Job, JobQueue
from repro.workloads.suite import benchmarks_in_class

__all__ = ["TraceEvent", "JobTrace", "generate_trace", "replay"]


@dataclass(frozen=True)
class TraceEvent:
    """One job submission."""

    submit_time: float
    user: str
    benchmark_name: str

    def __post_init__(self) -> None:
        if self.submit_time < 0:
            raise ConfigurationError("submit time must be non-negative")


@dataclass
class JobTrace:
    """A time-ordered sequence of submissions."""

    events: list[TraceEvent] = field(default_factory=list)
    name: str = "trace"

    def __post_init__(self) -> None:
        self.events.sort(key=lambda e: e.submit_time)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def makespan(self) -> float:
        return self.events[-1].submit_time if self.events else 0.0

    def arrived_by(self, t: float) -> list[TraceEvent]:
        return [e for e in self.events if e.submit_time <= t]

    # ------------------------------------------------------------------
    # SWF-like persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        lines = [f"# trace {self.name}: {len(self.events)} jobs"]
        for i, e in enumerate(self.events):
            lines.append(
                f"{i} {e.submit_time:.3f} {e.user} {e.benchmark_name}"
            )
        Path(path).write_text("\n".join(lines) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "JobTrace":
        events = []
        name = Path(path).stem
        for line in Path(path).read_text().splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 4:
                raise ConfigurationError(
                    f"malformed trace line: {line!r} "
                    "(expected: job_id submit_time user program)"
                )
            _, t, user, bench = parts
            events.append(
                TraceEvent(
                    submit_time=float(t), user=user, benchmark_name=bench
                )
            )
        return cls(events=events, name=name)


def generate_trace(
    n_jobs: int,
    mean_interarrival: float = 30.0,
    category: MixCategory = MixCategory.BALANCED,
    n_users: int = 6,
    burstiness: float = 1.0,
    seed: int = 0,
    name: str = "synthetic",
) -> JobTrace:
    """Synthesize a submission trace.

    Arrivals follow a doubly-stochastic Poisson process: the base rate
    ``1/mean_interarrival`` is modulated per arrival by a Gamma factor
    with shape ``1/burstiness`` (burstiness 0 -> regular Poisson,
    larger -> heavier load waves). The program mix follows the
    category's class quotas; users have a stable affinity for a subset
    of programs, which is what makes the profile repository's
    binary-path matching pay off over time.
    """
    if n_jobs <= 0:
        raise ConfigurationError("trace needs at least one job")
    if mean_interarrival <= 0:
        raise ConfigurationError("mean interarrival must be positive")
    if burstiness < 0:
        raise ConfigurationError("burstiness must be non-negative")
    rng = np.random.default_rng(seed)

    # program pool respecting the category quotas, cycled to n_jobs
    quotas = class_quotas(category, max(3, min(n_jobs, 12)))
    pool: list[str] = []
    for cls, count in quotas.items():
        members = benchmarks_in_class(cls)
        pool.extend(
            rng.choice(members, size=count, replace=True).tolist()
        )
    # per-user affinity: each user draws from a personal sub-pool
    users = [f"user{u:02d}" for u in range(n_users)]
    affinity = {
        u: rng.choice(pool, size=max(2, len(pool) // 2), replace=True).tolist()
        for u in users
    }

    events = []
    t = 0.0
    for _ in range(n_jobs):
        if burstiness > 0:
            rate_mod = rng.gamma(1.0 / burstiness, burstiness)
        else:
            rate_mod = 1.0
        t += rng.exponential(mean_interarrival) / max(rate_mod, 1e-3)
        user = users[int(rng.integers(n_users))]
        bench = str(rng.choice(affinity[user]))
        events.append(
            TraceEvent(submit_time=t, user=user, benchmark_name=bench)
        )
    return JobTrace(events=events, name=name)


def replay(trace: JobTrace, until: float | None = None) -> JobQueue:
    """Materialize the jobs submitted by time ``until`` as a queue."""
    events = trace.events if until is None else trace.arrived_by(until)
    jobs = [
        Job(
            job_id=f"{trace.name}-{i:05d}",
            benchmark_name=e.benchmark_name,
            binary_path=f"/apps/bench/{e.benchmark_name}/bin/{e.benchmark_name}",
            user=e.user,
        )
        for i, e in enumerate(events)
    ]
    return JobQueue(jobs=jobs, name=trace.name)
