"""Open-loop arrival processes for the fleet engine.

:class:`~repro.cluster.fleet.FleetEngine` drains *open* workloads: jobs
keep arriving while the fleet runs, and admission control decides which
ones join the queue. This module provides the seeded generators for
that open loop. Each process is an iterable of ``(time, benchmark_name)``
pairs in non-decreasing time order; the engine pulls them lazily (one
in-flight event per source), so a million-arrival process never
materializes a million objects.

* :class:`PoissonArrivals` — the classic memoryless open-loop workload:
  exponential inter-arrival gaps at a fixed rate, benchmarks drawn
  uniformly from a pool.
* :class:`DiurnalBurstArrivals` — a nonhomogeneous Poisson process via
  thinning, with a cosine day/night rate profile and optional
  short-burst modulation; the shape production GPU queues actually
  exhibit (quiet nights, bursty peaks).
* :class:`TraceArrivals` — adapts a recorded
  :class:`~repro.workloads.traces.JobTrace` to the same interface.

All processes are bit-reproducible from their seed: re-iterating a
process replays the identical arrival sequence (each ``__iter__`` call
re-seeds a private generator).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.suite import benchmark
from repro.workloads.traces import JobTrace

__all__ = ["PoissonArrivals", "DiurnalBurstArrivals", "TraceArrivals"]

#: arrivals drawn per RNG round-trip — keeps the lazy pull cheap without
#: materializing the whole process
_CHUNK = 4096


def _validated_pool(pool) -> tuple[str, ...]:
    names = tuple(pool)
    if not names:
        raise ConfigurationError("arrival pool cannot be empty")
    for name in names:
        benchmark(name)  # validate early, not at dispatch time
    return names


class PoissonArrivals:
    """Homogeneous Poisson arrivals: ``rate`` jobs per simulated second.

    ``n_jobs=None`` makes the process endless — pair that with an
    ``until=`` horizon on :meth:`FleetEngine.run`, or it never drains.
    """

    def __init__(
        self,
        rate: float,
        pool,
        n_jobs: int | None,
        seed: int = 0,
        start: float = 0.0,
    ):
        if rate <= 0:
            raise ConfigurationError("arrival rate must be positive")
        if n_jobs is not None and n_jobs < 0:
            raise ConfigurationError("n_jobs cannot be negative")
        self.rate = float(rate)
        self.pool = _validated_pool(pool)
        self.n_jobs = n_jobs
        self.seed = seed
        self.start = float(start)

    def __iter__(self):
        rng = np.random.default_rng(self.seed)
        t = self.start
        produced = 0
        while self.n_jobs is None or produced < self.n_jobs:
            m = _CHUNK if self.n_jobs is None else min(
                _CHUNK, self.n_jobs - produced
            )
            gaps = rng.exponential(1.0 / self.rate, size=m).tolist()
            picks = rng.integers(0, len(self.pool), size=m).tolist()
            for gap, pick in zip(gaps, picks):
                t += gap
                yield t, self.pool[pick]
            produced += m


class DiurnalBurstArrivals:
    """Nonhomogeneous Poisson arrivals with a diurnal rate profile.

    The instantaneous rate follows a raised cosine between
    ``base_rate`` (trough) and ``peak_rate`` (crest) with the given
    ``period``, optionally multiplied by a square-wave burst factor
    (``burst_factor`` for the first ``burst_duty`` fraction of each
    ``burst_period``). Arrivals are drawn by thinning a homogeneous
    process at the envelope rate — the standard exact simulation of a
    nonhomogeneous Poisson process.
    """

    def __init__(
        self,
        base_rate: float,
        peak_rate: float,
        pool,
        n_jobs: int | None,
        period: float = 86_400.0,
        phase: float = 0.0,
        burst_factor: float = 1.0,
        burst_period: float = 3_600.0,
        burst_duty: float = 0.1,
        seed: int = 0,
        start: float = 0.0,
    ):
        if base_rate <= 0 or peak_rate < base_rate:
            raise ConfigurationError(
                "need 0 < base_rate <= peak_rate for a diurnal profile"
            )
        if period <= 0 or burst_period <= 0:
            raise ConfigurationError("periods must be positive")
        if burst_factor < 1.0 or not 0.0 < burst_duty <= 1.0:
            raise ConfigurationError(
                "need burst_factor >= 1 and 0 < burst_duty <= 1"
            )
        if n_jobs is not None and n_jobs < 0:
            raise ConfigurationError("n_jobs cannot be negative")
        self.base_rate = float(base_rate)
        self.peak_rate = float(peak_rate)
        self.pool = _validated_pool(pool)
        self.n_jobs = n_jobs
        self.period = float(period)
        self.phase = float(phase)
        self.burst_factor = float(burst_factor)
        self.burst_period = float(burst_period)
        self.burst_duty = float(burst_duty)
        self.seed = seed
        self.start = float(start)

    def rate_at(self, t: float) -> float:
        """The instantaneous arrival rate at simulated time ``t``."""
        swing = 0.5 * (self.peak_rate - self.base_rate)
        diurnal = self.base_rate + swing * (
            1.0 - math.cos(2.0 * math.pi * (t - self.phase) / self.period)
        )
        in_burst = ((t - self.phase) % self.burst_period) < (
            self.burst_duty * self.burst_period
        )
        return diurnal * (self.burst_factor if in_burst else 1.0)

    @property
    def envelope_rate(self) -> float:
        return self.peak_rate * self.burst_factor

    def __iter__(self):
        rng = np.random.default_rng(self.seed)
        envelope = self.envelope_rate
        t = self.start
        produced = 0
        while self.n_jobs is None or produced < self.n_jobs:
            gaps = rng.exponential(1.0 / envelope, size=_CHUNK).tolist()
            accepts = rng.random(size=_CHUNK).tolist()
            picks = rng.integers(0, len(self.pool), size=_CHUNK).tolist()
            for gap, u, pick in zip(gaps, accepts, picks):
                t += gap
                if u * envelope >= self.rate_at(t):
                    continue  # thinned candidate
                yield t, self.pool[pick]
                produced += 1
                if self.n_jobs is not None and produced >= self.n_jobs:
                    return


class TraceArrivals:
    """A recorded :class:`JobTrace` as an arrival process."""

    def __init__(self, trace: JobTrace):
        self.trace = trace

    def __iter__(self):
        for event in self.trace:
            yield event.submit_time, event.benchmark_name
