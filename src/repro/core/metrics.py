"""Evaluation metrics (paper Section V-B).

* **Relative throughput** (Fig. 8): ``SoloRunTime / CoRunTime`` of the
  whole window — solo meaning time-shared execution with the full
  device.
* **AppSlowdown** (Fig. 11): per job,
  ``CoRunAppTime(J) / SoloRunAppTime(J)``; a job's co-run time is its
  own completion time inside its group.
* **Fairness** (Fig. 12, after Mutlu & Moscibroda 2008):
  ``min AppSlowdown / max AppSlowdown`` over the queue — 1.0 when every
  job suffers equally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.core.problem import Schedule

__all__ = ["ScheduleMetrics", "evaluate_schedule"]


@dataclass(frozen=True)
class ScheduleMetrics:
    """All Section V-B metrics for one schedule of one window."""

    method: str
    total_time: float
    total_solo_time: float
    throughput_gain: float
    app_slowdowns: tuple[float, ...]
    avg_slowdown: float
    fairness: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.method}: throughput x{self.throughput_gain:.3f}, "
            f"avg slowdown {self.avg_slowdown:.3f}, "
            f"fairness {self.fairness:.3f}"
        )


def evaluate_schedule(schedule: Schedule) -> ScheduleMetrics:
    """Compute throughput, slowdown, and fairness for a schedule."""
    if not schedule.groups:
        raise SchedulingError("cannot evaluate an empty schedule")
    slowdowns: list[float] = []
    for group in schedule.groups:
        slowdowns.extend(group.result.slowdowns)
    return ScheduleMetrics(
        method=schedule.method,
        total_time=schedule.total_time,
        total_solo_time=schedule.total_solo_time,
        throughput_gain=schedule.throughput_gain,
        app_slowdowns=tuple(slowdowns),
        avg_slowdown=sum(slowdowns) / len(slowdowns),
        fairness=min(slowdowns) / max(slowdowns),
    )
