"""Compared scheduling policies (paper Section V-A4).

* :class:`TimeSharingScheduler` — the baseline: every job runs alone
  with the full device.
* :class:`MigOnlyScheduler` — concurrency-2 MIG co-scheduling (after
  Arima 2022 / Saba 2022): jobs are paired optimally (minimum-weight
  perfect matching over exhaustively evaluated pair costs), each pair
  on the best of the 3+4 shared / private MIG splits; pairs that lose
  to time sharing fall back to solo runs.
* :class:`MpsOnlyScheduler` — MPS-only with concurrency up to
  ``C_max``: exact set-partition dynamic program over the window, each
  group costed by exhaustive sweep of the decile MPS splits and slot
  assignments.
* :class:`MigMpsDefaultScheduler` — hierarchical but *static*: the MIG
  layout is fixed (3+4 private, the layout maximizing average Q1–Q12
  throughput), MPS runs in default mode (clients time-share their CI
  with equal effective shares); group selection is exhaustive.

All searches rank candidates with the profile-based
:class:`~repro.core.predictor.AnalyticPredictor` — a scheduler cannot
execute every candidate grouping to measure it (the full space is ~10^5
runs per window), so selection quality is bounded by what solo profiles
predict. The *chosen* groups are then actually executed; a group whose
measured co-run loses to time sharing is split back into solo runs
(constraint 1 of the problem definition). Predicted costs depend only
on the benchmark multiset, so they are memoized per scheduler instance.
"""

from __future__ import annotations

import itertools

import networkx as nx

from repro.errors import SchedulingError
from repro.core.assignment import iter_slot_assignments
from repro.core.predictor import AnalyticPredictor
from repro.core.problem import Schedule, ScheduledGroup
from repro.gpu.arch import A100_40GB, GpuSpec
from repro.gpu.partition import CiNode, GiNode, MpsShare, PartitionTree
from repro.gpu.variants import (
    PartitionVariant,
    enumerate_mig_only,
    enumerate_mps_only,
)
from repro.perfmodel.cache import CoRunCache
from repro.profiling.repository import ProfileRepository
from repro.workloads.jobs import Job

__all__ = [
    "TimeSharingScheduler",
    "MigOnlyScheduler",
    "MpsOnlyScheduler",
    "MigMpsDefaultScheduler",
]


class _PredictiveScheduler:
    """Shared machinery: predictor-ranked group search + real execution."""

    name = "predictive"

    #: Bound on the per-scheduler predicted-cost memo. Window searches
    #: touch at most ``sum(C(W, c))`` groups (~800 at W=12, C_max=4);
    #: the bound only matters for long-lived schedulers fed unbounded
    #: job diversity.
    COST_CACHE_SIZE = 16384

    def __init__(self, repository: ProfileRepository):
        self.repository = repository
        self.predictor = AnalyticPredictor()
        # names tuple -> (cost, variant, binding), LRU-bounded
        self._cost_cache = CoRunCache(maxsize=self.COST_CACHE_SIZE)

    # -- candidate evaluation -------------------------------------------
    def _variants_for(self, c: int) -> list[PartitionVariant]:  # pragma: no cover
        raise NotImplementedError

    def _predicted_best(
        self, jobs: list[Job]
    ) -> tuple[float, PartitionVariant | None, tuple[int, ...]]:
        """Best predicted (cost, variant, binding) for a group, compared
        against predicted time sharing. ``variant is None`` means solo
        runs are predicted to win."""
        names = tuple(j.benchmark_name for j in jobs)
        cached = self._cost_cache.get(names)
        if cached is not None:
            return cached
        profiles = [self.repository.lookup(j) for j in jobs]
        solo_sum = sum(p.solo_time for p in profiles)
        best: tuple[float, PartitionVariant | None, tuple[int, ...]] = (
            solo_sum,
            None,
            tuple(range(len(jobs))),
        )
        if len(jobs) > 1:
            for variant in self._variants_for(len(jobs)):
                for perm in iter_slot_assignments(variant.tree, len(jobs)):
                    pred = self.predictor.predict_group(
                        [profiles[i] for i in perm], variant.tree
                    )
                    if pred.makespan < best[0]:
                        best = (pred.makespan, variant, perm)
        self._cost_cache.put(names, best)
        return best

    def _execute_group(self, jobs: list[Job]) -> list[ScheduledGroup]:
        """Run the predicted-best configuration for ``jobs``; split into
        solo runs when prediction said solo, or when the measured co-run
        violates the time-sharing constraint."""
        _, variant, perm = self._predicted_best(jobs)
        if variant is None:
            return [ScheduledGroup.run_solo(j) for j in jobs]
        group = ScheduledGroup.run([jobs[i] for i in perm], variant.tree)
        if not group.result.beats_time_sharing():
            return [ScheduledGroup.run_solo(j) for j in jobs]
        return [group]


class TimeSharingScheduler:
    """Jobs run one by one with exclusive use of the whole GPU."""

    name = "Time Sharing"

    def schedule(self, window: list[Job]) -> Schedule:
        if not window:
            raise SchedulingError("empty window")
        sched = Schedule(method=self.name)
        for job in window:
            sched.append(ScheduledGroup.run_solo(job))
        return sched


class MigOnlyScheduler(_PredictiveScheduler):
    """MIG-only co-scheduling at concurrency 2 with optimal pairing."""

    name = "MIG Only (C=2)"

    def __init__(self, repository: ProfileRepository, spec: GpuSpec = A100_40GB):
        super().__init__(repository)
        self.spec = spec
        self._variants = enumerate_mig_only(spec, 2)

    def _variants_for(self, c: int) -> list[PartitionVariant]:
        if c != 2:
            raise SchedulingError("MIG Only co-schedules pairs")
        return self._variants

    def schedule(self, window: list[Job]) -> Schedule:
        if not window:
            raise SchedulingError("empty window")
        n = len(window)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        for i, j in itertools.combinations(range(n), 2):
            cost, _, _ = self._predicted_best([window[i], window[j]])
            g.add_edge(i, j, weight=cost)
        matching = nx.min_weight_matching(g)
        sched = Schedule(method=self.name)
        paired: set[int] = set()
        for i, j in matching:
            paired.update((i, j))
            for grp in self._execute_group([window[i], window[j]]):
                sched.append(grp)
        for i in range(n):
            if i not in paired:
                sched.append(ScheduledGroup.run_solo(window[i]))
        return sched


class _SetPartitionScheduler(_PredictiveScheduler):
    """Exact set-partition DP over predicted group costs.

    Minimizes the predicted total time over all partitions of the
    window into groups of size 1..C_max, then executes the chosen
    groups.
    """

    def __init__(self, repository: ProfileRepository, c_max: int):
        super().__init__(repository)
        if c_max < 1:
            raise SchedulingError("C_max must be at least 1")
        self.c_max = c_max

    def schedule(self, window: list[Job]) -> Schedule:
        n = len(window)
        if n == 0:
            raise SchedulingError("empty window")
        full = (1 << n) - 1
        best_cost = [float("inf")] * (full + 1)
        best_split = [0] * (full + 1)
        best_cost[0] = 0.0
        for s in range(1, full + 1):
            low = s & -s  # anchor: lowest remaining job is in this group
            rest = s ^ low
            sub = rest
            while True:
                group = low | sub
                if bin(group).count("1") <= self.c_max:
                    jobs = [window[i] for i in range(n) if group >> i & 1]
                    cost, _, _ = self._predicted_best(jobs)
                    total = cost + best_cost[s ^ group]
                    if total < best_cost[s]:
                        best_cost[s] = total
                        best_split[s] = group
                if sub == 0:
                    break
                sub = (sub - 1) & rest
        sched = Schedule(method=self.name)
        s = full
        while s:
            group_mask = best_split[s]
            jobs = [window[i] for i in range(n) if group_mask >> i & 1]
            if len(jobs) == 1:
                sched.append(ScheduledGroup.run_solo(jobs[0]))
            else:
                for grp in self._execute_group(jobs):
                    sched.append(grp)
            s ^= group_mask
        return sched


class MpsOnlyScheduler(_SetPartitionScheduler):
    """MPS-only co-scheduling, exhaustive over splits and groupings."""

    name = "MPS Only"

    def __init__(self, repository: ProfileRepository, c_max: int = 4):
        super().__init__(repository, c_max)
        self._variants = {
            c: enumerate_mps_only(c) for c in range(2, c_max + 1)
        }

    def _variants_for(self, c: int) -> list[PartitionVariant]:
        return self._variants[c]


class MigMpsDefaultScheduler(_SetPartitionScheduler):
    """Fixed 3+4 private MIG layout with default-mode MPS inside.

    In MPS default mode ``k`` clients time-share their CI, so each sees
    an effective ``1/k`` compute share. Groups of size C are split
    across the two GIs in every balanced way (the layout itself never
    changes — that is the point of this baseline).
    """

    name = "MIG+MPS Default"

    def __init__(
        self,
        repository: ProfileRepository,
        c_max: int = 4,
        spec: GpuSpec = A100_40GB,
    ):
        super().__init__(repository, c_max)
        self.spec = spec
        self._variants = {
            c: self._default_variants(c) for c in range(2, c_max + 1)
        }

    def _gi(self, gpcs: int, k: int) -> GiNode:
        mem = self.spec.memory_slices_for_gpcs(gpcs) / self.spec.mig_memory_slices
        shares = tuple(MpsShare(1.0 / k) for _ in range(k))
        return GiNode(mem, (CiNode(gpcs / self.spec.n_gpcs, shares),))

    def _default_variants(self, c: int) -> list[PartitionVariant]:
        """All splits of ``c`` jobs across the fixed 3+4 GIs with
        default-mode (equal) MPS shares."""
        variants = []
        for left in range(0, c + 1):
            right = c - left
            gis = []
            if left:
                gis.append(self._gi(3, left))
            if right:
                gis.append(self._gi(4, right))
            tree = PartitionTree(gis=tuple(gis), mig_enabled=True)
            label = f"default-3+4:{left}|{right}"
            variants.append(PartitionVariant(tree, "hierarchical", c, label))
        return variants

    def _variants_for(self, c: int) -> list[PartitionVariant]:
        return self._variants[c]
