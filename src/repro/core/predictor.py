"""Profile-based analytic performance predictor.

Schedulers other than the RL agent need a way to *rank* candidate
groupings without running them — a real system cannot execute every
set partition of the window to pick the best one (the paper itself
bounds that search at ~10^5 runs for W = 12). This predictor estimates
a group's co-run behaviour purely from the Table III profiles:

* compute/memory phase split from the SM-active duty cycle and the
  DRAM utilization counters,
* an Amdahl scalability estimate inverted from the 1-GPC degradation
  measurement,
* demand-proportional bandwidth sharing with a *uniform* interference
  sensitivity.

It is deliberately imperfect in the same ways real analytic models are:
it knows nothing of parallelism saturation knees, per-program
interference sensitivity, client-crowding pressure, or MPS front-end
contention — those are hidden hardware behaviours that only show up in
measured co-runs. The RL agent, trained on measured rewards, implicitly
learns them; the exhaustive baselines that rank by this predictor
cannot. This asymmetry is the mechanism behind the paper's headline
result (Fig. 8: RL beats the exhaustively-searched baselines).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProfileError
from repro.gpu.partition import PartitionTree
from repro.profiling.profiler import JobProfile

__all__ = ["PredictedGroup", "AnalyticPredictor"]

#: Uniform interference sensitivity assumed by the predictor (the true
#: per-program values are not observable from solo profiles).
ASSUMED_SENSITIVITY = 0.45


@dataclass(frozen=True)
class PredictedGroup:
    """Predicted outcome of co-running one group under one partition."""

    job_times: tuple[float, ...]
    makespan: float
    solo_sum: float

    @property
    def predicted_gain(self) -> float:
        return self.solo_sum / self.makespan


class AnalyticPredictor:
    """Estimates co-run times from profiles alone."""

    def __init__(self, sensitivity: float = ASSUMED_SENSITIVITY):
        if sensitivity < 0:
            raise ProfileError("sensitivity must be non-negative")
        self.sensitivity = sensitivity

    # ------------------------------------------------------------------
    # per-profile derived quantities
    # ------------------------------------------------------------------
    @staticmethod
    def phase_split(profile: JobProfile) -> tuple[float, float]:
        """Estimated (compute seconds, memory seconds) of the solo run.

        The SM-active duty cycle comes from the cycle counters; the
        memory duty cycle from average DRAM utilization over peak
        demand.
        """
        c = profile.counters
        if c.elapsed_cycles <= 0:
            raise ProfileError("profile has no cycle counts")
        compute_duty = min(1.0, c.sm_active_cycles / c.elapsed_cycles)
        # memory_pct = demand * duty  ->  duty = memory_pct / demand
        demand = AnalyticPredictor.bw_demand(profile)
        mem_duty = min(1.0, (c.memory_pct / 100.0) / max(demand, 1e-9))
        return profile.solo_time * compute_duty, profile.solo_time * mem_duty

    @staticmethod
    def bw_demand(profile: JobProfile) -> float:
        """Peak bandwidth demand as a fraction of device peak.

        Uses the DRAM throughput counter against the A100 peak embedded
        in the profile's own normalization; falls back to Memory% when
        the counter is degenerate.
        """
        from repro.gpu.arch import A100_40GB

        d = profile.counters.dram_throughput / A100_40GB.mem_bandwidth
        if d <= 0:
            d = profile.counters.memory_pct / 100.0
        return min(1.0, d)

    @staticmethod
    def scalability(profile: JobProfile) -> float:
        """Amdahl parallel fraction inverted from the 1-GPC run.

        ``one_gpc/solo = (1 - f) + 8 f`` under a pure Amdahl model, so
        ``f = (slowdown - 1) / 7``. Saturation knees make this a biased
        estimate for unscalable programs — deliberately so (see module
        docstring).
        """
        slowdown = profile.one_gpc_time / max(profile.solo_time, 1e-9)
        return max(0.0, min(0.99, (slowdown - 1.0) / 7.0))

    # ------------------------------------------------------------------
    # group prediction
    # ------------------------------------------------------------------
    def predict_job(
        self,
        profile: JobProfile,
        compute_fraction: float,
        available_bw: float,
        pressure: float,
    ) -> float:
        """Predicted run time under an allocation with co-runner pressure."""
        t_comp, t_mem = self.phase_split(profile)
        f = self.scalability(profile)
        comp_scale = (1.0 - f) + f / max(compute_fraction, 1e-6)
        demand = self.bw_demand(profile)
        mem_scale = demand / max(min(demand, available_bw), 1e-9)
        mem_scale *= 1.0 + self.sensitivity * max(0.0, pressure)
        return max(t_comp * comp_scale, t_mem * mem_scale) + 0.2 * min(
            t_comp * comp_scale, t_mem * mem_scale
        )

    def predict_group(
        self, profiles: list[JobProfile], tree: PartitionTree
    ) -> PredictedGroup:
        """Predicted per-job times and makespan for a full group.

        Jobs bind to ``tree.slots()`` in order, as in the simulator.
        """
        slots = tree.slots()
        if len(profiles) != len(slots):
            raise ProfileError(
                f"group of {len(profiles)} profiles cannot fill "
                f"{len(slots)} slots"
            )
        times = [0.0] * len(profiles)
        for domain in tree.mem_domains():
            alpha = slots[domain[0]].mem_fraction
            demands = [
                min(self.bw_demand(profiles[i]), alpha) for i in domain
            ]
            total = sum(demands)
            for i, d in zip(domain, demands):
                avail = alpha if total <= alpha else alpha * d / max(total, 1e-9)
                pressure = total - d
                times[i] = self.predict_job(
                    profiles[i],
                    slots[i].compute_fraction,
                    avail,
                    pressure,
                )
        return PredictedGroup(
            job_times=tuple(times),
            makespan=max(times),
            solo_sum=sum(p.solo_time for p in profiles),
        )
