"""Offline training (paper Fig. 7, left half).

The trainer owns the full offline pipeline:

1. profile every training-set benchmark on the simulated device
   (populating the Job Profiles Repository),
2. generate the 20 random training queues (all three classes present,
   unseen programs excluded — Section V-A2),
3. run dueling-double-DQN episodes against the co-scheduling
   environment until the requested episode budget is spent, with the
   epsilon schedule decaying from 1.0 to the 0.01 floor.

The result carries the trained agent plus per-episode diagnostics
(return, throughput gain, TD loss) so convergence can be inspected and
regression-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TrainingError
from repro.core.actions import ActionCatalog
from repro.core.env import CoSchedulingEnv
from repro.core.features import FeatureExtractor
from repro.core.rewards import RewardConfig
from repro.gpu.arch import A100_40GB, GpuSpec
from repro.gpu.device import SimulatedGpu
from repro.profiling.profiler import NsightProfiler
from repro.profiling.repository import ProfileRepository
from repro.rl.dqn import DQNConfig, DuelingDoubleDQNAgent
from repro.workloads.generator import QueueGenerator
from repro.workloads.jobs import Job
from repro.workloads.suite import TRAINING_SET

__all__ = ["TrainingResult", "OfflineTrainer"]


@dataclass
class TrainingResult:
    """Trained agent + per-episode diagnostics."""

    agent: DuelingDoubleDQNAgent
    repository: ProfileRepository
    episode_returns: list[float] = field(default_factory=list)
    episode_throughputs: list[float] = field(default_factory=list)

    @property
    def final_throughput(self) -> float:
        """Mean throughput gain over the last 10% of episodes."""
        tail = max(1, len(self.episode_throughputs) // 10)
        return float(np.mean(self.episode_throughputs[-tail:]))


class OfflineTrainer:
    """End-to-end offline phase on a simulated device."""

    def __init__(
        self,
        spec: GpuSpec = A100_40GB,
        window_size: int = 12,
        c_max: int = 4,
        n_training_queues: int = 20,
        seed: int = 0,
        reward_config: RewardConfig | None = None,
        profile_noise: float = 0.01,
        dqn_overrides: dict | None = None,
        binding: str = "auto",
    ):
        if window_size < 2:
            raise TrainingError("training needs windows of at least 2 jobs")
        self.spec = spec
        self.window_size = window_size
        self.c_max = c_max
        self.n_training_queues = n_training_queues
        self.seed = seed
        self.reward_config = reward_config or RewardConfig()
        self.profile_noise = profile_noise
        self.binding = binding
        self.catalog = ActionCatalog(spec, c_max=c_max)
        extractor = FeatureExtractor(window_size)
        cfg_kwargs = {
            "n_inputs": extractor.n_inputs,
            "n_actions": self.catalog.n_actions,
            "seed": seed,
        }
        cfg_kwargs.update(dqn_overrides or {})
        self.dqn_config = DQNConfig(**cfg_kwargs)

    # ------------------------------------------------------------------
    def build_repository(self) -> ProfileRepository:
        """Profile all training-set programs (the offline profiling box
        of Fig. 7). Unseen programs are profiled online when first
        submitted, not here."""
        device = SimulatedGpu(self.spec)
        profiler = NsightProfiler(device, noise=self.profile_noise)
        repo = ProfileRepository()
        for name in TRAINING_SET:
            job = Job.submit(name)
            repo.store(job, profiler.profile(job))
        return repo

    def build_env(self, repository: ProfileRepository) -> CoSchedulingEnv:
        gen = QueueGenerator(seed=self.seed, training_only=True)
        queues = gen.training_queues(
            n=self.n_training_queues, w=self.window_size
        )
        windows = [q.window(self.window_size) for q in queues]
        return CoSchedulingEnv(
            windows=windows,
            repository=repository,
            catalog=self.catalog,
            window_size=self.window_size,
            reward_config=self.reward_config,
            seed=self.seed,
            binding=self.binding,
        )

    # ------------------------------------------------------------------
    def train(
        self,
        episodes: int = 400,
        repository: ProfileRepository | None = None,
    ) -> TrainingResult:
        """Run the offline training loop."""
        if episodes <= 0:
            raise TrainingError("episode budget must be positive")
        repo = repository or self.build_repository()
        env = self.build_env(repo)
        agent = DuelingDoubleDQNAgent(self.dqn_config)
        result = TrainingResult(agent=agent, repository=repo)

        for _ in range(episodes):
            obs, info = env.reset()
            done = False
            ep_return = 0.0
            while not done:
                mask = info["action_mask"]
                action = agent.act(obs, mask)
                next_obs, reward, terminated, truncated, info = env.step(action)
                done = terminated or truncated
                agent.observe(
                    obs, action, reward, next_obs, done, info["action_mask"]
                )
                obs = next_obs
                ep_return += reward
            result.episode_returns.append(ep_return)
            result.episode_throughputs.append(
                info["schedule"].throughput_gain
            )
        return result
