"""Offline training (paper Fig. 7, left half).

The trainer owns the full offline pipeline:

1. profile every training-set benchmark on the simulated device
   (populating the Job Profiles Repository),
2. generate the 20 random training queues (all three classes present,
   unseen programs excluded — Section V-A2),
3. run dueling-double-DQN episodes against the co-scheduling
   environment until the requested episode budget is spent, with the
   epsilon schedule decaying from 1.0 to the 0.01 floor.

The result carries the trained agent plus per-episode diagnostics
(return, throughput gain, TD loss) so convergence can be inspected and
regression-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TrainingError
from repro.core.actions import ActionCatalog
from repro.core.env import CoSchedulingEnv
from repro.core.features import FeatureExtractor
from repro.core.rewards import RewardConfig
from repro.core.vector_env import VectorCoSchedulingEnv
from repro.gpu.arch import A100_40GB, GpuSpec
from repro.gpu.device import SimulatedGpu
from repro.perfmodel.cache import CacheStats, CoRunCache, corun_cache
from repro.profiling.profiler import NsightProfiler
from repro.profiling.repository import ProfileRepository
from repro.rl.dqn import DQNConfig, DuelingDoubleDQNAgent
from repro.telemetry.facade import NULL_TELEMETRY, Telemetry
from repro.workloads.generator import QueueGenerator
from repro.workloads.jobs import Job
from repro.workloads.suite import TRAINING_SET

__all__ = ["TrainingResult", "OfflineTrainer"]


@dataclass
class TrainingResult:
    """Trained agent + per-episode diagnostics.

    ``cache_stats`` reports the fast path's effectiveness over this
    training run: ``"corun"`` is the process-wide
    :class:`~repro.perfmodel.cache.CoRunCache` delta (hits / misses /
    evictions attributable to the run), ``"decisions"`` the delta of the
    trainer-owned step-decision memo shared by every environment the
    trainer builds.
    """

    agent: DuelingDoubleDQNAgent
    repository: ProfileRepository
    episode_returns: list[float] = field(default_factory=list)
    episode_throughputs: list[float] = field(default_factory=list)
    cache_stats: dict[str, CacheStats] = field(default_factory=dict)

    @property
    def final_throughput(self) -> float:
        """Mean throughput gain over the last 10% of episodes."""
        tail = max(1, len(self.episode_throughputs) // 10)
        return float(np.mean(self.episode_throughputs[-tail:]))


class OfflineTrainer:
    """End-to-end offline phase on a simulated device."""

    def __init__(
        self,
        spec: GpuSpec = A100_40GB,
        window_size: int = 12,
        c_max: int = 4,
        n_training_queues: int = 20,
        seed: int = 0,
        reward_config: RewardConfig | None = None,
        profile_noise: float = 0.01,
        dqn_overrides: dict | None = None,
        binding: str = "auto",
        telemetry: Telemetry = NULL_TELEMETRY,
        recorder=None,
    ):
        if window_size < 2:
            raise TrainingError("training needs windows of at least 2 jobs")
        self.spec = spec
        self.window_size = window_size
        self.c_max = c_max
        self.n_training_queues = n_training_queues
        self.seed = seed
        self.reward_config = reward_config or RewardConfig()
        self.profile_noise = profile_noise
        self.binding = binding
        self.telemetry = telemetry
        self.recorder = recorder
        self._losses_recorded = 0
        self.catalog = ActionCatalog(spec, c_max=c_max)
        extractor = FeatureExtractor(window_size)
        cfg_kwargs = {
            "n_inputs": extractor.n_inputs,
            "n_actions": self.catalog.n_actions,
            "seed": seed,
        }
        cfg_kwargs.update(dqn_overrides or {})
        self.dqn_config = DQNConfig(**cfg_kwargs)
        self._windows: list[list[Job]] | None = None
        # Window contexts are pure functions of (window, repository);
        # sharing them across the environments built over the trainer's
        # lifetime avoids rebuilding the per-window tables every call.
        self._ctx_repo: ProfileRepository | None = None
        self._ctx_cache: dict = {}
        # One step-decision memo shared by every environment the trainer
        # builds: keys are content signatures (not queue positions), so
        # later train() calls and vectorized sub-envs all reuse earlier
        # decisions instead of each warming a private memo from zero.
        self._decision_memo = CoRunCache(maxsize=32768)

    # ------------------------------------------------------------------
    def build_repository(self) -> ProfileRepository:
        """Profile all training-set programs (the offline profiling box
        of Fig. 7). Unseen programs are profiled online when first
        submitted, not here."""
        device = SimulatedGpu(self.spec)
        profiler = NsightProfiler(device, noise=self.profile_noise)
        repo = ProfileRepository()
        for name in TRAINING_SET:
            job = Job.submit(name)
            repo.store(job, profiler.profile(job))
        return repo

    def build_env(
        self, repository: ProfileRepository, env_seed: int | None = None
    ) -> CoSchedulingEnv:
        """One training environment over the fixed window set.

        ``env_seed`` decorrelates the window-draw streams of the
        sub-environments in a vectorized rollout; the window *set*
        itself is always generated from the trainer's seed.
        """
        windows = self._windows
        if windows is None:
            # The window set is a pure function of the trainer's
            # configuration — generate it once, not per train() call.
            gen = QueueGenerator(seed=self.seed, training_only=True)
            queues = gen.training_queues(
                n=self.n_training_queues, w=self.window_size
            )
            windows = [q.window(self.window_size) for q in queues]
            self._windows = windows
        if self._ctx_repo is not repository:
            self._ctx_repo, self._ctx_cache = repository, {}
        return CoSchedulingEnv(
            windows=windows,
            repository=repository,
            catalog=self.catalog,
            window_size=self.window_size,
            reward_config=self.reward_config,
            seed=self.seed if env_seed is None else env_seed,
            binding=self.binding,
            window_context_cache=self._ctx_cache,
            decision_memo=self._decision_memo,
        )

    # ------------------------------------------------------------------
    def train(
        self,
        episodes: int = 400,
        repository: ProfileRepository | None = None,
    ) -> TrainingResult:
        """Run the offline training loop."""
        if episodes <= 0:
            raise TrainingError("episode budget must be positive")
        repo = repository or self.build_repository()
        env = self.build_env(repo)
        agent = DuelingDoubleDQNAgent(self.dqn_config)
        result = TrainingResult(agent=agent, repository=repo)
        corun_before = corun_cache().stats
        decisions_before = self._decision_memo.stats
        self._losses_recorded = 0

        for ep_idx in range(episodes):
            obs, info = env.reset()
            capture = None
            if self.recorder is not None:
                from repro.insight.records import WindowCapture

                capture = WindowCapture(self.recorder, "train", agent, env)
            done = False
            ep_return = 0.0
            while not done:
                mask = info["action_mask"]
                if capture is not None:
                    epsilon = agent.epsilon  # before act() advances it
                action = agent.act(obs, mask)
                if capture is not None:
                    capture.stage(obs, mask, action, epsilon=epsilon)
                next_obs, reward, terminated, truncated, info = env.step(action)
                if capture is not None:
                    capture.set_reward(reward)
                done = terminated or truncated
                agent.observe(
                    obs, action, reward, next_obs, done, info["action_mask"]
                )
                obs = next_obs
                ep_return += reward
            if capture is not None:
                terminal = info["schedule"]
                capture.finalize(
                    terminal,
                    terminal,
                    full_window=env.window_jobs,
                    method=terminal.method,
                    c_max=self.c_max,
                    window_size=self.window_size,
                )
            result.episode_returns.append(ep_return)
            result.episode_throughputs.append(
                info["schedule"].throughput_gain
            )
            if self.telemetry.enabled:
                self._record_episode(
                    agent, ep_return, info["schedule"].throughput_gain,
                    obs, ep_idx,
                )
        result.cache_stats = {
            "corun": corun_cache().stats.delta(corun_before),
            "decisions": self._decision_memo.stats.delta(decisions_before),
        }
        if self.telemetry.enabled:
            self._record_cache_stats(result.cache_stats)
        return result

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    _GAIN_BUCKETS = (0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 1.75, 2.0, 3.0)
    _LOSS_BUCKETS = (1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 25.0, 100.0)

    _Q_BUCKETS = (-10.0, -5.0, -1.0, 0.0, 1.0, 2.5, 5.0, 10.0, 25.0, 100.0)

    def _record_episode(
        self,
        agent: DuelingDoubleDQNAgent,
        ep_return: float,
        gain: float,
        final_obs: np.ndarray,
        episode_index: int,
    ) -> None:
        tel = self.telemetry
        tel.observe("train_episode_return", ep_return, buckets=self._GAIN_BUCKETS)
        tel.observe("train_episode_throughput", gain, buckets=self._GAIN_BUCKETS)
        tel.gauge("train_epsilon", agent.epsilon)
        n = self._losses_recorded
        losses = agent.loss_history[n:]
        for loss in losses:
            tel.observe("train_loss", loss, buckets=self._LOSS_BUCKETS)
        self._losses_recorded = len(agent.loss_history)
        # per-episode event on the "train" track: the stream the insight
        # drift/blowup detectors replay (episode index as the timestamp)
        q_max = float(np.max(agent.q_values(final_obs)))
        tel.observe("train_q_max", q_max, buckets=self._Q_BUCKETS)
        tel.event(
            "episode",
            "train",
            float(episode_index),
            category="train",
            q_max=q_max,
            loss=float(np.mean(losses)) if losses else 0.0,
            ep_return=ep_return,
            gain=gain,
            epsilon=agent.epsilon,
        )

    def _record_cache_stats(self, cache_stats: dict) -> None:
        for name, stats in cache_stats.items():
            self.telemetry.gauge(
                "corun_cache_hit_rate"
                if name == "corun"
                else "decision_cache_hit_rate",
                stats.hit_rate,
            )

    def train_vectorized(
        self,
        episodes: int = 400,
        n_envs: int = 4,
        repository: ProfileRepository | None = None,
    ) -> TrainingResult:
        """Offline training over ``n_envs`` synchronous environments.

        Each iteration advances every environment one step with a single
        batched network forward (:meth:`act_many`), so the NN cost per
        decision drops by ``n_envs``x. The learning setup is unchanged —
        same replay, same update-to-data ratio — but rollouts interleave
        across environments, so the trajectory (and RNG consumption)
        differs from the serial :meth:`train`; use the serial path when
        bitwise reproducibility against it matters.
        """
        if episodes <= 0:
            raise TrainingError("episode budget must be positive")
        if n_envs <= 0:
            raise TrainingError("n_envs must be positive")
        if self.recorder is not None:
            raise TrainingError(
                "decision recording needs the serial train() path — "
                "vectorized rollouts interleave windows across envs"
            )
        repo = repository or self.build_repository()
        venv = VectorCoSchedulingEnv.from_factory(
            lambda rank: self.build_env(repo, env_seed=self.seed + rank),
            n_envs,
        )
        agent = DuelingDoubleDQNAgent(self.dqn_config)
        result = TrainingResult(agent=agent, repository=repo)
        corun_before = corun_cache().stats
        decisions_before = self._decision_memo.stats
        self._losses_recorded = 0

        obs, infos = venv.reset()
        masks = venv.action_masks(infos)
        ep_returns = np.zeros(n_envs)
        while len(result.episode_returns) < episodes:
            actions = agent.act_many(obs, masks)
            next_obs, rewards, terms, truncs, infos = venv.step(actions)
            dones = terms | truncs
            # For transitions that ended an episode, bootstrap targets
            # need the *terminal* state/mask, not the auto-reset one.
            replay_next = next_obs.copy()
            next_masks = []
            for i, info in enumerate(infos):
                if "final_info" in info:
                    replay_next[i] = info["final_observation"]
                    next_masks.append(info["final_info"]["action_mask"])
                else:
                    next_masks.append(info["action_mask"])
            agent.observe_many(
                obs, actions, rewards, replay_next, dones, np.stack(next_masks)
            )
            ep_returns += rewards
            for i in np.flatnonzero(dones):
                if len(result.episode_returns) < episodes:
                    result.episode_returns.append(float(ep_returns[i]))
                    result.episode_throughputs.append(
                        infos[i]["final_info"]["schedule"].throughput_gain
                    )
                    if self.telemetry.enabled:
                        self._record_episode(
                            agent,
                            float(ep_returns[i]),
                            infos[i]["final_info"]["schedule"].throughput_gain,
                            infos[i]["final_observation"],
                            len(result.episode_returns) - 1,
                        )
                ep_returns[i] = 0.0
            obs = next_obs
            masks = venv.action_masks(infos)
        result.cache_stats = {
            "corun": corun_cache().stats.delta(corun_before),
            "decisions": self._decision_memo.stats.delta(decisions_before),
        }
        if self.telemetry.enabled:
            self._record_cache_stats(result.cache_stats)
        return result
