"""Online optimization (paper Fig. 7, right half).

The :class:`OnlineOptimizer` wraps a trained (frozen) agent:

* jobs without a stored profile are excluded from co-scheduling — they
  run exclusively while being profiled, and their profile enters the
  repository for next time (Section IV-B);
* profiled jobs are drained through the co-scheduling environment with
  the greedy (epsilon = 0) policy. The Q-network proposes its
  ``rerank_top_k`` best templates and the profile-based analytic
  predictor arbitrates among them — a pure-compute refinement (no job
  is launched to make the decision) that filters residual Q-value noise
  without leaving the paper's classification framing (``rerank_top_k=1``
  is the plain argmax policy, available for ablation);
* the paper's first constraint is enforced: any emitted group whose
  co-run loses to time sharing is split back into solo runs;
* the decision-making overhead (pure agent/assignment compute time) is
  tracked against the simulated execution time to substantiate the
  "< 0.5% online overhead" claim of Section V-B. Latency is read from
  an *injectable* clock (``repro.clock.perf_clock`` by default): simulated
  runs can pass a deterministic counter so their outputs stay
  bit-reproducible, while production keeps observing real wall time —
  every per-window latency also lands in the
  ``optimizer_decision_seconds`` telemetry histogram.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clock import Clock, perf_clock
from repro.errors import SchedulingError
from repro.core.actions import ActionCatalog
from repro.core.env import CoSchedulingEnv
from repro.core.problem import Schedule, ScheduledGroup, SchedulingProblem
from repro.core.rewards import RewardConfig
from repro.core.serving import (
    DecisionCache,
    SchedulePlan,
    canonical_order,
    profile_signature,
)
from repro.gpu.device import SimulatedGpu
from repro.profiling.profiler import NsightProfiler
from repro.profiling.repository import ProfileRepository
from repro.rl.dqn import DuelingDoubleDQNAgent
from repro.telemetry.facade import NULL_TELEMETRY, Telemetry
from repro.workloads.jobs import Job

__all__ = ["OnlineDecision", "OnlineOptimizer"]

#: fine sub-millisecond buckets for per-window decision latency, so the
#: exported histogram supports p50/p99 estimates in the serving regime
_LATENCY_BUCKETS = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 1.0,
)
#: windows per optimize_many() call
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


@dataclass(frozen=True)
class OnlineDecision:
    """A finished online pass over one window.

    ``decision_seconds`` is always *this window's* share of decision
    compute: on the batched path each window is charged its own
    selection/replay time plus a ``1/B`` share of every batched network
    forward it participated in — never the whole batch's latency.
    ``cached`` marks a schedule replayed from the fleet-level
    :class:`~repro.core.serving.DecisionCache`.
    """

    schedule: Schedule
    n_unprofiled: int
    decision_seconds: float
    cached: bool = False

    @property
    def overhead_fraction(self) -> float:
        """Decision compute time relative to the executed makespan.

        A zero/near-zero makespan (degenerate schedule) would turn the
        old ``decision_seconds / max(total, 1e-12)`` into a meaningless
        astronomically large number: report 0.0 when no decision time
        was spent either, ``inf`` when it was.
        """
        total = self.schedule.total_time
        if total <= 1e-9:
            return 0.0 if self.decision_seconds <= 0.0 else float("inf")
        return self.decision_seconds / total


class _PendingWindow:
    """Mutable per-window bookkeeping inside :meth:`optimize_many`."""

    __slots__ = (
        "window", "profiled", "unprofiled", "schedule", "jobs_c", "key",
        "decision_seconds", "cached", "env", "obs", "info", "capture",
    )

    def __init__(
        self,
        window: list[Job],
        profiled: list[Job],
        unprofiled: list[Job],
        schedule: Schedule,
    ) -> None:
        self.window = window
        self.profiled = profiled
        self.unprofiled = unprofiled
        self.schedule = schedule
        self.jobs_c: list[Job] = []
        self.key: tuple | None = None
        self.decision_seconds = 0.0
        self.cached = False
        self.env: CoSchedulingEnv | None = None
        self.obs = None
        self.info: dict | None = None
        self.capture = None


class OnlineOptimizer:
    """Applies a trained agent to live job windows."""

    name = "MIG+MPS w/ RL"

    def __init__(
        self,
        agent: DuelingDoubleDQNAgent,
        repository: ProfileRepository,
        catalog: ActionCatalog,
        window_size: int,
        reward_config: RewardConfig | None = None,
        profiler: NsightProfiler | None = None,
        rerank_top_k: int = 5,
        clock: Clock | None = None,
        telemetry: Telemetry = NULL_TELEMETRY,
        recorder: "DecisionRecorder | None" = None,
        decision_cache: DecisionCache | None = None,
    ):
        if rerank_top_k < 1:
            raise SchedulingError("rerank_top_k must be at least 1")
        self.agent = agent
        self.repository = repository
        self.catalog = catalog
        self.window_size = window_size
        self.reward_config = reward_config or RewardConfig()
        self.profiler = profiler or NsightProfiler(SimulatedGpu(), noise=0.01)
        self.rerank_top_k = rerank_top_k
        self.clock = clock if clock is not None else perf_clock
        self.telemetry = telemetry
        self.recorder = recorder
        # The fleet-level whole-window memo (optimize_many only; the
        # serial optimize() stays the cache-free reference path). Share
        # one instance across optimizers only when they serve the same
        # frozen policy — the key's policy signature catches config
        # mismatches, but cannot see different agent weights.
        self.decision_cache = decision_cache
        self._policy_sig = (
            self.window_size,
            self.catalog.c_max,
            self.catalog.n_actions,
            self.rerank_top_k,
        )
        self.agent.freeze()

    # ------------------------------------------------------------------
    def optimize(self, window: list[Job]) -> OnlineDecision:
        """Produce and validate a schedule for one window."""
        if not window:
            raise SchedulingError("cannot optimize an empty window")
        if len(window) > self.window_size:
            raise SchedulingError(
                f"window of {len(window)} exceeds the trained size "
                f"{self.window_size}"
            )
        profiled = [j for j in window if self.repository.has(j)]
        unprofiled = [j for j in window if not self.repository.has(j)]

        schedule = Schedule(method=self.name)
        decision_time = 0.0

        # Unprofiled jobs run exclusively; their profile is collected and
        # stored so the next submission co-schedules.
        for job in unprofiled:
            profile = self.profiler.profile(job)
            self.repository.store(job, profile)
            schedule.append(ScheduledGroup.run_solo(job))

        capture = None
        if len(profiled) == 1:
            schedule.append(ScheduledGroup.run_solo(profiled[0]))
        elif profiled:
            env = CoSchedulingEnv(
                windows=[profiled],
                repository=self.repository,
                catalog=self.catalog,
                window_size=self.window_size,
                reward_config=self.reward_config,
                shuffle_windows=False,
            )
            if self.recorder is not None:
                from repro.insight.records import WindowCapture

                capture = WindowCapture(self.recorder, "online", self.agent, env)
            obs, info = env.reset(options={"window_index": 0})
            done = False
            while not done:
                t0 = self.clock()
                action = self._select_action(env, obs, info["action_mask"])
                decision_time += self.clock() - t0
                if capture is not None:
                    capture.stage(obs, info["action_mask"], action)
                obs, _, terminated, truncated, info = env.step(action)
                done = terminated or truncated
            for group in self._enforce_gain(info["schedule"]):
                schedule.append(group)
            if capture is not None:
                capture.finalize(
                    info["schedule"],
                    schedule,
                    full_window=window,
                    method=self.name,
                    c_max=self.catalog.c_max,
                    window_size=self.window_size,
                    n_unprofiled=len(unprofiled),
                    decision_seconds=decision_time,
                )
        if self.recorder is not None and capture is None:
            # no agent decision this window (<=1 profiled job) — still
            # log the window so regret accounting covers every pass
            from repro.insight.records import WindowCapture

            WindowCapture(
                self.recorder, "online", self.agent, env=None
            ).finalize_empty(
                schedule,
                full_window=window,
                method=self.name,
                c_max=self.catalog.c_max,
                window_size=self.window_size,
                n_unprofiled=len(unprofiled),
                decision_seconds=decision_time,
            )
        if self.telemetry.enabled:
            self.telemetry.observe(
                "optimizer_decision_seconds",
                decision_time,
                buckets=_LATENCY_BUCKETS,
            )

        problem = SchedulingProblem(
            window=tuple(window), c_max=max(self.catalog.c_max, 1)
        )
        problem.validate(schedule, strict_gain=True)
        return OnlineDecision(
            schedule=schedule,
            n_unprofiled=len(unprofiled),
            decision_seconds=decision_time,
        )

    # ------------------------------------------------------------------
    def optimize_many(self, windows: list[list[Job]]) -> list[OnlineDecision]:
        """Serve many concurrent windows through one batched fast path.

        Semantics are exactly ``[optimize(w) for w in windows]`` — the
        returned schedules are bitwise-identical to the sequential
        reference loop — but the cost structure is not:

        * windows are profiled/split in submission order (so repository
          mutations land exactly as the sequential loop's would), then
          every agent-driven window advances in *lockstep*: each decision
          step costs one batched ``(B, n_inputs)`` network forward for
          the whole batch instead of ``B`` single-row forwards;
        * with a :class:`~repro.core.serving.DecisionCache` attached,
          each window's canonical content signature is resolved first —
          a cache hit (or a duplicate signature within this very batch)
          replays the stored :class:`~repro.core.serving.SchedulePlan`
          through the co-run cache and never touches the network;
        * per-window ``decision_seconds`` stays honest: a window is
          charged its own lookup/selection/replay compute plus a ``1/B``
          share of each batched forward it participated in — never the
          whole batch's latency.
        """
        if not windows:
            return []
        for window in windows:
            if not window:
                raise SchedulingError("cannot optimize an empty window")
            if len(window) > self.window_size:
                raise SchedulingError(
                    f"window of {len(window)} exceeds the trained size "
                    f"{self.window_size}"
                )

        if self.recorder is not None:
            from repro.insight.records import WindowCapture

        cache = self.decision_cache
        entries: list[_PendingWindow] = []

        # Phase 1 — profiling split, strictly in submission order: a job
        # profiled for an earlier window is already in the repository
        # when a later window asks, exactly like the sequential loop.
        for window in windows:
            profiled = [j for j in window if self.repository.has(j)]
            unprofiled = [j for j in window if not self.repository.has(j)]
            schedule = Schedule(method=self.name)
            for job in unprofiled:
                profile = self.profiler.profile(job)
                self.repository.store(job, profile)
                schedule.append(ScheduledGroup.run_solo(job))
            entries.append(
                _PendingWindow(window, profiled, unprofiled, schedule)
            )

        # Phase 2 — resolve each window: trivial drain, cache replay,
        # intra-batch duplicate (follower), or a live lockstep episode.
        active: list[_PendingWindow] = []
        followers: list[_PendingWindow] = []
        leaders: dict[tuple, _PendingWindow] = {}
        for entry in entries:
            if not entry.profiled:
                continue
            if len(entry.profiled) == 1:
                entry.schedule.append(
                    ScheduledGroup.run_solo(entry.profiled[0])
                )
                continue
            t0 = self.clock()
            if cache is not None:
                profs = [self.repository.lookup(j) for j in entry.profiled]
                order = canonical_order(profs)
                entry.jobs_c = [entry.profiled[i] for i in order]
                sigs = tuple(profile_signature(profs[i]) for i in order)
                entry.key = (sigs, self._policy_sig)
                if entry.key in leaders:
                    # duplicate content within this batch: replay the
                    # leader's plan once it lands in the cache (phase 5)
                    entry.decision_seconds += self.clock() - t0
                    followers.append(entry)
                    continue
                plan = cache.get(entry.key)
                if plan is not None:
                    for group in plan.materialize(entry.jobs_c):
                        entry.schedule.append(group)
                    entry.cached = True
                    entry.decision_seconds += self.clock() - t0
                    continue
                leaders[entry.key] = entry
            entry.decision_seconds += self.clock() - t0
            entry.env = CoSchedulingEnv(
                windows=[entry.profiled],
                repository=self.repository,
                catalog=self.catalog,
                window_size=self.window_size,
                reward_config=self.reward_config,
                shuffle_windows=False,
            )
            if self.recorder is not None:
                entry.capture = WindowCapture(
                    self.recorder, "online", self.agent, entry.env
                )
            entry.obs, entry.info = entry.env.reset(
                options={"window_index": 0}
            )
            active.append(entry)

        # Phase 3 — lockstep decision loop: one batched forward per step
        # serves every still-active window; each window then reranks its
        # own Q row and steps its own environment.
        while active:
            t0 = self.clock()
            q_rows = self.agent.q_values_many(
                np.stack([e.obs for e in active])
            )
            share = (self.clock() - t0) / len(active)
            still: list[_PendingWindow] = []
            for entry, q in zip(active, q_rows):
                t0 = self.clock()
                action = self._rerank(entry.env, q, entry.info["action_mask"])
                entry.decision_seconds += (self.clock() - t0) + share
                if entry.capture is not None:
                    entry.capture.stage(
                        entry.obs, entry.info["action_mask"], action
                    )
                entry.obs, _, terminated, truncated, entry.info = (
                    entry.env.step(action)
                )
                if not (terminated or truncated):
                    still.append(entry)
            active = still

        # Phase 4 — finish live episodes: gain enforcement, insight
        # recording, and (when caching) plan capture for future windows.
        for entry in entries:
            if entry.env is None:
                continue
            groups = self._enforce_gain(entry.info["schedule"])
            for group in groups:
                entry.schedule.append(group)
            if entry.capture is not None:
                entry.capture.finalize(
                    entry.info["schedule"],
                    entry.schedule,
                    full_window=entry.window,
                    method=self.name,
                    c_max=self.catalog.c_max,
                    window_size=self.window_size,
                    n_unprofiled=len(entry.unprofiled),
                    decision_seconds=entry.decision_seconds,
                )
            if cache is not None:
                cache.put(
                    entry.key, SchedulePlan.from_groups(groups, entry.jobs_c)
                )

        # Phase 5 — followers replay their leader's freshly stored plan
        # (an honest cache hit: same lookup the next batch would do).
        for entry in followers:
            t0 = self.clock()
            plan = cache.get(entry.key)
            for group in plan.materialize(entry.jobs_c):
                entry.schedule.append(group)
            entry.cached = True
            entry.decision_seconds += self.clock() - t0

        # Phase 6 — validate, record decision-free windows, emit
        # telemetry, and assemble results in submission order.
        decisions: list[OnlineDecision] = []
        for entry in entries:
            if self.recorder is not None and entry.capture is None:
                # cached replay or <=1 profiled job: no agent decision,
                # but the window still enters regret accounting
                WindowCapture(
                    self.recorder, "online", self.agent, env=None
                ).finalize_empty(
                    entry.schedule,
                    full_window=entry.window,
                    method=self.name,
                    c_max=self.catalog.c_max,
                    window_size=self.window_size,
                    n_unprofiled=len(entry.unprofiled),
                    decision_seconds=entry.decision_seconds,
                )
            if self.telemetry.enabled:
                self.telemetry.observe(
                    "optimizer_decision_seconds",
                    entry.decision_seconds,
                    buckets=_LATENCY_BUCKETS,
                )
            problem = SchedulingProblem(
                window=tuple(entry.window), c_max=max(self.catalog.c_max, 1)
            )
            problem.validate(entry.schedule, strict_gain=True)
            decisions.append(
                OnlineDecision(
                    schedule=entry.schedule,
                    n_unprofiled=len(entry.unprofiled),
                    decision_seconds=entry.decision_seconds,
                    cached=entry.cached,
                )
            )
        if self.telemetry.enabled:
            self.telemetry.observe(
                "serving_batch_windows",
                float(len(windows)),
                buckets=_BATCH_BUCKETS,
            )
        return decisions

    # ------------------------------------------------------------------
    def _select_action(
        self, env: CoSchedulingEnv, obs: np.ndarray, mask: np.ndarray
    ) -> int:
        """One window's greedy decision: Q forward plus reranking."""
        return self._rerank(env, self.agent.q_values(obs), mask)

    def _rerank(
        self, env: CoSchedulingEnv, q: np.ndarray, mask: np.ndarray
    ) -> int:
        """Greedy Q action, refined by predictor reranking of the top-k.

        ``q`` is the unmasked Q row for the current observation — from a
        single forward (:meth:`_select_action`) or one row of a batched
        :meth:`~repro.rl.dqn.DuelingDoubleDQNAgent.q_values_many`
        forward; the two are bitwise-identical, so so is the choice.

        The predictor score is the group's predicted throughput gain
        under the binding the environment would use — the same
        profile-only computation the environment performs, so the
        choice is implementable on a real system before any launch.
        """
        q = np.where(mask, q, -np.inf)
        order = np.argsort(q)[::-1]
        top = [int(a) for a in order[: self.rerank_top_k] if mask[a]]
        if not top:
            raise SchedulingError("no valid action available")
        if len(top) == 1:
            return top[0]
        candidates = [i for i, a in enumerate(env._available) if a]
        cand_profiles = [env._profiles[i] for i in candidates]
        best_action, best_score = top[0], -np.inf
        for action in top:
            variant = env.catalog.variant(action)
            binding = env._bind(variant.tree, cand_profiles)
            predicted = env.predictor.predict_group(
                [cand_profiles[i] for i in binding], variant.tree
            )
            score = predicted.predicted_gain
            if score > best_score:
                best_action, best_score = action, score
        return best_action

    def _enforce_gain(self, schedule: Schedule) -> list[ScheduledGroup]:
        """Split any group that lost to time sharing into solo runs
        (constraint 1 of the problem definition)."""
        out: list[ScheduledGroup] = []
        for group in schedule.groups:
            if group.result.beats_time_sharing():
                out.append(group)
            else:
                out.extend(ScheduledGroup.run_solo(j) for j in group.jobs)
        return out
