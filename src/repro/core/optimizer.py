"""Online optimization (paper Fig. 7, right half).

The :class:`OnlineOptimizer` wraps a trained (frozen) agent:

* jobs without a stored profile are excluded from co-scheduling — they
  run exclusively while being profiled, and their profile enters the
  repository for next time (Section IV-B);
* profiled jobs are drained through the co-scheduling environment with
  the greedy (epsilon = 0) policy. The Q-network proposes its
  ``rerank_top_k`` best templates and the profile-based analytic
  predictor arbitrates among them — a pure-compute refinement (no job
  is launched to make the decision) that filters residual Q-value noise
  without leaving the paper's classification framing (``rerank_top_k=1``
  is the plain argmax policy, available for ablation);
* the paper's first constraint is enforced: any emitted group whose
  co-run loses to time sharing is split back into solo runs;
* the decision-making overhead (pure agent/assignment compute time) is
  tracked against the simulated execution time to substantiate the
  "< 0.5% online overhead" claim of Section V-B. Latency is read from
  an *injectable* clock (``repro.clock.perf_clock`` by default): simulated
  runs can pass a deterministic counter so their outputs stay
  bit-reproducible, while production keeps observing real wall time —
  every per-window latency also lands in the
  ``optimizer_decision_seconds`` telemetry histogram.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clock import Clock, perf_clock
from repro.errors import SchedulingError
from repro.core.actions import ActionCatalog
from repro.core.env import CoSchedulingEnv
from repro.core.problem import Schedule, ScheduledGroup, SchedulingProblem
from repro.core.rewards import RewardConfig
from repro.gpu.device import SimulatedGpu
from repro.profiling.profiler import NsightProfiler
from repro.profiling.repository import ProfileRepository
from repro.rl.dqn import DuelingDoubleDQNAgent
from repro.telemetry.facade import NULL_TELEMETRY, Telemetry
from repro.workloads.jobs import Job

__all__ = ["OnlineDecision", "OnlineOptimizer"]


@dataclass(frozen=True)
class OnlineDecision:
    """A finished online pass over one window."""

    schedule: Schedule
    n_unprofiled: int
    decision_seconds: float

    @property
    def overhead_fraction(self) -> float:
        """Decision compute time relative to the executed makespan.

        A zero/near-zero makespan (degenerate schedule) would turn the
        old ``decision_seconds / max(total, 1e-12)`` into a meaningless
        astronomically large number: report 0.0 when no decision time
        was spent either, ``inf`` when it was.
        """
        total = self.schedule.total_time
        if total <= 1e-9:
            return 0.0 if self.decision_seconds <= 0.0 else float("inf")
        return self.decision_seconds / total


class OnlineOptimizer:
    """Applies a trained agent to live job windows."""

    name = "MIG+MPS w/ RL"

    def __init__(
        self,
        agent: DuelingDoubleDQNAgent,
        repository: ProfileRepository,
        catalog: ActionCatalog,
        window_size: int,
        reward_config: RewardConfig | None = None,
        profiler: NsightProfiler | None = None,
        rerank_top_k: int = 5,
        clock: Clock | None = None,
        telemetry: Telemetry = NULL_TELEMETRY,
        recorder: "DecisionRecorder | None" = None,
    ):
        if rerank_top_k < 1:
            raise SchedulingError("rerank_top_k must be at least 1")
        self.agent = agent
        self.repository = repository
        self.catalog = catalog
        self.window_size = window_size
        self.reward_config = reward_config or RewardConfig()
        self.profiler = profiler or NsightProfiler(SimulatedGpu(), noise=0.01)
        self.rerank_top_k = rerank_top_k
        self.clock = clock if clock is not None else perf_clock
        self.telemetry = telemetry
        self.recorder = recorder
        self.agent.freeze()

    # ------------------------------------------------------------------
    def optimize(self, window: list[Job]) -> OnlineDecision:
        """Produce and validate a schedule for one window."""
        if not window:
            raise SchedulingError("cannot optimize an empty window")
        if len(window) > self.window_size:
            raise SchedulingError(
                f"window of {len(window)} exceeds the trained size "
                f"{self.window_size}"
            )
        profiled = [j for j in window if self.repository.has(j)]
        unprofiled = [j for j in window if not self.repository.has(j)]

        schedule = Schedule(method=self.name)
        decision_time = 0.0

        # Unprofiled jobs run exclusively; their profile is collected and
        # stored so the next submission co-schedules.
        for job in unprofiled:
            profile = self.profiler.profile(job)
            self.repository.store(job, profile)
            schedule.append(ScheduledGroup.run_solo(job))

        capture = None
        if len(profiled) == 1:
            schedule.append(ScheduledGroup.run_solo(profiled[0]))
        elif profiled:
            env = CoSchedulingEnv(
                windows=[profiled],
                repository=self.repository,
                catalog=self.catalog,
                window_size=self.window_size,
                reward_config=self.reward_config,
                shuffle_windows=False,
            )
            if self.recorder is not None:
                from repro.insight.records import WindowCapture

                capture = WindowCapture(self.recorder, "online", self.agent, env)
            obs, info = env.reset(options={"window_index": 0})
            done = False
            while not done:
                t0 = self.clock()
                action = self._select_action(env, obs, info["action_mask"])
                decision_time += self.clock() - t0
                if capture is not None:
                    capture.stage(obs, info["action_mask"], action)
                obs, _, terminated, truncated, info = env.step(action)
                done = terminated or truncated
            for group in self._enforce_gain(info["schedule"]):
                schedule.append(group)
            if capture is not None:
                capture.finalize(
                    info["schedule"],
                    schedule,
                    full_window=window,
                    method=self.name,
                    c_max=self.catalog.c_max,
                    window_size=self.window_size,
                    n_unprofiled=len(unprofiled),
                    decision_seconds=decision_time,
                )
        if self.recorder is not None and capture is None:
            # no agent decision this window (<=1 profiled job) — still
            # log the window so regret accounting covers every pass
            from repro.insight.records import WindowCapture

            WindowCapture(
                self.recorder, "online", self.agent, env=None
            ).finalize_empty(
                schedule,
                full_window=window,
                method=self.name,
                c_max=self.catalog.c_max,
                window_size=self.window_size,
                n_unprofiled=len(unprofiled),
                decision_seconds=decision_time,
            )
        if self.telemetry.enabled:
            self.telemetry.observe(
                "optimizer_decision_seconds", decision_time
            )

        problem = SchedulingProblem(
            window=tuple(window), c_max=max(self.catalog.c_max, 1)
        )
        problem.validate(schedule, strict_gain=True)
        return OnlineDecision(
            schedule=schedule,
            n_unprofiled=len(unprofiled),
            decision_seconds=decision_time,
        )

    # ------------------------------------------------------------------
    def _select_action(
        self, env: CoSchedulingEnv, obs: np.ndarray, mask: np.ndarray
    ) -> int:
        """Greedy Q action, refined by predictor reranking of the top-k.

        The predictor score is the group's predicted throughput gain
        under the binding the environment would use — the same
        profile-only computation the environment performs, so the
        choice is implementable on a real system before any launch.
        """
        q = np.where(mask, self.agent.q_values(obs), -np.inf)
        order = np.argsort(q)[::-1]
        top = [int(a) for a in order[: self.rerank_top_k] if mask[a]]
        if not top:
            raise SchedulingError("no valid action available")
        if len(top) == 1:
            return top[0]
        candidates = [i for i, a in enumerate(env._available) if a]
        cand_profiles = [env._profiles[i] for i in candidates]
        best_action, best_score = top[0], -np.inf
        for action in top:
            variant = env.catalog.variant(action)
            binding = env._bind(variant.tree, cand_profiles)
            predicted = env.predictor.predict_group(
                [cand_profiles[i] for i in binding], variant.tree
            )
            score = predicted.predicted_gain
            if score > best_score:
                best_action, best_score = action, score
        return best_action

    def _enforce_gain(self, schedule: Schedule) -> list[ScheduledGroup]:
        """Split any group that lost to time sharing into solo runs
        (constraint 1 of the problem definition)."""
        out: list[ScheduledGroup] = []
        for group in schedule.groups:
            if group.result.beats_time_sharing():
                out.append(group)
            else:
                out.extend(ScheduledGroup.run_solo(j) for j in group.jobs)
        return out
