"""The agent's action space: the 29-template catalog with validity masks.

An action is one *group template*: a concurrency level plus a complete
hierarchical partition (see :func:`repro.gpu.variants.action_catalog`
for the composition matching Table VI's ``A = 29``). A template is
valid in a state iff its concurrency fits both the remaining window and
the scheduler's ``C_max``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulingError
from repro.gpu.arch import A100_40GB, GpuSpec
from repro.gpu.variants import PartitionVariant, action_catalog

__all__ = ["ActionCatalog"]


class ActionCatalog:
    """Immutable view over the 29 group templates."""

    def __init__(self, spec: GpuSpec = A100_40GB, c_max: int = 4):
        if c_max < 1:
            raise SchedulingError("C_max must be at least 1")
        self.spec = spec
        self.c_max = c_max
        self.variants: list[PartitionVariant] = action_catalog(spec)
        self._mask_cache: dict[int, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self.variants)

    @property
    def n_actions(self) -> int:
        return len(self.variants)

    def variant(self, action: int) -> PartitionVariant:
        if not 0 <= action < len(self.variants):
            raise SchedulingError(
                f"action {action} out of range [0, {len(self.variants)})"
            )
        return self.variants[action]

    def concurrency(self, action: int) -> int:
        return self.variant(action).concurrency

    def mask(self, n_remaining: int) -> np.ndarray:
        """Boolean validity mask for a state with ``n_remaining``
        schedulable jobs.

        A template needs exactly its concurrency in jobs, bounded by
        ``C_max``. With fewer than 2 jobs left no template is valid —
        the environment then drains the remainder with solo runs.
        """
        limit = min(n_remaining, self.c_max)
        cached = self._mask_cache.get(limit)
        if cached is None:
            cached = np.array(
                [v.concurrency <= limit for v in self.variants], dtype=bool
            )
            self._mask_cache[limit] = cached
        # A copy per call: masks are handed to agents and replay buffers,
        # which must not alias the memoized base.
        return cached.copy()

    def actions_with_concurrency(self, c: int) -> list[int]:
        return [i for i, v in enumerate(self.variants) if v.concurrency == c]
