"""Reward functions (paper Table VI).

Two signals drive the agent:

* the **intermediate reward** ``r_i`` scores the binding of one job to
  one slot *before launching it*, from profile data alone::

      r_i = (SmAllocRatio x ComputeRatio
             + MemoryAllocRatio x MemoryRatio) x DurationRatio^2

  ``SmAllocRatio`` / ``MemoryAllocRatio`` are the slot's fractions of
  the device's SMs / bandwidth; ``ComputeRatio`` / ``MemoryRatio`` /
  ``DurationRatio`` are the job's Compute(SM)%, Memory%, and solo time
  each divided by the window mean. It rewards putting resources where
  they are needed, and the squared duration ratio prioritizes long
  jobs (a starved long job drags the whole window's makespan).

* the **final reward** ``r_f`` is the measured outcome::

      r_f = (SoloRunTime / CoRunTime - 1) x 100

  i.e. the percentage throughput gain of the co-run over time sharing
  for the group, available only after completion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.gpu.partition import Slot
from repro.profiling.profiler import JobProfile

__all__ = [
    "RewardConfig",
    "WindowStats",
    "intermediate_reward",
    "final_reward",
    "fairness_penalty",
    "group_reward",
]


@dataclass(frozen=True)
class RewardConfig:
    """Weights combining the two Table VI signals into the step reward.

    The paper uses both signals but does not publish their relative
    weight; ``intermediate_weight`` scales the summed ``r_i`` of a
    group against its ``r_f`` (which is in percent and therefore
    naturally an order of magnitude larger).

    ``fairness_weight`` enables the extension the paper proposes in
    Section V-B ("we can improve the fairness in our approach by taking
    it into account in the reward function"): each group pays a penalty
    proportional to the spread of its members' slowdowns, in the same
    percent units as ``r_f``. Zero (the default) reproduces the paper's
    throughput-only objective.
    """

    intermediate_weight: float = 1.0
    final_weight: float = 1.0
    fairness_weight: float = 0.0


@dataclass(frozen=True)
class WindowStats:
    """Window means normalizing the per-job profile ratios."""

    mean_compute_pct: float
    mean_memory_pct: float
    mean_solo_time: float

    @classmethod
    def from_profiles(cls, profiles: list[JobProfile]) -> "WindowStats":
        if not profiles:
            raise SchedulingError("window stats need at least one profile")
        n = len(profiles)
        return cls(
            mean_compute_pct=sum(p.counters.compute_sm_pct for p in profiles) / n,
            mean_memory_pct=sum(p.counters.memory_pct for p in profiles) / n,
            mean_solo_time=sum(p.solo_time for p in profiles) / n,
        )


def intermediate_reward(
    profile: JobProfile, slot: Slot, stats: WindowStats
) -> float:
    """``r_i`` for binding ``profile``'s job to ``slot`` (Table VI)."""
    compute_ratio = profile.counters.compute_sm_pct / max(
        stats.mean_compute_pct, 1e-9
    )
    memory_ratio = profile.counters.memory_pct / max(stats.mean_memory_pct, 1e-9)
    duration_ratio = profile.solo_time / max(stats.mean_solo_time, 1e-9)
    return (
        slot.compute_fraction * compute_ratio
        + slot.mem_fraction * memory_ratio
    ) * duration_ratio**2


def final_reward(solo_run_time: float, corun_time: float) -> float:
    """``r_f``: percentage throughput gain over time sharing (Table VI)."""
    if corun_time <= 0:
        raise SchedulingError("co-run time must be positive")
    return (solo_run_time / corun_time - 1.0) * 100.0


def fairness_penalty(slowdowns: tuple[float, ...] | list[float]) -> float:
    """Unfairness of one group, in percent: how far the worst member's
    slowdown exceeds the best member's (0 for solo runs and perfectly
    balanced groups)."""
    if len(slowdowns) < 2:
        return 0.0
    worst, best = max(slowdowns), min(slowdowns)
    if best <= 0:
        raise SchedulingError("slowdowns must be positive")
    return (worst / best - 1.0) * 100.0


def group_reward(
    intermediate_rewards: list[float],
    solo_run_time: float,
    corun_time: float,
    config: RewardConfig,
    slowdowns: tuple[float, ...] | list[float] = (),
) -> float:
    """The step reward for scheduling one group.

    ``weighted sum(r_i) + weighted r_f - weighted unfairness`` — the
    last term only contributes when the fairness extension is enabled.
    """
    reward = config.intermediate_weight * sum(intermediate_rewards) + (
        config.final_weight * final_reward(solo_run_time, corun_time)
    )
    if config.fairness_weight and slowdowns:
        reward -= config.fairness_weight * fairness_penalty(slowdowns)
    return reward
