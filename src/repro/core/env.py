"""The co-scheduling RL environment (gymnasium protocol).

An **episode** drains one job window. Each **step** the agent picks one
of the 29 group templates; jobs are bound to the template's slots by
profile-driven assignment (the pure and conflict-aware intermediate-
reward maximizers, arbitrated by the analytic predictor — all
computable before launch), the group is co-run on the simulated
device, and the step reward combines the group's intermediate rewards
with its measured final reward (Table VI). When fewer than two jobs
remain, the environment drains them with solo runs (no agent decision
exists there) and the episode terminates.

The observation is the ``W x (f + 5)`` window encoding; ``info`` always
carries ``action_mask`` (templates whose concurrency no longer fits are
invalid) and, at termination, the completed :class:`Schedule` for
metric extraction.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import SchedulingError
from repro.core.actions import ActionCatalog
from repro.core.assignment import assign_conflict_aware, assign_optimal
from repro.core.predictor import AnalyticPredictor
from repro.core.features import FeatureExtractor
from repro.core.problem import Schedule, ScheduledGroup, SchedulingProblem
from repro.core.rewards import RewardConfig, WindowStats, group_reward, intermediate_reward
from repro.profiling.profiler import JobProfile
from repro.profiling.repository import ProfileRepository
from repro.rl.env import Env
from repro.rl.spaces import Discrete
from repro.workloads.jobs import Job

__all__ = ["CoSchedulingEnv"]


class CoSchedulingEnv(Env):
    """RL environment over a set of profiled job windows."""

    def __init__(
        self,
        windows: list[list[Job]],
        repository: ProfileRepository,
        catalog: ActionCatalog,
        window_size: int,
        reward_config: RewardConfig | None = None,
        seed: int = 0,
        shuffle_windows: bool = True,
        binding: str = "auto",
    ):
        if binding not in ("auto", "optimal", "conflict"):
            raise SchedulingError(
                f"binding must be auto/optimal/conflict; got {binding!r}"
            )
        if not windows:
            raise SchedulingError("the environment needs at least one window")
        for w in windows:
            if len(w) > window_size:
                raise SchedulingError(
                    f"window of {len(w)} jobs exceeds the configured size "
                    f"{window_size}"
                )
            for job in w:
                repository.lookup(job)  # fail fast on missing profiles
        self.windows = windows
        self.repository = repository
        self.catalog = catalog
        self.extractor = FeatureExtractor(window_size)
        self.reward_config = reward_config or RewardConfig()
        self.predictor = AnalyticPredictor()
        self.observation_space = self.extractor.observation_space()
        self.action_space = Discrete(catalog.n_actions, seed=seed)
        self._rng = np.random.default_rng(seed)
        self.shuffle_windows = shuffle_windows
        self.binding = binding
        self._episode = -1

        # per-episode state
        self._jobs: list[Job] = []
        self._profiles: list[JobProfile] = []
        self._available: list[bool] = []
        self._stats: WindowStats | None = None
        self._schedule: Schedule | None = None

    # ------------------------------------------------------------------
    # episode control
    # ------------------------------------------------------------------
    def reset(
        self, *, seed: int | None = None, options: dict | None = None
    ) -> tuple[np.ndarray, dict[str, Any]]:
        """Start draining the next window.

        ``options['window_index']`` pins a specific window (used for
        deterministic evaluation); otherwise windows are drawn randomly
        (training) or cycled (``shuffle_windows=False``).
        """
        if seed is not None:
            self._rng = np.random.default_rng(seed)
            self.action_space.seed(seed)
        self._episode += 1
        if options and "window_index" in options:
            idx = int(options["window_index"]) % len(self.windows)
        elif self.shuffle_windows:
            idx = int(self._rng.integers(len(self.windows)))
        else:
            idx = self._episode % len(self.windows)
        self._jobs = list(self.windows[idx])
        self._profiles = [self.repository.lookup(j) for j in self._jobs]
        self._available = [True] * len(self._jobs)
        self._stats = WindowStats.from_profiles(self._profiles)
        self._schedule = Schedule(method="MIG+MPS w/ RL")
        return self._observe(), self._info()

    def _observe(self) -> np.ndarray:
        return self.extractor.encode(self._profiles, self._available)

    def _n_remaining(self) -> int:
        return sum(self._available)

    def _info(self) -> dict[str, Any]:
        return {
            "action_mask": self.catalog.mask(self._n_remaining()),
            "n_remaining": self._n_remaining(),
        }

    def _bind(self, tree, cand_profiles) -> list[int]:
        """Bind candidate jobs to the template's slots.

        In ``auto`` mode two profile-driven candidate bindings are
        produced — the pure ``r_i`` maximizer and the conflict-aware
        variant — and the analytic predictor arbitrates between them;
        ``optimal``/``conflict`` pin one binder (ablation). Everything
        here is computable before launching the group, as it must be
        online.
        """
        if self.binding == "optimal":
            return assign_optimal(tree, cand_profiles, self._stats)
        if self.binding == "conflict":
            return assign_conflict_aware(tree, cand_profiles, self._stats)
        options = []
        for binder in (assign_conflict_aware, assign_optimal):
            binding = binder(tree, cand_profiles, self._stats)
            est = self.predictor.predict_group(
                [cand_profiles[i] for i in binding], tree
            ).makespan
            options.append((est, binding))
        return min(options, key=lambda x: x[0])[1]

    # ------------------------------------------------------------------
    # transition
    # ------------------------------------------------------------------
    def step(
        self, action: int
    ) -> tuple[np.ndarray, float, bool, bool, dict[str, Any]]:
        if self._schedule is None:
            raise SchedulingError("call reset() before step()")
        mask = self.catalog.mask(self._n_remaining())
        if not mask[action]:
            raise SchedulingError(
                f"action {action} (C={self.catalog.concurrency(action)}) is "
                f"invalid with {self._n_remaining()} jobs remaining"
            )
        variant = self.catalog.variant(action)
        candidates = [i for i, a in enumerate(self._available) if a]
        cand_profiles = [self._profiles[i] for i in candidates]
        binding = self._bind(variant.tree, cand_profiles)
        chosen = [candidates[b] for b in binding]

        slots = variant.tree.slots()
        r_is = [
            intermediate_reward(self._profiles[i], slot, self._stats)
            for i, slot in zip(chosen, slots)
        ]
        group = ScheduledGroup.run([self._jobs[i] for i in chosen], variant.tree)
        self._schedule.append(group)
        for i in chosen:
            self._available[i] = False

        reward = group_reward(
            r_is,
            group.solo_run_time,
            group.corun_time,
            self.reward_config,
            slowdowns=group.result.slowdowns,
        )

        terminated = False
        if self._n_remaining() < 2:
            for i, avail in enumerate(self._available):
                if avail:
                    self._schedule.append(ScheduledGroup.run_solo(self._jobs[i]))
                    self._available[i] = False
            terminated = True

        info = self._info()
        if terminated:
            info["schedule"] = self._schedule
            problem = SchedulingProblem(
                window=tuple(self._jobs), c_max=self.catalog.c_max
            )
            # Structural constraints must hold by construction; the
            # throughput constraint is learned, not enforced, in
            # training (the optimizer enforces it online).
            problem.validate(self._schedule, strict_gain=False)
        return self._observe(), reward, terminated, False, info
