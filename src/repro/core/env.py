"""The co-scheduling RL environment (gymnasium protocol).

An **episode** drains one job window. Each **step** the agent picks one
of the 29 group templates; jobs are bound to the template's slots by
profile-driven assignment (the pure and conflict-aware intermediate-
reward maximizers, arbitrated by the analytic predictor — all
computable before launch), the group is co-run on the simulated
device, and the step reward combines the group's intermediate rewards
with its measured final reward (Table VI). When fewer than two jobs
remain, the environment drains them with solo runs (no agent decision
exists there) and the episode terminates.

The observation is the ``W x (f + 5)`` window encoding; ``info`` always
carries ``action_mask`` (templates whose concurrency no longer fits are
invalid) and, at termination, the completed :class:`Schedule` for
metric extraction.

Two step implementations coexist:

* the **reference path** — the straightforward computation (full window
  re-encoding, per-cell reward evaluation, both binders plus predictor
  arbitration, a fresh co-run simulation per group). It runs whenever
  the global fast path is off (:func:`repro.perfmodel.cache.\
corun_cache_disabled`) and serves as the ground truth the fast path is
  validated against bit for bit.
* the **fast path** — per-window precomputation (encodings, reward
  tables, profile-derived arrays), a lean local search over those
  tables, predictor memoization, the process-wide co-run cache, and a
  content-keyed step-decision memo (shareable across environments via
  ``decision_memo``). It produces bitwise-identical transitions; one
  global switch selects between the two.

Windows are drained in **serving-canonical order** (sorted by profile
signature; see :mod:`repro.core.serving`) on both paths, which makes
every decision a pure function of window *content* — the invariant the
decision memo and the fleet-level ``DecisionCache`` key on.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.errors import SchedulingError
from repro.core.actions import ActionCatalog
from repro.core.assignment import (
    CONFLICT_WEIGHT,
    assign_conflict_aware,
    assign_optimal,
)
from repro.core.predictor import AnalyticPredictor
from repro.core.features import FeatureExtractor
from repro.core.problem import Schedule, ScheduledGroup, SchedulingProblem
from repro.core.rewards import (
    RewardConfig,
    WindowStats,
    group_reward,
    intermediate_reward,
)
from repro.core.serving import canonical_order, profile_signature
from repro.perfmodel.cache import CoRunCache, corun_caching_enabled
from repro.profiling.profiler import JobProfile
from repro.profiling.repository import ProfileRepository
from repro.rl.env import Env
from repro.rl.spaces import Discrete
from repro.workloads.jobs import Job

__all__ = ["CoSchedulingEnv"]


class _ActionInfo:
    """Static facts about one group template, computed once per env.

    Everything here is a pure function of the template's partition tree:
    its slots, their ``(compute, memory)`` shapes, and the memory
    domains the conflict-aware objective penalizes (pre-filtered to the
    multi-slot ones, with their bandwidth fractions).
    """

    __slots__ = (
        "variant",
        "tree",
        "slots",
        "shapes",
        "betas",
        "domains",
        "alphas",
        "all_domains",
        "all_alphas",
    )

    def __init__(self, variant) -> None:
        self.variant = variant
        self.tree = variant.tree
        self.slots = self.tree.slots()
        self.shapes = tuple(
            (s.compute_fraction, s.mem_fraction) for s in self.slots
        )
        self.betas = [s.compute_fraction for s in self.slots]
        all_domains = self.tree.mem_domains()
        # All domains (with their bandwidth fractions) for the analytic
        # predictor; only the multi-slot ones for the conflict penalty.
        self.all_domains = [tuple(d) for d in all_domains]
        self.all_alphas = [
            self.slots[d[0]].mem_fraction for d in self.all_domains
        ]
        self.domains = [d for d in self.all_domains if len(d) >= 2]
        self.alphas = [self.slots[d[0]].mem_fraction for d in self.domains]


class _WindowContext:
    """Per-window precomputation for the fast path.

    Holds the window's profiles/stats/encoding plus profile-derived
    scalars (normalized memory demand, squared duration ratio) and
    lazily-built reward tables: for each distinct slot shape, the
    intermediate reward of every window job, evaluated exactly once.
    The tables' values are the same floats the reference path computes
    — only the bookkeeping around them is cheaper.
    """

    __slots__ = (
        "profiles",
        "stats",
        "encoding",
        "mem",
        "dur2",
        "pred",
        "_rows",
        "_matrices",
        "predict_memo",
    )

    def __init__(
        self, profiles: list[JobProfile], extractor: FeatureExtractor
    ) -> None:
        self.profiles = profiles
        self.stats = WindowStats.from_profiles(profiles)
        self.encoding = extractor.precompute(profiles)
        mean_solo = max(self.stats.mean_solo_time, 1e-9)
        self.mem = [p.counters.memory_pct / 100.0 for p in profiles]
        self.dur2 = [(p.solo_time / mean_solo) ** 2 for p in profiles]
        self.pred: list[tuple[float, float, float, float]] | None = None
        self._rows: dict[tuple[float, float], np.ndarray] = {}
        self._matrices: dict[int, tuple[np.ndarray, list[list[float]]]] = {}
        self.predict_memo: dict[tuple, float] = {}

    def predictor_consts(self) -> list[tuple[float, float, float, float]]:
        """Per-job ``(t_comp, t_mem, scalability, demand)`` — the pure
        per-profile quantities :class:`AnalyticPredictor` re-derives on
        every ``predict_job`` call, computed once per window."""
        p = self.pred
        if p is None:
            p = [
                (
                    *AnalyticPredictor.phase_split(prof),
                    AnalyticPredictor.scalability(prof),
                    AnalyticPredictor.bw_demand(prof),
                )
                for prof in self.profiles
            ]
            self.pred = p
        return p

    def matrix(
        self, info: _ActionInfo, action: int
    ) -> tuple[np.ndarray, list[list[float]]]:
        """The full-window ``(job, slot)`` reward matrix for a template,
        as an array (for the Hungarian solver) plus its row lists (for
        the scalar local search). Keyed by action index — an int hash —
        with the underlying per-shape reward rows shared across actions,
        so each distinct (job, shape) reward is evaluated once."""
        m = self._matrices.get(action)
        if m is None:
            cols = []
            for shape, slot in zip(info.shapes, info.slots):
                row = self._rows.get(shape)
                if row is None:
                    row = np.array(
                        [
                            intermediate_reward(p, slot, self.stats)
                            for p in self.profiles
                        ]
                    )
                    self._rows[shape] = row
                cols.append(row)
            arr = np.column_stack(cols)
            m = (arr, arr.tolist())
            self._matrices[action] = m
        return m


def _conflict_search(
    rewards: list[list[float]],
    mem: list[float],
    dur2: list[float],
    domains: list[tuple[int, ...]],
    alphas: list[float],
    lam: float,
    start: list[int],
) -> list[int]:
    """Lean replica of :func:`repro.core.assignment.assign_conflict_aware`.

    Same first-improvement local search, same pass structure, same
    tie-breaking epsilon — but scoring reads precomputed per-candidate
    lists instead of walking profile attributes, so one score costs a
    couple of microseconds. Every arithmetic operation is performed in
    the reference's order, so scores (and therefore the returned
    binding) are bitwise-identical.
    """
    n_slots = len(start)
    n_jobs = len(rewards)
    slot_range = range(n_slots)
    dom_alpha = list(zip(domains, alphas))
    # lam * mem[j] is the first product of every penalty term; hoisting
    # it out of the search touches the same two operands, so the scores
    # stay bitwise-identical.
    lamd = [lam * m for m in mem]

    # default-argument binding turns every closure variable into a fast
    # local lookup — score() runs thousands of times per search
    def score(
        binding: list[int],
        rewards: list[list[float]] = rewards,
        mem: list[float] = mem,
        lamd: list[float] = lamd,
        dur2: list[float] = dur2,
        dom_alpha: list = dom_alpha,
        slot_range: range = slot_range,
        lam: float = lam,
    ) -> float:
        total = 0.0
        for s in slot_range:
            total += rewards[binding[s]][s]
        if lam:
            for domain, alpha in dom_alpha:
                demands = [mem[binding[s]] for s in domain]
                dsum = sum(demands)
                for s, d in zip(domain, demands):
                    j = binding[s]
                    total -= lamd[j] * (dsum - d) / alpha * dur2[j]
        return total

    binding = list(start)
    best = score(binding)
    for _ in range(4):
        improved = False
        bound = set(binding)
        for a in range(n_slots):
            for b in range(a + 1, n_slots):
                cand = binding.copy()
                cand[a], cand[b] = cand[b], cand[a]
                s = score(cand)
                if s > best + 1e-12:
                    binding, best, improved = cand, s, True
                    bound = set(binding)
        for a in range(n_slots):
            for j in range(n_jobs):
                if j in bound:
                    continue
                cand = binding.copy()
                cand[a] = j
                s = score(cand)
                if s > best + 1e-12:
                    binding, best, improved = cand, s, True
                    bound = set(binding)
        if not improved:
            break
    return binding


class CoSchedulingEnv(Env):
    """RL environment over a set of profiled job windows."""

    def __init__(
        self,
        windows: list[list[Job]],
        repository: ProfileRepository,
        catalog: ActionCatalog,
        window_size: int,
        reward_config: RewardConfig | None = None,
        seed: int = 0,
        shuffle_windows: bool = True,
        binding: str = "auto",
        memoize_decisions: bool = True,
        decision_cache_size: int = 32768,
        window_context_cache: dict[tuple, "_WindowContext"] | None = None,
        decision_memo: CoRunCache | None = None,
    ):
        if binding not in ("auto", "optimal", "conflict"):
            raise SchedulingError(
                f"binding must be auto/optimal/conflict; got {binding!r}"
            )
        if not windows:
            raise SchedulingError("the environment needs at least one window")
        for w in windows:
            if len(w) > window_size:
                raise SchedulingError(
                    f"window of {len(w)} jobs exceeds the configured size "
                    f"{window_size}"
                )
            for job in w:
                repository.lookup(job)  # fail fast on missing profiles
        self.windows = windows
        self.repository = repository
        self.catalog = catalog
        self.extractor = FeatureExtractor(window_size)
        self.reward_config = reward_config or RewardConfig()
        self.predictor = AnalyticPredictor()
        self.observation_space = self.extractor.observation_space()
        self.action_space = Discrete(catalog.n_actions, seed=seed)
        self._rng = np.random.default_rng(seed)
        self.shuffle_windows = shuffle_windows
        self.binding = binding
        self._episode = -1

        # Fast-path state. Everything the step computation derives from
        # (window content, availability set, action) is deterministic,
        # so repeated decisions over equivalent windows are memoized: a
        # cached entry replays the exact (binding, rewards, group)
        # triple the reference computation would produce. Keys are the
        # window's canonical profile signatures — content, not index —
        # so two windows holding profile-identical jobs (in any
        # submission order, in any environment sharing the memo via
        # ``decision_memo``) reuse each other's decisions. The whole
        # fast path — decision memo, window contexts, reward tables —
        # is bypassed whenever global co-run caching is disabled, so one
        # switch selects reference vs. fast semantics for a whole
        # episode (the mode is latched at reset()).
        self.memoize_decisions = memoize_decisions
        self._decisions = (
            decision_memo
            if decision_memo is not None
            else CoRunCache(maxsize=decision_cache_size)
        )
        # An externally-owned cache (keyed by window content signature)
        # lets a trainer share the per-window precomputation across the
        # many short-lived environments it builds over one window set.
        self._window_cache: dict[tuple, _WindowContext] = (
            {} if window_context_cache is None else window_context_cache
        )
        # Canonical per-window ordering (see repro.core.serving): jobs,
        # profiles, and content signatures, memoized per window index.
        self._canonical: dict[
            int, tuple[list[Job], list[JobProfile], tuple]
        ] = {}
        self._action_infos: list[_ActionInfo | None] = [None] * catalog.n_actions
        self._window_idx = -1
        self._fast = False

        # per-episode state
        self._jobs: list[Job] = []
        self._profiles: list[JobProfile] = []
        self._sigs: tuple = ()
        self._available: list[bool] = []
        self._stats: WindowStats | None = None
        self._ctx: _WindowContext | None = None
        self._schedule: Schedule | None = None

    @property
    def decision_cache(self) -> CoRunCache:
        """The step-decision memo (per-environment unless an external
        ``decision_memo`` was injected; for diagnostics)."""
        return self._decisions

    # ------------------------------------------------------------------
    # episode control
    # ------------------------------------------------------------------
    def reset(
        self, *, seed: int | None = None, options: dict | None = None
    ) -> tuple[np.ndarray, dict[str, Any]]:
        """Start draining the next window.

        ``options['window_index']`` pins a specific window (used for
        deterministic evaluation); otherwise windows are drawn randomly
        (training) or cycled (``shuffle_windows=False``).
        """
        if seed is not None:
            self._rng = np.random.default_rng(seed)
            self.action_space.seed(seed)
        self._episode += 1
        if options and "window_index" in options:
            idx = int(options["window_index"]) % len(self.windows)
        elif self.shuffle_windows:
            idx = int(self._rng.integers(len(self.windows)))
        else:
            idx = self._episode % len(self.windows)
        self._window_idx = idx
        jobs, profiles, sigs = self._canonical_window(idx)
        self._jobs = list(jobs)
        self._profiles = profiles
        self._sigs = sigs
        self._fast = self.memoize_decisions and corun_caching_enabled()
        if self._fast:
            ctx = self._window_cache.get(sigs)
            if ctx is None:
                ctx = _WindowContext(profiles, self.extractor)
                self._window_cache[sigs] = ctx
            self._ctx = ctx
            self._stats = ctx.stats
        else:
            self._ctx = None
            self._stats = WindowStats.from_profiles(self._profiles)
        self._available = [True] * len(self._jobs)
        self._schedule = Schedule(method="MIG+MPS w/ RL")
        return self._observe(), self._info()

    def _canonical_window(
        self, idx: int
    ) -> tuple[list[Job], list[JobProfile], tuple]:
        """The window in serving-canonical order, with content signatures.

        Both step implementations drain windows in this order (sorted by
        profile signature, queue index breaking ties), so every
        order-dependent computation — assignment tie-breaks, local-search
        trajectories, float summation in the window statistics — runs
        identically for any submission permutation of the same job set.
        That is the property the content-keyed decision memo and the
        fleet-level :class:`~repro.core.serving.DecisionCache` rely on.
        """
        entry = self._canonical.get(idx)
        if entry is None:
            raw = self.windows[idx]
            profiles = [self.repository.lookup(j) for j in raw]
            order = canonical_order(profiles)
            jobs = [raw[i] for i in order]
            profiles = [profiles[i] for i in order]
            sigs = tuple(profile_signature(p) for p in profiles)
            entry = (jobs, profiles, sigs)
            self._canonical[idx] = entry
        return entry

    def _observe(self) -> np.ndarray:
        if self._ctx is not None:
            return self._ctx.encoding.encode(self._available)
        return self.extractor.encode(self._profiles, self._available)

    def _n_remaining(self) -> int:
        return sum(self._available)

    def _info(self) -> dict[str, Any]:
        n = self._n_remaining()
        return {
            "action_mask": self.catalog.mask(n),
            "n_remaining": n,
            "window_index": self._window_idx,
        }

    # ------------------------------------------------------------------
    # read-only views for observability tooling (decision recorder)
    # ------------------------------------------------------------------
    @property
    def window_index(self) -> int:
        """Index of the active window (-1 before the first reset)."""
        return self._window_idx

    @property
    def window_jobs(self) -> list:
        """The active window's jobs, in window order (copy)."""
        return list(self._jobs)

    @property
    def job_profiles(self) -> list:
        """Profiles aligned with :attr:`window_jobs` (copy)."""
        return list(self._profiles)

    @property
    def availability(self) -> tuple[bool, ...]:
        """Which window slots are still schedulable."""
        return tuple(self._available)

    def _bind(self, tree, cand_profiles) -> list[int]:
        """Reference binder: candidate jobs onto the template's slots.

        In ``auto`` mode two profile-driven candidate bindings are
        produced — the pure ``r_i`` maximizer and the conflict-aware
        variant — and the analytic predictor arbitrates between them;
        ``optimal``/``conflict`` pin one binder (ablation). Everything
        here is computable before launching the group, as it must be
        online.
        """
        if self.binding == "optimal":
            return assign_optimal(tree, cand_profiles, self._stats)
        if self.binding == "conflict":
            return assign_conflict_aware(tree, cand_profiles, self._stats)
        options = []
        for binder in (assign_conflict_aware, assign_optimal):
            binding = binder(tree, cand_profiles, self._stats)
            est = self.predictor.predict_group(
                [cand_profiles[i] for i in binding], tree
            ).makespan
            options.append((est, binding))
        return min(options, key=lambda x: x[0])[1]

    # ------------------------------------------------------------------
    # fast-path decision
    # ------------------------------------------------------------------
    def _action_info(self, action: int) -> _ActionInfo:
        info = self._action_infos[action]
        if info is None:
            info = _ActionInfo(self.catalog.variant(action))
            self._action_infos[action] = info
        return info

    def _predict(
        self, info: _ActionInfo, action: int, chosen: list[int]
    ) -> float:
        """Memoized analytic-predictor makespan for a concrete binding.

        Inlines :meth:`AnalyticPredictor.predict_group` +
        :meth:`~AnalyticPredictor.predict_job` over the window's
        precomputed per-profile constants — identical arithmetic in
        identical order, so the makespan is the same float the reference
        path's predictor returns.
        """
        key = (action, tuple(chosen))
        memo = self._ctx.predict_memo
        est = memo.get(key)
        if est is None:
            pred = self._ctx.predictor_consts()
            sens = self.predictor.sensitivity
            betas = info.betas
            times = [0.0] * len(chosen)
            for domain, alpha in zip(info.all_domains, info.all_alphas):
                demands = [min(pred[chosen[s]][3], alpha) for s in domain]
                total = sum(demands)
                for s, d in zip(domain, demands):
                    t_comp, t_mem, f, demand = pred[chosen[s]]
                    avail = (
                        alpha
                        if total <= alpha
                        else alpha * d / max(total, 1e-9)
                    )
                    pressure = total - d
                    comp_scale = (1.0 - f) + f / max(betas[s], 1e-6)
                    mem_scale = demand / max(min(demand, avail), 1e-9)
                    mem_scale *= 1.0 + sens * max(0.0, pressure)
                    tc = t_comp * comp_scale
                    tm = t_mem * mem_scale
                    times[s] = max(tc, tm) + 0.2 * min(tc, tm)
            est = max(times)
            memo[key] = est
        return est

    def _decide_fast(
        self, action: int
    ) -> tuple[tuple[int, ...], tuple[float, ...], ScheduledGroup]:
        """One step's decision via the precomputed window tables.

        Replays the reference computation — optimal binding via the
        Hungarian algorithm on the same reward matrix, the same
        conflict-aware local search, the same predictor arbitration
        (skipped entirely when both binders agree, which cannot change
        the outcome) — producing the identical (chosen, rewards, group)
        triple.
        """
        info = self._action_info(action)
        ctx = self._ctx
        candidates = [i for i, a in enumerate(self._available) if a]
        m, m_list = ctx.matrix(info, action)
        sub = m[candidates, :]
        rows, cols = linear_sum_assignment(sub, maximize=True)
        n_slots = len(info.slots)
        b_opt = [0] * n_slots
        for j, s in zip(rows, cols):
            b_opt[s] = int(j)
        if self.binding == "optimal":
            binding = b_opt
        else:
            b_ca = _conflict_search(
                [m_list[i] for i in candidates],
                [ctx.mem[i] for i in candidates],
                [ctx.dur2[i] for i in candidates],
                info.domains,
                info.alphas,
                CONFLICT_WEIGHT,
                b_opt,
            )
            if self.binding == "conflict" or b_ca == b_opt:
                binding = b_ca
            else:
                est_ca = self._predict(
                    info, action, [candidates[b] for b in b_ca]
                )
                est_opt = self._predict(
                    info, action, [candidates[b] for b in b_opt]
                )
                binding = b_ca if est_ca <= est_opt else b_opt
        chosen = tuple(candidates[b] for b in binding)
        r_is = tuple(float(sub[b, s]) for s, b in enumerate(binding))
        group = ScheduledGroup.run([self._jobs[i] for i in chosen], info.tree)
        return chosen, r_is, group

    # ------------------------------------------------------------------
    # transition
    # ------------------------------------------------------------------
    def step(
        self, action: int
    ) -> tuple[np.ndarray, float, bool, bool, dict[str, Any]]:
        if self._schedule is None:
            raise SchedulingError("call reset() before step()")
        mask = self.catalog.mask(self._n_remaining())
        if not mask[action]:
            raise SchedulingError(
                f"action {action} (C={self.catalog.concurrency(action)}) is "
                f"invalid with {self._n_remaining()} jobs remaining"
            )
        if self._fast:
            # Content-addressed and job-order-invariant: the window's
            # canonical profile signatures (not its index) plus the
            # availability set, the action, and the binding mode — only
            # state the decision actually depends on, shareable across
            # environments and window permutations.
            memo_key = (
                self._sigs, tuple(self._available), action, self.binding
            )
            decision = self._decisions.get(memo_key)
            if decision is None:
                decision = self._decide_fast(action)
                # ScheduledGroup is frozen, so the instance can be
                # shared by every schedule that replays this decision.
                self._decisions.put(memo_key, decision)
            chosen, r_is, group = decision
            if any(
                a is not b
                for a, b in zip(group.jobs, (self._jobs[i] for i in chosen))
            ):
                # The entry came from a profile-identical window holding
                # different job objects: rebuild the group around this
                # window's jobs. The co-run evaluation replays through
                # the process-wide cache, so every float is identical.
                group = ScheduledGroup.run(
                    [self._jobs[i] for i in chosen], group.partition
                )
                self._decisions.put(memo_key, (chosen, r_is, group))
        else:
            variant = self.catalog.variant(action)
            candidates = [i for i, a in enumerate(self._available) if a]
            cand_profiles = [self._profiles[i] for i in candidates]
            binding = self._bind(variant.tree, cand_profiles)
            chosen = [candidates[b] for b in binding]
            slots = variant.tree.slots()
            r_is = [
                intermediate_reward(self._profiles[i], slot, self._stats)
                for i, slot in zip(chosen, slots)
            ]
            group = ScheduledGroup.run(
                [self._jobs[i] for i in chosen], variant.tree
            )
        self._schedule.append(group)
        for i in chosen:
            self._available[i] = False

        reward = group_reward(
            r_is,
            group.solo_run_time,
            group.corun_time,
            self.reward_config,
            slowdowns=group.result.slowdowns,
        )

        terminated = False
        if self._n_remaining() < 2:
            for i, avail in enumerate(self._available):
                if avail:
                    self._schedule.append(ScheduledGroup.run_solo(self._jobs[i]))
                    self._available[i] = False
            terminated = True

        info = self._info()
        if terminated:
            info["schedule"] = self._schedule
            problem = SchedulingProblem(
                window=tuple(self._jobs), c_max=self.catalog.c_max
            )
            # Structural constraints must hold by construction; the
            # throughput constraint is learned, not enforced, in
            # training (the optimizer enforces it online).
            problem.validate(self._schedule, strict_gain=False)
        return self._observe(), reward, terminated, False, info
