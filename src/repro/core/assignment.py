"""Binding jobs to the slots of a chosen partition template.

Once the agent (or a baseline's search) picks a template, concrete jobs
must fill its slots. The paper's intermediate reward ``r_i`` scores
exactly such bindings from profile data, so:

* :func:`assign_optimal` — the default (used by the environment and the
  online optimizer): the exact total-``r_i`` maximizer, solved as a
  rectangular linear-sum-assignment problem over the (job, slot) reward
  matrix — O(n^3), which both *selects* the jobs and *binds* them.
* :func:`assign_greedy` — a cheap heuristic: walk the template's slots
  from the largest compute share down, binding the still-unassigned job
  with the highest ``r_i`` for that slot. Kept for ablation.
* :func:`assign_exhaustive` — brute-force enumeration over selections
  and slot permutations (deduplicating identically-shaped slots);
  pins the optimality of :func:`assign_optimal` in tests.

All return indices into the candidate list, slot-ordered.
"""

from __future__ import annotations

import itertools

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.errors import SchedulingError
from repro.core.rewards import WindowStats, intermediate_reward
from repro.gpu.partition import PartitionTree, Slot
from repro.perfmodel.cache import CoRunCache, corun_caching_enabled
from repro.profiling.profiler import JobProfile

__all__ = [
    "assign_optimal",
    "assign_conflict_aware",
    "assign_greedy",
    "assign_exhaustive",
    "iter_slot_assignments",
    "reward_matrix",
    "CONFLICT_WEIGHT",
]

#: Weight of the profile-derived contention penalty in the
#: conflict-aware binding objective (see :func:`assign_conflict_aware`).
CONFLICT_WEIGHT = 3.0

#: Cross-call memo of per-(job, slot-shape) intermediate rewards.
#: ``r_i`` depends only on the profile, the slot's two device-level
#: fractions, and the window stats — all hashable frozen dataclasses —
#: and the same (job, shape, stats) triples recur across every binding
#: search of an episode and across episodes over fixed windows.
_REWARD_CACHE = CoRunCache(maxsize=1 << 17)


def reward_matrix(
    profiles: list[JobProfile],
    slots: list[Slot],
    stats: WindowStats,
) -> np.ndarray:
    """The ``(job, slot)`` intermediate-reward matrix, memoized.

    Slots sharing an exact ``(compute_fraction, mem_fraction)`` shape
    have identical rewards, so each distinct (job, shape) pair is
    evaluated at most once per process — the permutation loops of
    :func:`assign_exhaustive` and the local search of
    :func:`assign_conflict_aware` then index into the matrix instead of
    recomputing ``r_i``.
    """
    shapes = [(s.compute_fraction, s.mem_fraction) for s in slots]
    uniq: dict[tuple[float, float], tuple[int, Slot]] = {}
    for slot, shape in zip(slots, shapes):
        uniq.setdefault(shape, (len(uniq), slot))
    compact = np.empty((len(profiles), len(uniq)))
    if corun_caching_enabled():
        for j, profile in enumerate(profiles):
            for shape, (k, slot) in uniq.items():
                compact[j, k] = _REWARD_CACHE.get_or_compute(
                    (profile, shape, stats),
                    lambda p=profile, s=slot, st=stats: intermediate_reward(
                        p, s, st
                    ),
                )
    else:
        for j, profile in enumerate(profiles):
            for shape, (k, slot) in uniq.items():
                compact[j, k] = intermediate_reward(profile, slot, stats)
    return compact[:, [uniq[shape][0] for shape in shapes]]


def _check(tree: PartitionTree, n_candidates: int) -> list[Slot]:
    slots = tree.slots()
    if n_candidates < len(slots):
        raise SchedulingError(
            f"{len(slots)}-slot template needs at least that many candidate "
            f"jobs; got {n_candidates}"
        )
    return slots


def assign_optimal(
    tree: PartitionTree,
    profiles: list[JobProfile],
    stats: WindowStats | None = None,
) -> list[int]:
    """Exact max-total-``r_i`` selection + binding via the Hungarian
    algorithm on the rectangular (job, slot) reward matrix."""
    slots = _check(tree, len(profiles))
    if stats is None:
        stats = WindowStats.from_profiles(profiles)
    reward = reward_matrix(profiles, slots, stats)
    rows, cols = linear_sum_assignment(reward, maximize=True)
    binding = [0] * len(slots)
    for j, s in zip(rows, cols):
        binding[s] = int(j)
    return binding


def _binding_score(
    tree: PartitionTree,
    slots: list[Slot],
    binding: list[int],
    profiles: list[JobProfile],
    stats: WindowStats,
    lam: float,
    rewards: np.ndarray | None = None,
    domains: list[list[int]] | None = None,
) -> float:
    """Conflict-aware binding objective.

    Total intermediate reward minus a contention penalty computed from
    profile data only: for each memory domain, every bound job pays its
    own average DRAM demand (``Memory%``) times the summed demand of
    its domain co-residents, normalized by the domain's bandwidth
    fraction and weighted by the job's squared duration ratio (the same
    long-job emphasis ``r_i`` uses). This is the profile-visible
    estimate of the interference the performance model charges — what a
    conflict-blind assignment cannot avoid.

    ``rewards``/``domains`` let the local-search caller precompute the
    (job, slot) reward matrix and the tree's memory domains once instead
    of per candidate binding.
    """
    if rewards is None:
        rewards = reward_matrix(profiles, slots, stats)
    total = 0.0
    for s, j in enumerate(binding):
        total += rewards[j, s]
    if lam:
        if domains is None:
            domains = tree.mem_domains()
        for domain in domains:
            if len(domain) < 2:
                continue
            demands = [
                profiles[binding[s]].counters.memory_pct / 100.0 for s in domain
            ]
            alpha = slots[domain[0]].mem_fraction
            dsum = sum(demands)
            for s, d in zip(domain, demands):
                p = profiles[binding[s]]
                dur = p.solo_time / max(stats.mean_solo_time, 1e-9)
                total -= lam * d * (dsum - d) / alpha * dur**2
    return total


def assign_conflict_aware(
    tree: PartitionTree,
    profiles: list[JobProfile],
    stats: WindowStats | None = None,
    lam: float = CONFLICT_WEIGHT,
) -> list[int]:
    """Conflict-aware selection + binding.

    Starts from the :func:`assign_optimal` solution (which maximizes
    pure ``r_i``) and improves the conflict-aware objective by local
    search: swapping jobs between slots and replacing bound jobs with
    unbound candidates until a local optimum (at most a few passes —
    the neighborhood is tiny).
    """
    slots = _check(tree, len(profiles))
    if stats is None:
        stats = WindowStats.from_profiles(profiles)
    binding = assign_optimal(tree, profiles, stats)
    # The local search scores O(slots^2 + slots*jobs) candidate bindings
    # per pass; the reward matrix and memory domains are invariant
    # across all of them, so compute both once.
    rewards = reward_matrix(profiles, slots, stats)
    domains = tree.mem_domains()
    best = _binding_score(
        tree, slots, binding, profiles, stats, lam, rewards, domains
    )
    for _ in range(4):
        improved = False
        bound = set(binding)
        # swap jobs between two slots
        for a in range(len(slots)):
            for b in range(a + 1, len(slots)):
                cand = binding.copy()
                cand[a], cand[b] = cand[b], cand[a]
                score = _binding_score(
                    tree, slots, cand, profiles, stats, lam, rewards, domains
                )
                if score > best + 1e-12:
                    binding, best, improved = cand, score, True
                    bound = set(binding)
        # replace a bound job with an unbound candidate
        for a in range(len(slots)):
            for j in range(len(profiles)):
                if j in bound:
                    continue
                cand = binding.copy()
                cand[a] = j
                score = _binding_score(
                    tree, slots, cand, profiles, stats, lam, rewards, domains
                )
                if score > best + 1e-12:
                    binding, best, improved = cand, score, True
                    bound = set(binding)
        if not improved:
            break
    return binding


def assign_greedy(
    tree: PartitionTree,
    profiles: list[JobProfile],
    stats: WindowStats | None = None,
) -> list[int]:
    """Greedy ``r_i``-maximizing binding.

    Slots are visited from the largest compute fraction down so the
    most consequential placements are decided first. Returns candidate
    indices in slot order.
    """
    slots = _check(tree, len(profiles))
    if stats is None:
        stats = WindowStats.from_profiles(profiles)
    order = sorted(
        range(len(slots)),
        key=lambda i: (slots[i].compute_fraction, slots[i].mem_fraction),
        reverse=True,
    )
    rewards = reward_matrix(profiles, slots, stats)
    taken: set[int] = set()
    chosen: dict[int, int] = {}
    for slot_idx in order:
        best_job, best_r = -1, -float("inf")
        for j in range(len(profiles)):
            if j in taken:
                continue
            r = rewards[j, slot_idx]
            if r > best_r:
                best_job, best_r = j, r
        taken.add(best_job)
        chosen[slot_idx] = best_job
    return [chosen[i] for i in range(len(slots))]


def _slot_shape(slot: Slot) -> tuple[float, float]:
    return (round(slot.compute_fraction, 6), round(slot.mem_fraction, 6))


def iter_slot_assignments(
    tree: PartitionTree, n_candidates: int
) -> list[tuple[int, ...]]:
    """All distinct bindings of candidate indices to the template's slots.

    Bindings that differ only by swapping jobs between *identical*
    slots (same compute and memory shape) are collapsed — e.g. the
    ``(0.25)x4`` MPS split has one distinct binding per job subset, not
    24.
    """
    slots = _check(tree, n_candidates)
    seen: set[tuple] = set()
    out: list[tuple[int, ...]] = []
    shapes = [_slot_shape(s) for s in slots]
    for perm in itertools.permutations(range(n_candidates), len(slots)):
        # canonical key: jobs grouped by slot shape, order-free within
        key_map: dict[tuple[float, float], list[int]] = {}
        for job, shape in zip(perm, shapes):
            key_map.setdefault(shape, []).append(job)
        key = tuple(
            (shape, tuple(sorted(jobs))) for shape, jobs in sorted(key_map.items())
        )
        if key in seen:
            continue
        seen.add(key)
        out.append(perm)
    return out


def assign_exhaustive(
    tree: PartitionTree,
    profiles: list[JobProfile],
    stats: WindowStats | None = None,
) -> list[int]:
    """Binding maximizing the total intermediate reward, by enumeration."""
    slots = _check(tree, len(profiles))
    if stats is None:
        stats = WindowStats.from_profiles(profiles)
    rewards = reward_matrix(profiles, slots, stats)
    best: tuple[int, ...] | None = None
    best_r = -float("inf")
    for perm in iter_slot_assignments(tree, len(profiles)):
        total = sum(rewards[j, s] for s, j in enumerate(perm))
        if total > best_r:
            best, best_r = perm, total
    assert best is not None
    return list(best)
