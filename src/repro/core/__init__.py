"""The paper's primary contribution: RL co-scheduling + hierarchical partitioning.

Pipeline (paper Fig. 7):

1. **Offline profiling** — :mod:`repro.profiling` fills a
   :class:`~repro.profiling.repository.ProfileRepository`.
2. **Offline training** — :class:`~repro.core.trainer.OfflineTrainer`
   trains the dueling double DQN on random job queues against the
   simulated device, using the Table VI rewards.
3. **Online optimization** — :class:`~repro.core.optimizer.OnlineOptimizer`
   applies the frozen agent to a queue, emitting the co-scheduling
   groups ``L_JS`` and partitions ``L_R`` of the Section IV-A problem.

Baselines (Time Sharing, MIG Only, MPS Only, MIG+MPS Default) live in
:mod:`repro.core.baselines`; the evaluation metrics (throughput,
AppSlowdown, Fairness) in :mod:`repro.core.metrics`.
"""

from repro.core.rewards import RewardConfig, intermediate_reward, final_reward
from repro.core.features import FeatureExtractor
from repro.core.actions import ActionCatalog
from repro.core.assignment import assign_optimal, assign_greedy, assign_exhaustive
from repro.core.problem import ScheduledGroup, Schedule, SchedulingProblem
from repro.core.env import CoSchedulingEnv
from repro.core.vector_env import VectorCoSchedulingEnv
from repro.core.trainer import OfflineTrainer, TrainingResult
from repro.core.optimizer import OnlineOptimizer
from repro.core.baselines import (
    TimeSharingScheduler,
    MigOnlyScheduler,
    MpsOnlyScheduler,
    MigMpsDefaultScheduler,
)
from repro.core.oracle import OracleScheduler
from repro.core.metrics import ScheduleMetrics, evaluate_schedule

__all__ = [
    "RewardConfig",
    "intermediate_reward",
    "final_reward",
    "FeatureExtractor",
    "ActionCatalog",
    "assign_optimal",
    "assign_greedy",
    "assign_exhaustive",
    "ScheduledGroup",
    "Schedule",
    "SchedulingProblem",
    "CoSchedulingEnv",
    "VectorCoSchedulingEnv",
    "OfflineTrainer",
    "TrainingResult",
    "OnlineOptimizer",
    "TimeSharingScheduler",
    "MigOnlyScheduler",
    "MpsOnlyScheduler",
    "MigMpsDefaultScheduler",
    "OracleScheduler",
    "ScheduleMetrics",
    "evaluate_schedule",
]
