"""Fleet-level serving fast path: canonical window signatures and the
whole-window decision cache.

The online optimizer's decision for a window is a pure function of

* the *content* of the window's job profiles (not their queue order —
  the encoder sorts the window canonically, and the binders/predictor
  see profiles, never queue positions), and
* the serving policy (frozen agent weights, catalog, rerank depth).

That makes whole decisions memoizable one level above the co-run cache:
two windows holding profile-identical jobs — anywhere in the fleet, in
any submission order — resolve to the same schedule, so the second one
can replay the first one's plan without touching the Q-network.

Three pieces implement this:

* :func:`profile_signature` / :func:`window_signature` — canonical,
  order-invariant keys over profile content. Profiles are frozen and
  long-lived (the repository owns them), so signatures are memoized by
  object identity like the kernel/partition signatures in
  :mod:`repro.perfmodel.cache`.
* :func:`canonical_order` — the single job ordering both the reference
  and the fast serving path drain a window in (sorted by profile
  signature, queue index as the tie-break). Ordering at one shared
  point is what makes the memoization *bitwise* safe: assignment
  tie-breaks and float summation order are position-dependent, so
  permuted duplicates must be re-ordered identically before any
  arithmetic runs.
* :class:`SchedulePlan` / :class:`DecisionCache` — a plan stores the
  decision as (canonical positions, partition tree) per group; replaying
  it re-runs each group through the process-wide co-run cache, so the
  materialized schedule carries the identical floats the full decision
  loop would have produced, bound to the *new* window's job objects.

``DecisionCache`` rides on the bounded-LRU :class:`CoRunCache`
machinery (same eviction policy, same hit/miss accounting), so fleets
with unbounded window diversity cannot grow memory forever.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.gpu.partition import PartitionTree
from repro.perfmodel.cache import CoRunCache, partition_signature
from repro.profiling.profiler import JobProfile
from repro.core.problem import Schedule, ScheduledGroup
from repro.workloads.jobs import Job

__all__ = [
    "profile_signature",
    "window_signature",
    "canonical_order",
    "SchedulePlan",
    "DecisionCache",
    "schedule_fingerprint",
    "DEFAULT_DECISION_CACHE_SIZE",
]

#: Default bound of a fleet-level decision cache (entries). One entry
#: per distinct window signature; plans are a few tuples each.
DEFAULT_DECISION_CACHE_SIZE = 16384

#: Signature memo keyed by profile object identity (profiles are frozen
#: dataclasses held by the repository, so the id stays valid for the
#: value's lifetime; the value keeps a strong reference to the profile).
_PROFILE_SIG_MEMO: dict[int, tuple] = {}
_SIG_MEMO_LIMIT = 65536


def profile_signature(profile: JobProfile) -> tuple:
    """Canonical key for one job's schedulable content.

    Covers everything the serving path may consult about a job: the
    benchmark name (which also keys the kernel model the simulator
    executes), both solo timings, and the full Table III counter vector.
    Two jobs with equal signatures are value-interchangeable in every
    decision computation.
    """
    key = id(profile)
    hit = _PROFILE_SIG_MEMO.get(key)
    if hit is not None and hit[0] is profile:
        return hit[1]
    sig = (
        profile.benchmark_name,
        profile.solo_time,
        profile.one_gpc_time,
        tuple(profile.counters.as_vector().tolist()),
    )
    if len(_PROFILE_SIG_MEMO) >= _SIG_MEMO_LIMIT:
        _PROFILE_SIG_MEMO.clear()
    _PROFILE_SIG_MEMO[key] = (profile, sig)
    return sig


def canonical_order(profiles: list[JobProfile]) -> list[int]:
    """The serving-canonical permutation of a window.

    Jobs sort by profile signature; ties (profile-identical jobs) keep
    queue order. Every path that drains a window — reference and fast,
    memoized or not — reorders through this one function, so permuted
    submissions of the same job set run the identical float program.
    """
    sigs = [profile_signature(p) for p in profiles]
    return sorted(range(len(profiles)), key=lambda i: (sigs[i], i))


def window_signature(profiles: list[JobProfile]) -> tuple:
    """Order-invariant key of a window's content: sorted job signatures."""
    return tuple(sorted(profile_signature(p) for p in profiles))


@dataclass(frozen=True)
class SchedulePlan:
    """A window decision in replayable form.

    ``groups`` holds one ``(positions, partition)`` entry per scheduled
    group, in emission order, where positions index into the window's
    *canonically ordered* job list. The plan deliberately stores no
    :class:`~repro.core.problem.ScheduledGroup` instances — those carry
    job objects, which differ between profile-identical windows.
    """

    groups: tuple[tuple[tuple[int, ...], PartitionTree], ...]

    @classmethod
    def from_groups(
        cls, groups: list[ScheduledGroup], jobs_canonical: list[Job]
    ) -> "SchedulePlan":
        """Capture a finished decision over a canonically ordered window."""
        pos_of = {job.job_id: i for i, job in enumerate(jobs_canonical)}
        try:
            entries = tuple(
                (tuple(pos_of[j.job_id] for j in g.jobs), g.partition)
                for g in groups
            )
        except KeyError as exc:  # a group references a foreign job
            raise SchedulingError(
                f"schedule references job {exc} outside the window"
            ) from exc
        return cls(groups=entries)

    def materialize(self, jobs_canonical: list[Job]) -> list[ScheduledGroup]:
        """Replay the plan onto a (possibly different) window's jobs.

        Each group re-runs through :meth:`ScheduledGroup.run`, i.e. the
        process-wide co-run cache — profile-identical jobs share kernel
        models, so the returned groups carry bitwise-identical timings.
        """
        return [
            ScheduledGroup.run([jobs_canonical[p] for p in positions], tree)
            for positions, tree in self.groups
        ]


class DecisionCache(CoRunCache):
    """Bounded LRU over whole-window :class:`SchedulePlan` entries.

    Key entries on ``(window_signature, policy_signature)`` — the
    optimizer supplies both — and share one instance across every
    optimizer serving the *same frozen policy* (node-local or
    fleet-wide). Optimizers with different agents/catalogs must not
    share an instance: a plan replays the policy that produced it.
    """

    def __init__(self, maxsize: int = DEFAULT_DECISION_CACHE_SIZE) -> None:
        super().__init__(maxsize=maxsize)


def schedule_fingerprint(schedule: Schedule) -> tuple:
    """A comparable digest of a schedule's observable outcome.

    Per group: the member job ids, the partition layout, and the exact
    co-run/solo floats. Two schedules with equal fingerprints are
    bitwise-identical in every quantity the evaluation reads — this is
    what the serving identity tests compare across paths.
    """
    return tuple(
        (
            tuple(j.job_id for j in g.jobs),
            tuple(j.benchmark_name for j in g.jobs),
            partition_signature(g.partition),
            g.corun_time,
            g.solo_run_time,
        )
        for g in schedule.groups
    )
