"""Synchronous vectorized co-scheduling environments.

:class:`VectorCoSchedulingEnv` steps ``N`` independent
:class:`~repro.core.env.CoSchedulingEnv` instances per iteration so the
agent's network forwards are batched: one
:meth:`~repro.rl.dqn.DuelingDoubleDQNAgent.act_many` call serves all
``N`` decisions, amortizing the NN cost that dominates once the co-run
and binding layers are memoized.

Semantics follow the gymnasium ``SyncVectorEnv`` conventions:

* ``reset()`` resets every sub-environment and returns stacked
  observations plus per-env infos;
* ``step(actions)`` steps every sub-environment; a terminated
  sub-environment is **auto-reset** in the same call (configurable),
  with its final observation/info preserved under ``final_observation``
  / ``final_info`` in that env's info dict — the returned observation
  row is already the first of the next episode;
* each sub-environment keeps its own RNG stream, so a vector env over
  envs seeded ``s, s+1, ...`` reproduces the transitions of ``N``
  serial envs with those seeds exactly.

The wrapper is deliberately synchronous (no processes, no threads): the
sub-environments are already fast — memoized decisions and precomputed
observations — so IPC would cost more than it saves, and determinism
stays trivial.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import SchedulingError
from repro.core.env import CoSchedulingEnv

__all__ = ["VectorCoSchedulingEnv"]


class VectorCoSchedulingEnv:
    """N synchronous co-scheduling environments behind one batched API."""

    def __init__(self, envs: Sequence[CoSchedulingEnv], autoreset: bool = True):
        if not envs:
            raise SchedulingError("a vector env needs at least one environment")
        self.envs = list(envs)
        self.autoreset = autoreset
        first = self.envs[0]
        for env in self.envs[1:]:
            if env.observation_space.shape != first.observation_space.shape:
                raise SchedulingError(
                    "all sub-environments must share an observation shape"
                )
            if env.action_space.n != first.action_space.n:
                raise SchedulingError(
                    "all sub-environments must share an action space"
                )
        self.observation_space = first.observation_space
        self.action_space = first.action_space

    @classmethod
    def from_factory(
        cls,
        factory: Callable[[int], CoSchedulingEnv],
        n_envs: int,
        autoreset: bool = True,
    ) -> "VectorCoSchedulingEnv":
        """Build ``n_envs`` environments with ``factory(rank)``."""
        if n_envs <= 0:
            raise SchedulingError("n_envs must be positive")
        return cls([factory(rank) for rank in range(n_envs)], autoreset=autoreset)

    @property
    def num_envs(self) -> int:
        return len(self.envs)

    # ------------------------------------------------------------------
    def reset(
        self, *, seed: int | None = None
    ) -> tuple[np.ndarray, list[dict[str, Any]]]:
        """Reset every sub-environment.

        ``seed`` seeds env ``i`` with ``seed + i`` (matching ``N``
        serial envs seeded that way); ``None`` keeps each env's stream.
        """
        obs_list, infos = [], []
        for i, env in enumerate(self.envs):
            obs, info = env.reset(seed=None if seed is None else seed + i)
            obs_list.append(obs)
            infos.append(info)
        return np.stack(obs_list), infos

    def step(
        self, actions: Sequence[int] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[dict[str, Any]]]:
        """Step all sub-environments with one action each.

        Returns ``(obs, rewards, terminated, truncated, infos)`` with
        the leading dimension ``num_envs``. With ``autoreset``, a
        finishing env's row holds the next episode's initial observation
        and its info carries ``final_observation``/``final_info``.
        """
        actions = np.asarray(actions).ravel()
        if actions.shape[0] != self.num_envs:
            raise SchedulingError(
                f"expected {self.num_envs} actions; got {actions.shape[0]}"
            )
        obs_rows, rewards, terms, truncs, infos = [], [], [], [], []
        for env, action in zip(self.envs, actions):
            obs, reward, terminated, truncated, info = env.step(int(action))
            if (terminated or truncated) and self.autoreset:
                final_obs, final_info = obs, info
                obs, info = env.reset()
                info = dict(info)
                info["final_observation"] = final_obs
                info["final_info"] = final_info
            obs_rows.append(obs)
            rewards.append(reward)
            terms.append(terminated)
            truncs.append(truncated)
            infos.append(info)
        return (
            np.stack(obs_rows),
            np.asarray(rewards, dtype=np.float64),
            np.asarray(terms, dtype=bool),
            np.asarray(truncs, dtype=bool),
            infos,
        )

    def action_masks(self, infos: list[dict[str, Any]]) -> np.ndarray:
        """Stack the per-env ``action_mask`` entries of an info list."""
        return np.stack([info["action_mask"] for info in infos])

    def close(self) -> None:
        for env in self.envs:
            env.close()
