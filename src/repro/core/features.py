"""State featurization: the ``W x (f + 5)`` input layer of Table VI.

Each of the ``W`` window positions contributes ``f + 5`` features:

* ``f = 12`` — the Table III counters of the job's profile, each scaled
  by a fixed normalizer so every feature lands near [0, 1] (neural nets
  dislike mixing percentages with cycle counts);
* ``+5`` — the Table VI profile ratios (ComputeRatio, MemoryRatio,
  DurationRatio, all relative to the *current window* means), an
  availability flag (1 while the job is still schedulable, 0 once it
  has been placed into a group), and the job's class index
  (CI/MI/US -> 0/0.5/1), which the classifier derives from the same
  profile data the paper's pipeline has.

Placed jobs keep their profile features but drop their availability
flag to 0 — the agent sees what has already been consumed, mirroring
how the paper's window state "represents all the jobs in the current
job window".

The window is a *set*: two queues holding the same jobs in different
submission order pose the same decision problem. The encoder therefore
sorts the window canonically (by class, then descending solo time)
before laying out features, which makes the network permutation
invariant and is what lets a policy trained on 20 random queues
transfer to the unseen Table V mixes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulingError
from repro.profiling.classify import classify
from repro.profiling.profiler import JobProfile
from repro.rl.spaces import Box
from repro.workloads.suite import CLASS_CI, CLASS_MI, CLASS_US

__all__ = ["FeatureExtractor", "N_COUNTER_FEATURES", "N_EXTRA_FEATURES"]

#: f in the paper's input-layer formula.
N_COUNTER_FEATURES = 12
#: the +5.
N_EXTRA_FEATURES = 5

#: Fixed normalizers per counter (vector order of HardwareCounters).
_COUNTER_SCALE = np.array(
    [
        60.0,  # duration [s]
        100.0,  # memory_pct
        1e11,  # elapsed_cycles
        1e6,  # grid_size
        256.0,  # registers_per_thread
        2e12,  # dram_throughput [B/s]
        1e13,  # l1_tex_throughput
        5e12,  # l2_throughput
        1e11,  # sm_active_cycles
        100.0,  # compute_sm_pct
        32.0,  # waves_per_sm
        64.0,  # achieved_active_warps_per_sm
    ]
)

_CLASS_INDEX = {CLASS_CI: 0.0, CLASS_MI: 0.5, CLASS_US: 1.0}


class FeatureExtractor:
    """Builds the flat observation vector for a window of profiles."""

    def __init__(self, window_size: int):
        if window_size <= 0:
            raise SchedulingError("window size must be positive")
        self.window_size = window_size

    @property
    def features_per_job(self) -> int:
        return N_COUNTER_FEATURES + N_EXTRA_FEATURES

    @property
    def n_inputs(self) -> int:
        """Total input width: ``W x (f + 5)``."""
        return self.window_size * self.features_per_job

    def observation_space(self) -> Box:
        return Box(low=0.0, high=np.inf, shape=(self.n_inputs,))

    def encode(
        self, profiles: list[JobProfile], available: list[bool]
    ) -> np.ndarray:
        """Encode a window state.

        ``profiles`` are the window's jobs in queue order (length must
        not exceed the window size; shorter windows are zero-padded so
        a trained network can serve late, partially-drained windows).
        ``available[i]`` marks whether job ``i`` is still schedulable.
        """
        if len(profiles) != len(available):
            raise SchedulingError("profiles and availability flags must align")
        if len(profiles) > self.window_size:
            raise SchedulingError(
                f"window holds at most {self.window_size} jobs; got {len(profiles)}"
            )
        out = np.zeros((self.window_size, self.features_per_job))
        if profiles:
            order = sorted(
                range(len(profiles)),
                key=lambda i: (
                    _CLASS_INDEX[classify(profiles[i])],
                    -profiles[i].solo_time,
                ),
            )
            profiles = [profiles[i] for i in order]
            available = [available[i] for i in order]
            mean_compute = np.mean(
                [p.counters.compute_sm_pct for p in profiles]
            )
            mean_memory = np.mean([p.counters.memory_pct for p in profiles])
            mean_solo = np.mean([p.solo_time for p in profiles])
            for i, (p, avail) in enumerate(zip(profiles, available)):
                counters = p.counters.as_vector() / _COUNTER_SCALE
                ratios = np.array(
                    [
                        p.counters.compute_sm_pct / max(mean_compute, 1e-9),
                        p.counters.memory_pct / max(mean_memory, 1e-9),
                        p.solo_time / max(mean_solo, 1e-9),
                        1.0 if avail else 0.0,
                        _CLASS_INDEX[classify(p)],
                    ]
                )
                out[i] = np.concatenate([counters, ratios])
        return out.ravel()
