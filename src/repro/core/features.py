"""State featurization: the ``W x (f + 5)`` input layer of Table VI.

Each of the ``W`` window positions contributes ``f + 5`` features:

* ``f = 12`` — the Table III counters of the job's profile, each scaled
  by a fixed normalizer so every feature lands near [0, 1] (neural nets
  dislike mixing percentages with cycle counts);
* ``+5`` — the Table VI profile ratios (ComputeRatio, MemoryRatio,
  DurationRatio, all relative to the *current window* means), an
  availability flag (1 while the job is still schedulable, 0 once it
  has been placed into a group), and the job's class index
  (CI/MI/US -> 0/0.5/1), which the classifier derives from the same
  profile data the paper's pipeline has.

Placed jobs keep their profile features but drop their availability
flag to 0 — the agent sees what has already been consumed, mirroring
how the paper's window state "represents all the jobs in the current
job window".

The window is a *set*: two queues holding the same jobs in different
submission order pose the same decision problem. The encoder therefore
sorts the window canonically (by class, then descending solo time)
before laying out features, which makes the network permutation
invariant and is what lets a policy trained on 20 random queues
transfer to the unseen Table V mixes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulingError
from repro.profiling.classify import classify
from repro.profiling.profiler import JobProfile
from repro.rl.spaces import Box
from repro.workloads.suite import CLASS_CI, CLASS_MI, CLASS_US

__all__ = [
    "FeatureExtractor",
    "WindowEncoding",
    "N_COUNTER_FEATURES",
    "N_EXTRA_FEATURES",
]

#: f in the paper's input-layer formula.
N_COUNTER_FEATURES = 12
#: the +5.
N_EXTRA_FEATURES = 5

#: Fixed normalizers per counter (vector order of HardwareCounters).
_COUNTER_SCALE = np.array(
    [
        60.0,  # duration [s]
        100.0,  # memory_pct
        1e11,  # elapsed_cycles
        1e6,  # grid_size
        256.0,  # registers_per_thread
        2e12,  # dram_throughput [B/s]
        1e13,  # l1_tex_throughput
        5e12,  # l2_throughput
        1e11,  # sm_active_cycles
        100.0,  # compute_sm_pct
        32.0,  # waves_per_sm
        64.0,  # achieved_active_warps_per_sm
    ]
)

_CLASS_INDEX = {CLASS_CI: 0.0, CLASS_MI: 0.5, CLASS_US: 1.0}


class FeatureExtractor:
    """Builds the flat observation vector for a window of profiles."""

    def __init__(self, window_size: int):
        if window_size <= 0:
            raise SchedulingError("window size must be positive")
        self.window_size = window_size

    @property
    def features_per_job(self) -> int:
        return N_COUNTER_FEATURES + N_EXTRA_FEATURES

    @property
    def n_inputs(self) -> int:
        """Total input width: ``W x (f + 5)``."""
        return self.window_size * self.features_per_job

    def observation_space(self) -> Box:
        return Box(low=0.0, high=np.inf, shape=(self.n_inputs,))

    def encode(
        self, profiles: list[JobProfile], available: list[bool]
    ) -> np.ndarray:
        """Encode a window state.

        ``profiles`` are the window's jobs in queue order (length must
        not exceed the window size; shorter windows are zero-padded so
        a trained network can serve late, partially-drained windows).
        ``available[i]`` marks whether job ``i`` is still schedulable.
        """
        if len(profiles) != len(available):
            raise SchedulingError("profiles and availability flags must align")
        if len(profiles) > self.window_size:
            raise SchedulingError(
                f"window holds at most {self.window_size} jobs; got {len(profiles)}"
            )
        out = np.zeros((self.window_size, self.features_per_job))
        if profiles:
            order = sorted(
                range(len(profiles)),
                key=lambda i: (
                    _CLASS_INDEX[classify(profiles[i])],
                    -profiles[i].solo_time,
                ),
            )
            profiles = [profiles[i] for i in order]
            available = [available[i] for i in order]
            mean_compute = np.mean(
                [p.counters.compute_sm_pct for p in profiles]
            )
            mean_memory = np.mean([p.counters.memory_pct for p in profiles])
            mean_solo = np.mean([p.solo_time for p in profiles])
            for i, (p, avail) in enumerate(zip(profiles, available)):
                counters = p.counters.as_vector() / _COUNTER_SCALE
                ratios = np.array(
                    [
                        p.counters.compute_sm_pct / max(mean_compute, 1e-9),
                        p.counters.memory_pct / max(mean_memory, 1e-9),
                        p.solo_time / max(mean_solo, 1e-9),
                        1.0 if avail else 0.0,
                        _CLASS_INDEX[classify(p)],
                    ]
                )
                out[i] = np.concatenate([counters, ratios])
        return out.ravel()

    def precompute(self, profiles: list[JobProfile]) -> "WindowEncoding":
        """Precompute everything about a window that does not depend on
        availability (see :class:`WindowEncoding`)."""
        return WindowEncoding(self, profiles)


#: Column index of the availability flag inside one job's feature row.
_FLAG_COLUMN = N_COUNTER_FEATURES + 3


class WindowEncoding:
    """A window's observation with only the availability flags mutable.

    Of the ``W x (f + 5)`` features, everything except the availability
    flag is a pure function of the window's profiles — constant for the
    whole episode (and, with fixed training windows, across episodes).
    The constructor runs the full :meth:`FeatureExtractor.encode` logic
    once; :meth:`encode` then only writes the flag column and ravels,
    producing bitwise-identical observations at a fraction of the cost.
    """

    def __init__(self, extractor: FeatureExtractor, profiles: list[JobProfile]):
        self.extractor = extractor
        self.n_jobs = len(profiles)
        # All-available reference encoding; rows beyond the window stay 0.
        base = extractor.encode(profiles, [True] * len(profiles))
        self._base = base.reshape(extractor.window_size, extractor.features_per_job)
        # encode() sorts the window canonically; recover where each
        # original job landed so flags can be written per queue index.
        if profiles:
            order = sorted(
                range(len(profiles)),
                key=lambda i: (
                    _CLASS_INDEX[classify(profiles[i])],
                    -profiles[i].solo_time,
                ),
            )
            self._row_of_job = {job: row for row, job in enumerate(order)}
        else:
            self._row_of_job = {}

    def encode(self, available: list[bool]) -> np.ndarray:
        """The observation for an availability state (flat copy)."""
        if len(available) != self.n_jobs:
            raise SchedulingError("profiles and availability flags must align")
        out = self._base.copy()
        for job, row in self._row_of_job.items():
            out[row, _FLAG_COLUMN] = 1.0 if available[job] else 0.0
        return out.ravel()
