"""The optimization problem of Section IV-A, in executable form.

Given a window of ``W`` jobs and a concurrency cap ``C_max``, a feasible
solution is a pair ``(L_JS, L_R)``: disjoint job sets covering the
window, each with a hierarchical partition sized to its concurrency.
:class:`Schedule` carries a solution plus its simulated outcome;
:meth:`SchedulingProblem.validate` enforces every constraint from the
paper's formulation:

* ``CoRunTime(JS_i, R_i) <= SoloRunTime(JS_i)`` for every group,
* ``1 <= C_i <= C_max``,
* ``|L_JS| == |L_R|`` (structural here: each group stores its own R),
* the groups partition the window (mutually exclusive, collectively
  exhaustive, sizes summing to W).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.gpu.partition import CiNode, GiNode, PartitionTree
from repro.perfmodel.cache import cached_simulate_corun
from repro.perfmodel.corun import CoRunResult
from repro.workloads.jobs import Job

__all__ = ["solo_partition", "ScheduledGroup", "Schedule", "SchedulingProblem"]


_SOLO_PARTITION = PartitionTree(
    gis=(GiNode(1.0, (CiNode(1.0),)),), mig_enabled=False
)


def solo_partition() -> PartitionTree:
    """The trivial partition: the whole device for one job.

    Partition trees are immutable, so one shared instance serves every
    solo run — which also keeps the per-tree memos (signatures, derived
    slot structure) warm instead of re-deriving them per drain.
    """
    return _SOLO_PARTITION


@dataclass(frozen=True)
class ScheduledGroup:
    """One co-scheduling set ``JS_i`` with its resource setup ``R_i``
    and simulated outcome."""

    jobs: tuple[Job, ...]
    partition: PartitionTree
    result: CoRunResult

    @property
    def concurrency(self) -> int:
        return len(self.jobs)

    @property
    def corun_time(self) -> float:
        return self.result.makespan

    @property
    def solo_run_time(self) -> float:
        return self.result.solo_run_time

    @classmethod
    def run(cls, jobs: list[Job], partition: PartitionTree) -> "ScheduledGroup":
        """Simulate a group under a partition and record the outcome.

        Evaluations go through the process-wide
        :class:`~repro.perfmodel.cache.CoRunCache` — the simulation is
        deterministic, so repeated (group, partition) pairs (ubiquitous
        in offline training over fixed windows) are served from memory.
        """
        result = cached_simulate_corun([j.model for j in jobs], partition)
        return cls(jobs=tuple(jobs), partition=partition, result=result)

    @classmethod
    def run_solo(cls, job: Job) -> "ScheduledGroup":
        return cls.run([job], solo_partition())


@dataclass
class Schedule:
    """A complete solution: ordered groups draining one window."""

    groups: list[ScheduledGroup] = field(default_factory=list)
    method: str = "unknown"

    @property
    def jobs(self) -> list[Job]:
        return [j for g in self.groups for j in g.jobs]

    @property
    def total_time(self) -> float:
        """The objective: sum of group co-run times (groups run back to
        back on the one device)."""
        return sum(g.corun_time for g in self.groups)

    @property
    def total_solo_time(self) -> float:
        return sum(g.solo_run_time for g in self.groups)

    @property
    def throughput_gain(self) -> float:
        """Relative throughput vs. time sharing the same window."""
        return self.total_solo_time / self.total_time

    def append(self, group: ScheduledGroup) -> None:
        self.groups.append(group)


@dataclass(frozen=True)
class SchedulingProblem:
    """Problem instance: the window and its attributes (Fig. 6)."""

    window: tuple[Job, ...]
    c_max: int

    def __post_init__(self) -> None:
        if not self.window:
            raise SchedulingError("the job window is empty")
        if self.c_max < 1:
            raise SchedulingError("C_max must be at least 1")

    @property
    def w(self) -> int:
        return len(self.window)

    def validate(self, schedule: Schedule, strict_gain: bool = True) -> None:
        """Check a schedule against every Section IV-A constraint.

        ``strict_gain`` toggles the first constraint (co-run beats time
        sharing per group); schedulers enforce it via solo fallback, so
        violations indicate a scheduler bug.
        """
        window_ids = [j.job_id for j in self.window]
        scheduled_ids = [j.job_id for g in schedule.groups for j in g.jobs]
        if len(scheduled_ids) != len(set(scheduled_ids)):
            raise SchedulingError("a job appears in more than one group")
        if sorted(scheduled_ids) != sorted(window_ids):
            missing = set(window_ids) - set(scheduled_ids)
            extra = set(scheduled_ids) - set(window_ids)
            raise SchedulingError(
                f"groups must partition the window exactly "
                f"(missing={sorted(missing)}, extra={sorted(extra)})"
            )
        if sum(g.concurrency for g in schedule.groups) != self.w:
            raise SchedulingError("group sizes do not sum to W")
        for i, g in enumerate(schedule.groups):
            if not 1 <= g.concurrency <= self.c_max:
                raise SchedulingError(
                    f"group {i} has concurrency {g.concurrency}; "
                    f"allowed range is [1, {self.c_max}]"
                )
            if g.partition.n_slots != g.concurrency:
                raise SchedulingError(
                    f"group {i}: partition provides {g.partition.n_slots} "
                    f"slots for {g.concurrency} jobs"
                )
            if strict_gain and not g.result.beats_time_sharing():
                raise SchedulingError(
                    f"group {i} co-runs slower than time sharing "
                    f"({g.corun_time:.2f}s vs {g.solo_run_time:.2f}s)"
                )

    def objective(self, schedule: Schedule) -> float:
        """The minimized quantity: total co-run time over all groups."""
        return schedule.total_time
