"""Shared evaluation harness for the paper's experiments (Figs. 8–12).

Benchmarks and examples all need the same protocol:

1. train the agent offline (cached per configuration),
2. profile **every** suite program into the repository — the starred
   programs are unseen *by training*, but the online phase has their
   profiles (first submission runs exclusively and is profiled; the
   evaluation measures steady state, as the paper's does),
3. run all five methods over the Q1..Q12 windows,
4. aggregate throughput / slowdown / fairness per method and queue.

The harness memoizes trained agents and method schedules process-wide
so that e.g. the Fig. 8, 11, and 12 benchmarks (same runs, different
metrics) pay for the computation once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.actions import ActionCatalog
from repro.core.baselines import (
    MigMpsDefaultScheduler,
    MigOnlyScheduler,
    MpsOnlyScheduler,
    TimeSharingScheduler,
)
from repro.core.metrics import ScheduleMetrics, evaluate_schedule
from repro.core.optimizer import OnlineOptimizer
from repro.core.trainer import OfflineTrainer, TrainingResult
from repro.gpu.arch import A100_40GB, GpuSpec
from repro.gpu.device import SimulatedGpu
from repro.profiling.profiler import NsightProfiler
from repro.profiling.repository import ProfileRepository
from repro.workloads.generator import MixCategory, QueueGenerator, paper_queues
from repro.workloads.jobs import Job
from repro.workloads.suite import BENCHMARKS

__all__ = [
    "METHODS",
    "EvaluationConfig",
    "MethodResults",
    "profile_all_benchmarks",
    "trained_agent",
    "evaluate_methods",
    "window_size_sweep",
    "cmax_sweep",
]

#: Method names in the paper's presentation order.
METHODS = (
    "Time Sharing",
    "MIG Only (C=2)",
    "MPS Only",
    "MIG+MPS Default",
    "MIG+MPS w/ RL",
)


@dataclass(frozen=True)
class EvaluationConfig:
    """Evaluation protocol parameters (paper defaults)."""

    window_size: int = 12
    c_max: int = 4
    episodes: int = 600
    seed: int = 0

    def key(self) -> tuple:
        return (self.window_size, self.c_max, self.episodes, self.seed)


@dataclass
class MethodResults:
    """Per-queue metrics for one method."""

    method: str
    per_queue: dict[str, ScheduleMetrics] = field(default_factory=dict)

    @property
    def mean_throughput(self) -> float:
        return float(
            np.mean([m.throughput_gain for m in self.per_queue.values()])
        )

    @property
    def best_throughput(self) -> float:
        return float(
            np.max([m.throughput_gain for m in self.per_queue.values()])
        )

    @property
    def mean_slowdown(self) -> float:
        return float(
            np.mean([m.avg_slowdown for m in self.per_queue.values()])
        )

    @property
    def mean_fairness(self) -> float:
        return float(np.mean([m.fairness for m in self.per_queue.values()]))


def profile_all_benchmarks(
    repository: ProfileRepository, spec: GpuSpec = A100_40GB, noise: float = 0.01
) -> None:
    """Ensure every suite program has a stored profile.

    Models the steady state of the online phase: each program has been
    submitted at least once, so its profile is in the repository.
    """
    device = SimulatedGpu(spec)
    profiler = NsightProfiler(device, noise=noise)
    for name in BENCHMARKS:
        job = Job.submit(name)
        if not repository.has(job):
            repository.store(job, profiler.profile(job))


_TRAIN_CACHE: dict[tuple, TrainingResult] = {}


def trained_agent(config: EvaluationConfig | None = None) -> TrainingResult:
    """Train (or fetch the cached) agent for a configuration.

    ``None`` means the paper defaults. (Defaults are constructed per
    call rather than shared in the signature — a shared default instance
    is a classic aliasing trap, and keeping the dataclass frozen plus a
    ``None`` default makes the memo key unambiguous.)
    """
    config = config or EvaluationConfig()
    key = config.key()
    if key not in _TRAIN_CACHE:
        trainer = OfflineTrainer(
            window_size=config.window_size,
            c_max=config.c_max,
            seed=config.seed,
        )
        result = trainer.train(episodes=config.episodes)
        profile_all_benchmarks(result.repository)
        _TRAIN_CACHE[key] = result
    return _TRAIN_CACHE[key]


def _schedulers(config: EvaluationConfig, training: TrainingResult) -> dict:
    catalog = ActionCatalog(A100_40GB, c_max=config.c_max)
    return {
        "Time Sharing": TimeSharingScheduler(),
        "MIG Only (C=2)": MigOnlyScheduler(training.repository),
        "MPS Only": MpsOnlyScheduler(training.repository, config.c_max),
        "MIG+MPS Default": MigMpsDefaultScheduler(
            training.repository, config.c_max
        ),
        "MIG+MPS w/ RL": _RlAdapter(
            OnlineOptimizer(
                training.agent,
                training.repository,
                catalog,
                config.window_size,
            )
        ),
    }


class _RlAdapter:
    """Adapts the online optimizer to the scheduler protocol."""

    name = "MIG+MPS w/ RL"

    def __init__(self, optimizer: OnlineOptimizer):
        self.optimizer = optimizer
        self.last_overhead = 0.0

    def schedule(self, window: list[Job]):
        decision = self.optimizer.optimize(window)
        self.last_overhead = decision.overhead_fraction
        return decision.schedule


def evaluate_methods(
    config: EvaluationConfig | None = None,
    queues: dict | None = None,
    methods: tuple[str, ...] = METHODS,
) -> dict[str, MethodResults]:
    """Run the selected methods over the selected queues.

    Defaults reproduce the Fig. 8/11/12 protocol: all five methods over
    the Table V queues Q1..Q12 at ``W = 12``, ``C_max = 4``.
    """
    config = config or EvaluationConfig()
    training = trained_agent(config)
    queues = queues if queues is not None else paper_queues()
    schedulers = _schedulers(config, training)
    out: dict[str, MethodResults] = {}
    for method in methods:
        scheduler = schedulers[method]
        results = MethodResults(method=method)
        for qname, queue in queues.items():
            window = queue.window(min(config.window_size, len(queue)))
            schedule = scheduler.schedule(window)
            results.per_queue[qname] = evaluate_schedule(schedule)
        out[method] = results
    return out


def _random_eval_queues(w: int, seed: int = 1234) -> dict:
    """Category-structured random queues for window sizes other than 12
    (Table V only defines the W = 12 mixes)."""
    gen = QueueGenerator(seed=seed, training_only=False)
    queues = {}
    cats = [
        MixCategory.CI_DOMINANT,
        MixCategory.MI_DOMINANT,
        MixCategory.US_DOMINANT,
        MixCategory.BALANCED,
    ]
    i = 1
    for cat in cats:
        for _ in range(3):
            queues[f"Q{i}"] = gen.queue(cat, w=w, name=f"Q{i}")
            i += 1
    return queues


def window_size_sweep(
    sizes: tuple[int, ...] = (4, 8, 12, 16),
    base: EvaluationConfig | None = None,
    method: str = "MIG+MPS w/ RL",
) -> dict[int, float]:
    """Fig. 9: average throughput vs window size W (C_max fixed)."""
    base = base or EvaluationConfig()
    out = {}
    for w in sizes:
        cfg = EvaluationConfig(
            window_size=w,
            c_max=base.c_max,
            episodes=base.episodes,
            seed=base.seed,
        )
        queues = paper_queues() if w == 12 else _random_eval_queues(w)
        res = evaluate_methods(cfg, queues=queues, methods=(method,))
        out[w] = res[method].mean_throughput
    return out


def cmax_sweep(
    cmaxes: tuple[int, ...] = (2, 3, 4),
    base: EvaluationConfig | None = None,
    method: str = "MIG+MPS w/ RL",
) -> dict[int, float]:
    """Fig. 10: average throughput vs maximum concurrency (W fixed)."""
    base = base or EvaluationConfig()
    out = {}
    for c in cmaxes:
        cfg = EvaluationConfig(
            window_size=base.window_size,
            c_max=c,
            episodes=base.episodes,
            seed=base.seed,
        )
        res = evaluate_methods(cfg, methods=(method,))
        out[c] = res[method].mean_throughput
    return out
