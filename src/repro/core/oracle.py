"""Oracle scheduler: the policy-class upper bound.

Research aid, not a deployable method: at every step it *simulates*
each of the 29 catalog templates (with the same binding the RL
environment uses) and greedily commits the one with the best measured
rate gain — i.e. a policy with a perfect one-step value function. On
real hardware this would mean running every candidate group once per
decision, which is exactly what an online scheduler cannot do; here it
bounds what the trained agent's template-choice policy class can
achieve, and the gap between the agent and this oracle measures
training quality (see DESIGN.md "Interpretation choices").
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulingError
from repro.core.actions import ActionCatalog
from repro.core.env import CoSchedulingEnv
from repro.core.problem import Schedule, ScheduledGroup
from repro.core.rewards import WindowStats
from repro.profiling.repository import ProfileRepository
from repro.workloads.jobs import Job

__all__ = ["OracleScheduler"]


class OracleScheduler:
    """Greedy-by-simulation search over the 29-template action space."""

    name = "Oracle (simulated greedy)"

    def __init__(
        self,
        repository: ProfileRepository,
        catalog: ActionCatalog | None = None,
        window_size: int = 12,
    ):
        self.repository = repository
        self.catalog = catalog or ActionCatalog()
        self.window_size = window_size

    def schedule(self, window: list[Job]) -> Schedule:
        return self.schedule_explained(window)[0]

    def schedule_explained(
        self, window: list[Job]
    ) -> tuple[Schedule, list[dict]]:
        """Oracle schedule plus one explanation dict per greedy step.

        Each dict records the committed template's partition ``label``,
        its greedy rate-gain ``score``, the chosen ``jobs``, and whether
        the group was ``kept`` (or split back to solos for losing to
        time sharing). Used by the regret analyzer to show what the
        oracle would have picked where the agent diverged.
        """
        if not window:
            raise SchedulingError("empty window")
        if len(window) > self.window_size:
            raise SchedulingError(
                f"window of {len(window)} exceeds {self.window_size}"
            )
        # reuse the environment's binding machinery without an agent
        env = CoSchedulingEnv(
            windows=[window],
            repository=self.repository,
            catalog=self.catalog,
            window_size=self.window_size,
            shuffle_windows=False,
        )
        env.reset(options={"window_index": 0})

        jobs = list(window)
        profiles = [self.repository.lookup(j) for j in jobs]
        stats = WindowStats.from_profiles(profiles)
        env._stats = stats  # keep ratios pinned to the full window

        available = [True] * len(jobs)
        schedule = Schedule(method=self.name)
        choices: list[dict] = []
        while sum(available) >= 2:
            mask = self.catalog.mask(sum(available))
            candidates = [i for i, a in enumerate(available) if a]
            cand_profiles = [profiles[i] for i in candidates]
            best: tuple[float, ScheduledGroup, list[int], str] | None = None
            for action in np.flatnonzero(mask):
                variant = self.catalog.variant(int(action))
                binding = env._bind(variant.tree, cand_profiles)
                chosen = [candidates[b] for b in binding]
                group = ScheduledGroup.run(
                    [jobs[i] for i in chosen], variant.tree
                )
                # rate gain — the paper's r_f, the greedy criterion that
                # empirically tracks the DP optimum closest
                score = (
                    group.solo_run_time - group.corun_time
                ) / group.corun_time
                if best is None or score > best[0]:
                    best = (score, group, chosen, variant.label)
            assert best is not None
            score, group, chosen, label = best
            kept = group.result.beats_time_sharing()
            if kept:
                schedule.append(group)
            else:
                for i in chosen:
                    schedule.append(ScheduledGroup.run_solo(jobs[i]))
            choices.append({
                "label": label,
                "score": score,
                "jobs": tuple(jobs[i].benchmark_name for i in chosen),
                "kept": kept,
            })
            for i in chosen:
                available[i] = False
        for i, a in enumerate(available):
            if a:
                schedule.append(ScheduledGroup.run_solo(jobs[i]))
        return schedule, choices
