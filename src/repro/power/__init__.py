"""Power modelling and power-capped scheduling (paper Section VII).

The paper names power as the next resource dimension ("We can consider
also ... other kinds of resources, such as power"), and its closest
prior work (Arima et al., ICPP-W 2022 — reference [6]) co-optimizes
partitioning under power caps. This package implements that extension:

* :mod:`repro.power.model` — a device power model: per-job draw from
  compute/memory activity, group draw with uncore overheads, and
  energy accounting over a simulated schedule;
* :mod:`repro.power.capping` — power-capped online optimization: the
  action mask excludes group templates whose predicted draw exceeds
  the cap, so the agent's decisions stay cap-feasible by construction.
"""

from repro.power.model import PowerModel, GroupPower, schedule_energy
from repro.power.capping import PowerCappedOptimizer

__all__ = [
    "PowerModel",
    "GroupPower",
    "schedule_energy",
    "PowerCappedOptimizer",
]
