"""Device power model.

Power decomposes the way GPU vendors' own models do:

``P = P_idle + P_compute x (SM share x compute activity)
           + P_memory x (bandwidth utilization)``

Per job, the compute activity is its SM-busy duty cycle and the
bandwidth utilization its effective DRAM demand — both derivable from
the kernel model (simulation side) or the profile counters (scheduler
side). A co-run group's draw is the idle floor plus the sum of its
members' dynamic parts; energy is draw integrated over the group's
makespan.

Defaults are calibrated to the paper's evaluation card (A100 PCIe,
250 W TDP, Table II): a full-tilt compute-and-bandwidth-saturating
kernel draws the TDP, an idle board ~55 W.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.core.problem import Schedule
from repro.gpu.partition import PartitionTree
from repro.perfmodel.interference import effective_demand
from repro.workloads.kernels import KernelModel

__all__ = ["PowerModel", "GroupPower", "schedule_energy"]


@dataclass(frozen=True)
class GroupPower:
    """Power/energy accounting for one co-run group."""

    draw_watts: float
    makespan: float

    @property
    def energy_joules(self) -> float:
        return self.draw_watts * self.makespan


@dataclass(frozen=True)
class PowerModel:
    """Linear activity-based device power model."""

    idle_watts: float = 55.0
    compute_watts: float = 130.0  # at 100% SM share and activity
    memory_watts: float = 65.0  # at 100% bandwidth utilization

    def __post_init__(self) -> None:
        if min(self.idle_watts, self.compute_watts, self.memory_watts) < 0:
            raise ConfigurationError("power coefficients must be >= 0")

    @property
    def tdp_watts(self) -> float:
        """Draw of a kernel saturating both compute and bandwidth."""
        return self.idle_watts + self.compute_watts + self.memory_watts

    # ------------------------------------------------------------------
    def job_dynamic_watts(
        self, model: KernelModel, compute_fraction: float
    ) -> float:
        """Dynamic (above-idle) draw of one job at a compute share."""
        if not 0.0 < compute_fraction <= 1.0 + 1e-9:
            raise ConfigurationError(
                f"compute fraction must be in (0, 1]; got {compute_fraction}"
            )
        compute_activity = compute_fraction * model.compute_duty
        bandwidth = effective_demand(model, compute_fraction)
        return (
            self.compute_watts * compute_activity
            + self.memory_watts * bandwidth
        )

    def group_watts(
        self, models: list[KernelModel], tree: PartitionTree
    ) -> float:
        """Steady-state draw of a co-run group (all members active)."""
        slots = tree.slots()
        if len(models) != len(slots):
            raise ConfigurationError(
                f"group of {len(models)} cannot fill {len(slots)} slots"
            )
        dynamic = sum(
            self.job_dynamic_watts(m, s.compute_fraction)
            for m, s in zip(models, slots)
        )
        # dynamic draw cannot exceed what the silicon can dissipate
        return min(
            self.idle_watts + dynamic,
            self.tdp_watts,
        )

    def group_power(
        self, models: list[KernelModel], tree: PartitionTree, makespan: float
    ) -> GroupPower:
        if makespan <= 0:
            raise ConfigurationError("makespan must be positive")
        return GroupPower(
            draw_watts=self.group_watts(models, tree), makespan=makespan
        )


def schedule_energy(schedule: Schedule, model: PowerModel) -> dict:
    """Energy accounting over a completed schedule.

    Returns total energy, average draw, peak group draw, and
    energy-per-unit-of-work (joules per second of solo-equivalent work
    completed — the efficiency metric power-capped scheduling trades
    against throughput).
    """
    if not schedule.groups:
        raise ConfigurationError("cannot account an empty schedule")
    total_energy = 0.0
    peak = 0.0
    for group in schedule.groups:
        gp = model.group_power(
            [j.model for j in group.jobs], group.partition, group.corun_time
        )
        total_energy += gp.energy_joules
        peak = max(peak, gp.draw_watts)
    total_time = schedule.total_time
    return {
        "energy_joules": total_energy,
        "avg_watts": total_energy / total_time,
        "peak_watts": peak,
        "joules_per_solo_second": total_energy / schedule.total_solo_time,
    }
