"""Power-capped online optimization.

Extends the online optimizer so that every co-scheduling decision
respects a device power cap: candidate group templates whose *predicted*
draw (from profile counters — no launch needed) exceeds the cap are
masked out before the Q-ranking/reranking, so the emitted schedule is
cap-feasible by construction. When no co-run template fits the cap the
window degrades gracefully towards solo execution (the minimum-draw
configuration available without clock throttling, which is out of this
model's scope).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulingError
from repro.core.env import CoSchedulingEnv
from repro.core.optimizer import OnlineOptimizer
from repro.power.model import PowerModel
from repro.profiling.profiler import JobProfile

__all__ = ["PowerCappedOptimizer"]


class PowerCappedOptimizer(OnlineOptimizer):
    """Online optimizer with a hard group-power budget."""

    name = "MIG+MPS w/ RL (power-capped)"

    def __init__(
        self,
        *args,
        power_cap_watts: float,
        power_model: PowerModel | None = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.power_model = power_model or PowerModel()
        if power_cap_watts <= self.power_model.idle_watts:
            raise SchedulingError(
                f"power cap {power_cap_watts} W is below the idle draw "
                f"{self.power_model.idle_watts} W"
            )
        self.power_cap_watts = power_cap_watts
        self.cap_violation_fallbacks = 0

    # ------------------------------------------------------------------
    def estimate_group_watts(
        self, profiles: list[JobProfile], tree
    ) -> float:
        """Predicted group draw from profile counters only.

        Per job: compute activity = SM-busy duty (from the cycle
        counters) x its slot's compute share; bandwidth = its average
        DRAM utilization capped by what the slot's compute pace can
        drive.
        """
        pm = self.power_model
        slots = tree.slots()
        dynamic = 0.0
        for profile, slot in zip(profiles, slots):
            c = profile.counters
            duty = min(1.0, c.sm_active_cycles / max(c.elapsed_cycles, 1e-9))
            compute_activity = slot.compute_fraction * duty
            bandwidth = min(c.memory_pct / 100.0, slot.mem_fraction)
            dynamic += (
                pm.compute_watts * compute_activity
                + pm.memory_watts * bandwidth
            )
        return min(pm.idle_watts + dynamic, pm.tdp_watts)

    # ------------------------------------------------------------------
    def _select_action(
        self, env: CoSchedulingEnv, obs: np.ndarray, mask: np.ndarray
    ) -> int:
        """Q-ranked selection restricted to cap-feasible templates."""
        candidates = [i for i, a in enumerate(env._available) if a]
        cand_profiles = [env._profiles[i] for i in candidates]

        watts: dict[int, float] = {}
        feasible = mask.copy()
        for action in np.flatnonzero(mask):
            variant = env.catalog.variant(int(action))
            binding = env._bind(variant.tree, cand_profiles)
            w = self.estimate_group_watts(
                [cand_profiles[i] for i in binding], variant.tree
            )
            watts[int(action)] = w
            if w > self.power_cap_watts:
                feasible[action] = False

        if feasible.any():
            return super()._select_action(env, obs, feasible)
        # no template fits the cap: best effort — the least-drawing one
        self.cap_violation_fallbacks += 1
        return min(watts, key=watts.get)
