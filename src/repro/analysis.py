"""Analysis and reporting utilities.

Terminal-friendly (no plotting dependency) helpers used by the examples
and handy for interactive exploration:

* :func:`gantt` — ASCII Gantt chart of a schedule's groups and slots;
* :func:`convergence_stats` — windowed summary of a training run;
* :func:`comparison_table` — the Fig. 8-style method x queue matrix as
  a formatted string;
* :func:`export_results` / :func:`load_results` — JSON persistence for
  evaluation results so expensive runs can be re-analyzed offline.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.core.metrics import ScheduleMetrics
from repro.core.problem import Schedule
from repro.core.trainer import TrainingResult
from repro.gpu.partition import format_partition

__all__ = [
    "gantt",
    "convergence_stats",
    "comparison_table",
    "export_results",
    "load_results",
]


def gantt(schedule: Schedule, width: int = 72) -> str:
    """ASCII Gantt chart: one row per job, time left to right.

    Groups run back to back on the device; within a group, each job's
    bar spans from the group start to its own completion.
    """
    if not schedule.groups:
        raise ReproError("cannot chart an empty schedule")
    total = schedule.total_time
    if total <= 0:
        raise ReproError("schedule has no duration")
    scale = width / total

    lines = [
        f"schedule: {schedule.method}  "
        f"(total {total:.1f}s, gain x{schedule.throughput_gain:.2f})"
    ]
    start = 0.0
    for gi, group in enumerate(schedule.groups):
        label = format_partition(group.partition)
        lines.append(f"-- group {gi}: {label}")
        for job, finish in zip(group.jobs, group.result.finish_times):
            pre = int(start * scale)
            bar = max(1, int(finish * scale))
            name = job.benchmark_name[:14]
            lines.append(f"{name:<16s}|{' ' * pre}{'#' * bar}")
        start += group.corun_time
    axis = f"{'':16s}|0{'-' * (width - 8)}{total:7.1f}s"
    lines.append(axis)
    return "\n".join(lines)


def convergence_stats(
    result: TrainingResult, n_windows: int = 8
) -> list[dict]:
    """Windowed training diagnostics: episode range, mean return, mean
    throughput gain."""
    h = result.episode_throughputs
    r = result.episode_returns
    if not h:
        raise ReproError("training result has no episodes")
    chunk = max(1, len(h) // n_windows)
    out = []
    for i in range(0, len(h), chunk):
        out.append(
            {
                "episodes": (i, min(i + chunk, len(h))),
                "mean_return": float(np.mean(r[i : i + chunk])),
                "mean_throughput": float(np.mean(h[i : i + chunk])),
            }
        )
    return out


def comparison_table(
    results: dict[str, dict[str, ScheduleMetrics]],
    metric: str = "throughput_gain",
) -> str:
    """Format a method x queue matrix (Fig. 8/11/12 style).

    ``results`` maps method name -> {queue name -> ScheduleMetrics};
    ``metric`` is any ScheduleMetrics attribute.
    """
    if not results:
        raise ReproError("no results to tabulate")
    queues = sorted(
        {q for per_queue in results.values() for q in per_queue},
        key=lambda s: (len(s), s),
    )
    header = f"{'method':<18s} " + " ".join(f"{q:>6s}" for q in queues) + "     AM"
    lines = [header]
    for method, per_queue in results.items():
        vals = [getattr(per_queue[q], metric) for q in queues if q in per_queue]
        row = " ".join(
            f"{getattr(per_queue[q], metric):6.2f}" if q in per_queue else "     -"
            for q in queues
        )
        lines.append(f"{method:<18s} {row} {float(np.mean(vals)):6.3f}")
    return "\n".join(lines)


def export_results(
    results: dict[str, dict[str, ScheduleMetrics]], path: str | Path
) -> None:
    """Persist evaluation results (method -> queue -> metrics) as JSON."""
    payload = {
        method: {
            q: {
                "method": m.method,
                "total_time": m.total_time,
                "total_solo_time": m.total_solo_time,
                "throughput_gain": m.throughput_gain,
                "app_slowdowns": list(m.app_slowdowns),
                "avg_slowdown": m.avg_slowdown,
                "fairness": m.fairness,
            }
            for q, m in per_queue.items()
        }
        for method, per_queue in results.items()
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_results(path: str | Path) -> dict[str, dict[str, ScheduleMetrics]]:
    """Inverse of :func:`export_results`."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict):
        raise ReproError(f"malformed results file: {path}")
    out: dict[str, dict[str, ScheduleMetrics]] = {}
    for method, per_queue in payload.items():
        out[method] = {
            q: ScheduleMetrics(
                method=d["method"],
                total_time=float(d["total_time"]),
                total_solo_time=float(d["total_solo_time"]),
                throughput_gain=float(d["throughput_gain"]),
                app_slowdowns=tuple(d["app_slowdowns"]),
                avg_slowdown=float(d["avg_slowdown"]),
                fairness=float(d["fairness"]),
            )
            for q, d in per_queue.items()
        }
    return out
