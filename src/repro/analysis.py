"""Analysis and reporting utilities.

Terminal-friendly (no plotting dependency) helpers used by the examples
and handy for interactive exploration:

* :func:`gantt` — ASCII Gantt chart of a schedule's groups and slots;
* :func:`convergence_stats` — windowed summary of a training run;
* :func:`comparison_table` — the Fig. 8-style method x queue matrix as
  a formatted string;
* :func:`export_results` / :func:`load_results` — JSON persistence for
  evaluation results so expensive runs can be re-analyzed offline.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.core.metrics import ScheduleMetrics
from repro.core.problem import Schedule
from repro.core.trainer import TrainingResult
from repro.gpu.partition import format_partition

__all__ = [
    "gantt",
    "convergence_stats",
    "comparison_table",
    "export_results",
    "load_results",
    "regret_report",
    "alerts_table",
]


def gantt(schedule: Schedule, width: int = 72) -> str:
    """ASCII Gantt chart: one row per job, time left to right.

    Groups run back to back on the device; within a group, each job's
    bar spans from the group start to its own completion.
    """
    if not schedule.groups:
        raise ReproError("cannot chart an empty schedule")
    total = schedule.total_time
    if total <= 0:
        raise ReproError("schedule has no duration")
    scale = width / total

    lines = [
        f"schedule: {schedule.method}  "
        f"(total {total:.1f}s, gain x{schedule.throughput_gain:.2f})"
    ]
    start = 0.0
    for gi, group in enumerate(schedule.groups):
        label = format_partition(group.partition)
        lines.append(f"-- group {gi}: {label}")
        for job, finish in zip(group.jobs, group.result.finish_times):
            pre = int(start * scale)
            bar = max(1, int(finish * scale))
            name = job.benchmark_name[:14]
            lines.append(f"{name:<16s}|{' ' * pre}{'#' * bar}")
        start += group.corun_time
    axis = f"{'':16s}|0{'-' * (width - 8)}{total:7.1f}s"
    lines.append(axis)
    return "\n".join(lines)


def convergence_stats(
    result: TrainingResult, n_windows: int = 8
) -> list[dict]:
    """Windowed training diagnostics: episode range, mean return, mean
    throughput gain."""
    h = result.episode_throughputs
    r = result.episode_returns
    if not h:
        raise ReproError("training result has no episodes")
    chunk = max(1, len(h) // n_windows)
    out = []
    for i in range(0, len(h), chunk):
        out.append(
            {
                "episodes": (i, min(i + chunk, len(h))),
                "mean_return": float(np.mean(r[i : i + chunk])),
                "mean_throughput": float(np.mean(h[i : i + chunk])),
            }
        )
    return out


def comparison_table(
    results: dict[str, dict[str, ScheduleMetrics]],
    metric: str = "throughput_gain",
) -> str:
    """Format a method x queue matrix (Fig. 8/11/12 style).

    ``results`` maps method name -> {queue name -> ScheduleMetrics};
    ``metric`` is any ScheduleMetrics attribute.
    """
    if not results:
        raise ReproError("no results to tabulate")
    queues = sorted(
        {q for per_queue in results.values() for q in per_queue},
        key=lambda s: (len(s), s),
    )
    header = f"{'method':<18s} " + " ".join(f"{q:>6s}" for q in queues) + "     AM"
    lines = [header]
    for method, per_queue in results.items():
        vals = [getattr(per_queue[q], metric) for q in queues if q in per_queue]
        row = " ".join(
            f"{getattr(per_queue[q], metric):6.2f}" if q in per_queue else "     -"
            for q in queues
        )
        lines.append(f"{method:<18s} {row} {float(np.mean(vals)):6.3f}")
    return "\n".join(lines)


def export_results(
    results: dict[str, dict[str, ScheduleMetrics]], path: str | Path
) -> None:
    """Persist evaluation results (method -> queue -> metrics) as JSON."""
    payload = {
        method: {
            q: {
                "method": m.method,
                "total_time": m.total_time,
                "total_solo_time": m.total_solo_time,
                "throughput_gain": m.throughput_gain,
                "app_slowdowns": list(m.app_slowdowns),
                "avg_slowdown": m.avg_slowdown,
                "fairness": m.fairness,
            }
            for q, m in per_queue.items()
        }
        for method, per_queue in results.items()
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_results(path: str | Path) -> dict[str, dict[str, ScheduleMetrics]]:
    """Inverse of :func:`export_results`."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict):
        raise ReproError(f"malformed results file: {path}")
    out: dict[str, dict[str, ScheduleMetrics]] = {}
    for method, per_queue in payload.items():
        out[method] = {
            q: ScheduleMetrics(
                method=d["method"],
                total_time=float(d["total_time"]),
                total_solo_time=float(d["total_solo_time"]),
                throughput_gain=float(d["throughput_gain"]),
                app_slowdowns=tuple(d["app_slowdowns"]),
                avg_slowdown=float(d["avg_slowdown"]),
                fairness=float(d["fairness"]),
            )
            for q, d in per_queue.items()
        }
    return out


def regret_report(analyses, top: int = 10) -> str:
    """Formatted regret summary over analyzed windows.

    ``analyses`` is the :class:`~repro.insight.regret.WindowRegret`
    list the :class:`~repro.insight.regret.RegretAnalyzer` returns
    (duck-typed — only attribute access, so this module stays import-
    light). Three sections: per-window accounting vs. the oracle and
    time sharing, regret rolled up per CI/MI/US job class, and the
    ranked worst decisions.
    """
    if not analyses:
        return "no recorded windows to analyze\n"
    lines = [
        f"{'window':<12s} {'method':<16s} {'realized':>9s} {'oracle':>9s} "
        f"{'regret':>8s} {'rel':>7s} {'vs-ts':>8s}"
    ]
    for w in analyses:
        lines.append(
            f"{w.source + ':' + str(w.seq):<12s} {w.method[:16]:<16s} "
            f"{w.total_time:9.1f} {w.oracle_time:9.1f} "
            f"{w.regret_vs_oracle:8.1f} {w.relative_regret:6.1%} "
            f"{w.regret_vs_timesharing:8.1f}"
        )
    total = sum(w.total_time for w in analyses)
    oracle = sum(w.oracle_time for w in analyses)
    regret = sum(w.regret_vs_oracle for w in analyses)
    lines.append(
        f"{'TOTAL':<12s} {'':<16s} {total:9.1f} {oracle:9.1f} "
        f"{regret:8.1f} {regret / oracle if oracle else 0.0:6.1%}"
    )

    per_class: dict = {}
    for w in analyses:
        for cls, value in w.per_class.items():
            per_class[cls] = per_class.get(cls, 0.0) + value
    if per_class:
        lines.append("")
        lines.append("regret by job class (attributed seconds):")
        for cls in sorted(per_class):
            lines.append(f"  {cls:<4s} {per_class[cls]:10.1f}")

    ranked = sorted(
        (d for w in analyses for d in w.decisions),
        key=lambda d: (-d.attributed_regret, d.source, d.seq, d.step),
    )[:top]
    if ranked:
        lines.append("")
        lines.append(f"worst {len(ranked)} decisions by attributed regret:")
        lines.append(
            f"  {'decision':<14s} {'regret':>8s} {'share':>7s} "
            f"{'q-gap':>7s} {'pred-err':>9s}  group"
        )
        for d in ranked:
            where = f"{d.source}:{d.seq}.{d.step}"
            jobs = ", ".join(d.jobs)
            lines.append(
                f"  {where:<14s} {d.attributed_regret:8.1f} "
                f"{d.time_share:6.1%} {d.q_gap_to_greedy:7.3f} "
                f"{d.prediction_error:9.2f}  "
                f"C={len(d.jobs)} {d.partition} [{jobs}]"
            )
    return "\n".join(lines) + "\n"


def alerts_table(alerts) -> str:
    """Formatted view of :class:`~repro.insight.alerts.Alert` list."""
    if not alerts:
        return "no alerts raised\n"
    lines = [
        f"{'kind':<18s} {'sev':<8s} {'ts':>10s} {'value':>10s} "
        f"{'bound':>10s}  message"
    ]
    for a in alerts:
        lines.append(
            f"{a.kind:<18s} {a.severity:<8s} {a.ts:10.1f} "
            f"{a.value:10.3f} {a.threshold:10.3f}  {a.message}"
        )
    return "\n".join(lines) + "\n"
