"""Command-line interface: ``repro-gpu`` / ``python -m repro``.

Subcommands cover the pipeline stages:

* ``profile``  — profile suite programs, print the Table III counters,
  optionally persist the repository to JSON;
* ``classify`` — reproduce the Table IV CI/MI/US classification;
* ``variants`` — list partition variants per concurrency (Table VII)
  and the 19 MIG configurations;
* ``train``    — run offline training, report convergence, save weights;
* ``schedule`` — schedule one of the paper's queues (Q1..Q12) with a
  chosen method and print the resulting groups and metrics;
* ``cluster``  — drain a queue through the Slurm-like batch system on a
  multi-GPU cluster, optionally under seeded fault injection
  (``--faults RATE``) to exercise the retry/fallback machinery;
  ``--json PATH`` dumps the full accounting as one machine-readable
  document and ``--telemetry DIR`` writes trace/metrics artifacts;
* ``trace``    — run a cluster scenario with telemetry always on and
  write ``trace.json`` (Perfetto-loadable), ``metrics.prom``
  (Prometheus text format), and ``timeline.json`` (per-device busy
  intervals) to an output directory;
* ``alerts``   — run a cluster scenario with the insight anomaly/SLO
  detectors over its telemetry and print the raised alerts;
* ``fleet``    — drain an open-loop arrival process (Poisson or
  diurnal-burst, with a choice of admission policy) over a GPU fleet
  through the event engine; ``--placement`` picks the cluster-level
  router — the trained two-level ``agent`` or a classic baseline —
  and the report includes energy and fairness accounting;
* ``benchgate`` — diff a fresh training benchmark against the
  committed ``BENCH_training.json`` with tolerance bands; exits
  non-zero on regression (the CI perf gate);
* ``statcheck`` — run the repo's determinism-invariant linter
  (DESIGN.md §11) over the configured paths; exits non-zero on any
  finding not grandfathered in the baseline (the CI static gate).

``--insight DIR`` (on ``train``/``schedule``/``cluster``/``trace``/
``alerts``/``fleet``) attaches the decision flight recorder and writes
``decisions.jsonl`` plus the regret analysis (``regret.jsonl``,
``worst_decisions.txt``) to the directory.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys

import numpy as np

from repro.core.actions import ActionCatalog
from repro.core.baselines import (
    MigMpsDefaultScheduler,
    MigOnlyScheduler,
    MpsOnlyScheduler,
    TimeSharingScheduler,
)
from repro.cluster import (
    BatchSystem,
    ClusterState,
    CoSchedulingPolicy,
    FcfsPolicy,
    JobState,
    PolicySelector,
)
from repro.core.evaluation import profile_all_benchmarks
from repro.core.metrics import evaluate_schedule
from repro.core.optimizer import OnlineOptimizer
from repro.core.trainer import OfflineTrainer
from repro.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.gpu.arch import A100_40GB
from repro.gpu.device import SimulatedGpu
from repro.gpu.mig import enumerate_gi_combinations
from repro.gpu.partition import format_partition
from repro.gpu.variants import enumerate_hierarchical, enumerate_mps_only
from repro.profiling.classify import classify
from repro.profiling.profiler import NsightProfiler
from repro.profiling.repository import ProfileRepository
from repro.telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    device_timelines,
    utilization_from_timelines,
    write_artifacts,
)
from repro.workloads.generator import paper_queues
from repro.workloads.jobs import Job
from repro.workloads.suite import BENCHMARKS

__all__ = ["main"]


def _cmd_profile(args: argparse.Namespace) -> int:
    device = SimulatedGpu(A100_40GB)
    profiler = NsightProfiler(device, noise=args.noise)
    repo = ProfileRepository()
    names = args.programs or sorted(BENCHMARKS)
    print(f"{'program':<18s} {'solo[s]':>8s} {'1gpc[s]':>8s} "
          f"{'SM%':>6s} {'Mem%':>6s}")
    for name in names:
        job = Job.submit(name)
        profile = profiler.profile(job)
        repo.store(job, profile)
        c = profile.counters
        print(
            f"{name:<18s} {profile.solo_time:8.2f} {profile.one_gpc_time:8.2f} "
            f"{c.compute_sm_pct:6.1f} {c.memory_pct:6.1f}"
        )
    if args.output:
        repo.save(args.output)
        print(f"\nsaved {len(repo)} profiles to {args.output}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    device = SimulatedGpu(A100_40GB)
    profiler = NsightProfiler(device, noise=args.noise)
    by_class: dict[str, list[str]] = {"CI": [], "MI": [], "US": []}
    for name in sorted(BENCHMARKS):
        profile = profiler.profile(Job.submit(name))
        by_class[classify(profile)].append(name)
    for cls, members in by_class.items():
        print(f"{cls}: {', '.join(members)}")
    return 0


def _cmd_variants(args: argparse.Namespace) -> int:
    print("MIG GI configurations (19 on the A100):")
    for cfg in enumerate_gi_combinations(A100_40GB):
        print("  " + " + ".join(f"{w}g@{s}" for s, w in cfg))
    for c in range(2, args.c_max + 1):
        mps = enumerate_mps_only(c)
        hier = enumerate_hierarchical(A100_40GB, c)
        print(f"\nC={c}: {len(mps)} MPS-only, {len(hier)} MIG+MPS variants")
        if args.verbose:
            for v in hier:
                print(f"  {v.label}")
    return 0


def _make_recorder(args: argparse.Namespace):
    """A DecisionRecorder when ``--insight DIR`` was given, else None."""
    if not getattr(args, "insight", None):
        return None
    from repro.insight import DecisionRecorder

    return DecisionRecorder()


def _write_insight_artifacts(
    recorder, repository: ProfileRepository, out_dir: str, out=None
) -> dict[str, str]:
    """Write ``decisions.jsonl``, ``regret.jsonl`` and
    ``worst_decisions.txt`` from a populated recorder; prints the
    regret report. Returns ``{artifact_name: path}``."""
    from repro.analysis import regret_report
    from repro.insight import (
        RegretAnalyzer,
        write_decision_log,
        write_regret_jsonl,
    )

    out = out if out is not None else sys.stdout
    os.makedirs(out_dir, exist_ok=True)
    paths: dict[str, str] = {}

    paths["decisions"] = os.path.join(out_dir, "decisions.jsonl")
    n = write_decision_log(recorder, paths["decisions"])

    analyses = RegretAnalyzer(repository).analyze_recorder(recorder)
    paths["regret"] = os.path.join(out_dir, "regret.jsonl")
    write_regret_jsonl(analyses, paths["regret"])

    report = regret_report(analyses)
    paths["report"] = os.path.join(out_dir, "worst_decisions.txt")
    with open(paths["report"], "w") as fh:
        fh.write(report)

    print(f"\ninsight: {n} records over {len(analyses)} windows", file=out)
    print(report, end="", file=out)
    print("insight artifacts: " + "  ".join(paths.values()), file=out)
    return paths


def _cmd_train(args: argparse.Namespace) -> int:
    telemetry = Telemetry() if args.telemetry else NULL_TELEMETRY
    recorder = _make_recorder(args)
    trainer = OfflineTrainer(
        window_size=args.window,
        c_max=args.c_max,
        n_training_queues=args.queues,
        seed=args.seed,
        telemetry=telemetry,
        recorder=recorder,
    )
    print(
        f"training: W={args.window} C_max={args.c_max} "
        f"{args.queues} queues x {args.episodes} episodes"
    )
    result = trainer.train(episodes=args.episodes)
    h = result.episode_throughputs
    chunk = max(1, len(h) // 8)
    for i in range(0, len(h), chunk):
        print(
            f"  episodes {i:5d}-{min(i + chunk, len(h)):5d}: "
            f"mean gain {np.mean(h[i:i + chunk]):.3f}"
        )
    print(f"final epsilon: {result.agent.epsilon:.4f}")
    if args.output:
        from repro.rl.checkpoint import save_agent

        save_agent(result.agent, args.output)
        print(f"saved agent checkpoint to {args.output}")
    if args.telemetry:
        paths = write_artifacts(telemetry, args.telemetry)
        print("telemetry artifacts: " + "  ".join(paths.values()))
    if recorder is not None:
        _write_insight_artifacts(recorder, result.repository, args.insight)
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    queues = paper_queues()
    if args.queue not in queues:
        print(f"unknown queue {args.queue}; choose from {sorted(queues)}")
        return 2
    window = queues[args.queue].window(args.window)
    telemetry = Telemetry() if args.telemetry else NULL_TELEMETRY

    repo = ProfileRepository()
    profile_all_benchmarks(repo)
    recorder = _make_recorder(args)
    if recorder is not None and args.method != "rl":
        print("--insight records RL decisions only; ignoring for "
              f"method {args.method}")
        recorder = None

    if args.method == "rl":
        trainer = OfflineTrainer(
            window_size=args.window,
            c_max=args.c_max,
            seed=args.seed,
            telemetry=telemetry,
        )
        result = trainer.train(episodes=args.episodes)
        profile_all_benchmarks(result.repository)
        repo = result.repository
        optimizer = OnlineOptimizer(
            result.agent,
            result.repository,
            ActionCatalog(c_max=args.c_max),
            args.window,
            telemetry=telemetry,
            recorder=recorder,
        )
        schedule = optimizer.optimize(window).schedule
    elif args.method == "oracle":
        from repro.core.oracle import OracleScheduler

        scheduler = OracleScheduler(
            repo, ActionCatalog(c_max=args.c_max), window_size=args.window
        )
        schedule = scheduler.schedule(window)
    else:
        scheduler = {
            "timeshare": TimeSharingScheduler(),
            "mig": MigOnlyScheduler(repo),
            "mps": MpsOnlyScheduler(repo, args.c_max),
            "default": MigMpsDefaultScheduler(repo, args.c_max),
        }[args.method]
        schedule = scheduler.schedule(window)

    print(f"\nschedule for {args.queue} ({schedule.method}):")
    for i, group in enumerate(schedule.groups):
        names = ", ".join(j.benchmark_name for j in group.jobs)
        print(
            f"  group {i}: C={group.concurrency} "
            f"{format_partition(group.partition):<55s} "
            f"t={group.corun_time:7.1f}s  [{names}]"
        )
    metrics = evaluate_schedule(schedule)
    print(
        f"\nthroughput x{metrics.throughput_gain:.3f}  "
        f"avg slowdown {metrics.avg_slowdown:.3f}  "
        f"fairness {metrics.fairness:.3f}"
    )
    if args.telemetry:
        # One-shot schedulers execute nothing, so render the planned
        # schedule as back-to-back groups on a single synthetic device.
        start = 0.0
        for i, group in enumerate(schedule.groups):
            telemetry.span(
                "run_group",
                "device0",
                start,
                start + group.corun_time,
                category="schedule",
                group=i,
                concurrency=group.concurrency,
                partition=format_partition(group.partition),
                jobs=", ".join(j.benchmark_name for j in group.jobs),
            )
            start += group.corun_time
        paths = write_artifacts(
            telemetry, args.telemetry,
            makespan=schedule.total_time, n_tracks=1,
        )
        print("telemetry artifacts: " + "  ".join(paths.values()))
    if recorder is not None:
        _write_insight_artifacts(recorder, repo, args.insight)
    return 0


@dataclasses.dataclass
class _ClusterRun:
    """What ``_run_cluster_scenario`` hands back to the subcommands."""

    bs: BatchSystem
    injector: FaultInjector | None
    recorder: object | None
    repository: ProfileRepository


def _run_cluster_scenario(
    args: argparse.Namespace, telemetry: Telemetry, out=None
) -> _ClusterRun | None:
    """Train the node-local agent, assemble the batch system, drain the
    queue. Shared by ``cluster``/``trace``/``alerts``; returns ``None``
    (after printing a hint) for an unknown queue name. Progress lines go
    to ``out`` (stderr when ``--json -`` claims stdout for the document)."""
    out = out if out is not None else sys.stdout
    queues = paper_queues()
    if args.queue not in queues:
        print(
            f"unknown queue {args.queue}; choose from {sorted(queues)}",
            file=out,
        )
        return None
    names = queues[args.queue].benchmark_names * args.repeat

    trainer = OfflineTrainer(
        window_size=args.window,
        c_max=args.c_max,
        seed=args.seed,
        telemetry=telemetry,
    )
    print(
        f"training the node-local agent ({args.episodes} episodes) ...",
        file=out,
    )
    result = trainer.train(episodes=args.episodes)
    profile_all_benchmarks(result.repository)
    recorder = _make_recorder(args)
    optimizer = OnlineOptimizer(
        result.agent,
        result.repository,
        ActionCatalog(c_max=args.c_max),
        args.window,
        telemetry=telemetry,
        recorder=recorder,
    )
    selector = PolicySelector(
        co_scheduling=CoSchedulingPolicy(optimizer),
        fcfs=FcfsPolicy(),
        crowding_threshold=args.crowding,
    )
    injector = None
    if args.faults > 0:
        injector = FaultInjector(
            FaultConfig.uniform(args.faults, seed=args.fault_seed)
        )
    bs = BatchSystem(
        cluster=ClusterState.homogeneous(args.gpus),
        selector=selector,
        window_size=args.window,
        min_batch=2,
        faults=injector,
        retry=RetryPolicy(max_retries=args.max_retries),
        max_retries=args.max_retries,
        telemetry=telemetry,
    )
    for name in names:
        bs.sbatch(name)
    print(f"draining {len(names)} jobs over {args.gpus} GPUs ...", file=out)
    bs.drain()
    return _ClusterRun(bs, injector, recorder, result.repository)


def _cluster_document(
    args: argparse.Namespace, bs: BatchSystem, injector: FaultInjector | None
) -> dict:
    """The machine-readable run summary behind ``cluster --json``."""
    return {
        "queue": args.queue,
        "gpus": args.gpus,
        "window_size": args.window,
        "fault_rate": args.faults,
        "job_states": {s.value: len(bs.squeue(s)) for s in JobState},
        "sacct": bs.sacct(),
        "utilization": bs.cluster.utilization(),
        "fault_summary": injector.summary() if injector is not None else None,
        "dispatch_history": [dataclasses.asdict(r) for r in bs.history],
        "nodes": bs.sinfo(),
    }


def _cmd_cluster(args: argparse.Namespace) -> int:
    telemetry = Telemetry() if args.telemetry else NULL_TELEMETRY
    # With ``--json -`` stdout carries the document alone; the
    # human-readable report moves to stderr so the output stays pipeable.
    out = sys.stderr if args.json == "-" else sys.stdout
    run = _run_cluster_scenario(args, telemetry, out=out)
    if run is None:
        return 2
    bs, injector = run.bs, run.injector

    counts = {s.value: len(bs.squeue(s)) for s in JobState}
    print(
        "\njob states: " + "  ".join(f"{k}={v}" for k, v in counts.items()),
        file=out,
    )
    if args.json:
        doc = _cluster_document(args, bs, injector)
        if args.json == "-":
            json.dump(doc, sys.stdout, indent=1, sort_keys=True)
            sys.stdout.write("\n")
        else:
            with open(args.json, "w") as fh:
                json.dump(doc, fh, indent=1, sort_keys=True)
                fh.write("\n")
            print(f"wrote run document to {args.json}", file=out)
    if args.telemetry:
        paths = write_artifacts(
            telemetry,
            args.telemetry,
            makespan=bs.cluster.makespan,
            n_tracks=len(bs.cluster.nodes),
        )
        print("telemetry artifacts: " + "  ".join(paths.values()), file=out)
    if run.recorder is not None:
        _write_insight_artifacts(
            run.recorder, run.repository, args.insight, out=out
        )
    acct = bs.sacct()
    if acct["completed"] == 0:
        print("no job completed (fault rate too high?)", file=out)
        return 1
    for key in (
        "completed",
        "failed",
        "cancelled",
        "job_retries",
        "dispatch_retries",
        "fallback_windows",
        "degraded_groups",
    ):
        print(f"{key:<18s} {acct[key]:8d}", file=out)
    for key in ("mean_wait", "mean_turnaround", "makespan"):
        print(f"{key:<18s} {acct[key]:10.1f}s", file=out)
    print(f"{'utilization':<18s} {bs.cluster.utilization():10.3f}", file=out)
    if injector is not None:
        inj = injector.summary()
        print(
            "injected faults: "
            + "  ".join(f"{k}={v}" for k, v in inj.items()),
            file=out,
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    telemetry = Telemetry()
    run = _run_cluster_scenario(args, telemetry)
    if run is None:
        return 2
    bs, injector = run.bs, run.injector

    paths = write_artifacts(
        telemetry,
        args.out,
        makespan=bs.cluster.makespan,
        n_tracks=len(bs.cluster.nodes),
    )
    tracer = telemetry.tracer
    timelines = device_timelines(tracer)
    util = utilization_from_timelines(
        timelines, bs.cluster.makespan, len(bs.cluster.nodes)
    )
    print(f"\ntrace: {len(tracer)} records on {len(tracer.tracks())} tracks"
          f" ({tracer.dropped} dropped)")
    for track in tracer.tracks():
        n_spans = len(tracer.spans(track=track))
        n_events = len(tracer.events(track=track))
        print(f"  {track:<8s} {n_spans:4d} spans  {n_events:4d} events")
    print(f"utilization from timeline: {util:.3f} "
          f"(cluster reports {bs.cluster.utilization():.3f})")
    if injector is not None:
        inj = injector.summary()
        print("injected faults: " + "  ".join(f"{k}={v}" for k, v in inj.items()))
    for name, path in paths.items():
        print(f"{name:<9s} {path}")
    if run.recorder is not None:
        _write_insight_artifacts(run.recorder, run.repository, args.insight)
    return 0


def _cmd_alerts(args: argparse.Namespace) -> int:
    from repro.analysis import alerts_table
    from repro.insight import AlertEngine, write_alerts_jsonl

    telemetry = Telemetry()
    run = _run_cluster_scenario(args, telemetry)
    if run is None:
        return 2
    bs = run.bs

    alerts = AlertEngine(telemetry).scan()
    print()
    print(alerts_table(alerts), end="")
    if run.injector is not None:
        inj = run.injector.summary()
        print("injected faults: " + "  ".join(f"{k}={v}" for k, v in inj.items()))
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        alerts_path = os.path.join(args.out, "alerts.jsonl")
        write_alerts_jsonl(alerts, alerts_path)
        paths = write_artifacts(
            telemetry,
            args.out,
            makespan=bs.cluster.makespan,
            n_tracks=len(bs.cluster.nodes),
        )
        print(
            "alert artifacts: "
            + "  ".join([alerts_path, *paths.values()])
        )
    if run.recorder is not None:
        _write_insight_artifacts(run.recorder, run.repository, args.insight)
    if alerts and args.fail_on_alert:
        return 1
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.cluster.fleet import (
        AdmitAll,
        BoundedQueue,
        FleetEngine,
        TokenBucket,
    )
    from repro.core.serving import DecisionCache
    from repro.hierarchy import (
        JointTrainer,
        LeastLoadedPlacement,
        RandomPlacement,
        RoundRobinPlacement,
    )
    from repro.power.model import PowerModel
    from repro.workloads.arrivals import DiurnalBurstArrivals, PoissonArrivals
    from repro.workloads.suite import TRAINING_SET

    from repro.clock import perf_clock
    from repro.obs import (
        LifecycleTracer,
        PhaseTimers,
        lifecycle_chrome_trace,
        read_lifecycle_jsonl,
        write_frames_jsonl,
    )

    telemetry = Telemetry() if args.telemetry else NULL_TELEMETRY
    out = sys.stderr if args.json == "-" else sys.stdout
    pool = sorted(TRAINING_SET)[: args.pool_size]

    lifecycle = profile = decision_clock = None
    if args.telemetry:
        os.makedirs(args.telemetry, exist_ok=True)
        lifecycle = LifecycleTracer(
            seed=args.seed,
            path=os.path.join(args.telemetry, "lifecycle.jsonl"),
        )
    if args.profile:
        # wall-clock self-profiling is opt-in so the default --json
        # document stays byte-deterministic
        profile = PhaseTimers(clock=perf_clock)
        decision_clock = perf_clock

    trainer = JointTrainer(
        n_nodes=args.nodes,
        window_size=args.window,
        c_max=args.c_max,
        seed=args.seed,
        jobs_per_episode=args.jobs_per_episode,
        arrival_rate=args.rate,
        pool=pool,
        node_episodes=args.episodes,
        prioritized=True,
        crowding_threshold=args.crowding,
        affinity_weight=0.5,
    )
    if args.placement == "agent":
        print(
            f"training both levels ({args.episodes} node episodes, "
            f"{args.placement_episodes} placement episodes) ...",
            file=out,
        )
        joint = trainer.train(episodes=args.placement_episodes)
        placement = joint.placement
        node_agent = joint.node.agent
    else:
        print(
            f"training the node-level agent ({args.episodes} episodes) ...",
            file=out,
        )
        node_agent = trainer.prepare_node_level().agent
        placement = {
            "least-loaded": LeastLoadedPlacement(),
            "round-robin": RoundRobinPlacement(),
            "random": RandomPlacement(args.seed),
        }[args.placement]

    # rebuild the serving selector so --telemetry/--insight attach to
    # the optimizer that actually schedules the drain
    recorder = _make_recorder(args)
    optimizer = OnlineOptimizer(
        node_agent,
        trainer.repository,
        ActionCatalog(c_max=args.c_max),
        args.window,
        telemetry=telemetry,
        recorder=recorder,
        decision_cache=DecisionCache(),
    )
    selector = PolicySelector(
        co_scheduling=CoSchedulingPolicy(optimizer),
        fcfs=FcfsPolicy(),
        crowding_threshold=args.crowding,
    )

    if args.admission == "bounded":
        admission = BoundedQueue(args.max_pending)
    elif args.admission == "token-bucket":
        admission = TokenBucket(
            args.admit_rate if args.admit_rate else args.rate,
            burst=args.admit_burst,
        )
    else:
        admission = AdmitAll()

    if args.arrivals == "diurnal":
        peak = args.peak_rate if args.peak_rate else 2.0 * args.rate
        arrivals = DiurnalBurstArrivals(
            base_rate=args.rate,
            peak_rate=peak,
            pool=pool,
            n_jobs=args.jobs,
            period=args.period,
            seed=args.seed + 17,
        )
    else:
        arrivals = PoissonArrivals(
            rate=args.rate, pool=pool, n_jobs=args.jobs, seed=args.seed + 17
        )

    placement.reset()
    engine = FleetEngine(
        ClusterState.homogeneous(args.nodes),
        selector,
        window_size=args.window,
        admission=admission,
        placement=placement,
        power_model=PowerModel(),
        telemetry=telemetry,
        lifecycle=lifecycle,
        profile=profile,
        decision_clock=decision_clock,
    )
    if args.telemetry:
        interval = args.checkpoint_interval
        if interval is None:
            # ~32 rollup frames across the expected arrival span
            interval = max((args.jobs / args.rate) / 32.0, 1e-3)
        engine.schedule_checkpoints(interval)
    engine.attach_arrivals(arrivals)
    print(
        f"draining {args.jobs} {args.arrivals} arrivals over "
        f"{args.nodes} nodes ({placement.name} placement) ...",
        file=out,
    )
    result = engine.run()

    summary = engine.summary()
    print(file=out)
    for key in (
        "submitted", "admitted", "rejected", "completed", "failed", "windows",
    ):
        print(f"{key:<18s} {summary[key]:10d}", file=out)
    print(f"{'makespan':<18s} {result.makespan:10.1f}s", file=out)
    print(f"{'utilization':<18s} {result.utilization:10.3f}", file=out)
    for key in ("mean_wait", "mean_turnaround"):
        print(f"{key:<18s} {summary[key]:10.1f}s", file=out)
    print(f"{'fairness_jain':<18s} {summary['fairness_jain']:10.3f}", file=out)
    print(f"{'energy_joules':<18s} {summary['energy_joules']:10.0f}", file=out)
    print(f"{'joules_per_job':<18s} {summary['joules_per_job']:10.1f}", file=out)
    print(f"{'perf_per_watt':<18s} {summary['perf_per_watt']:10.4f}", file=out)
    for key in ("queue_wait_p50", "queue_wait_p95", "queue_wait_p99"):
        print(f"{key:<18s} {summary[key]:10.1f}s", file=out)
    if args.profile:
        for key in (
            "placement_decision_p50_s",
            "placement_decision_p95_s",
            "placement_decision_p99_s",
        ):
            print(f"{key:<25s} {summary[key] * 1e6:10.1f}us", file=out)
        phases = profile.to_dict()
        print(f"{'profile_total':<25s} "
              f"{phases['total_seconds'] * 1e3:10.1f}ms", file=out)
        for name, row in phases["phases"].items():
            print(f"  {name:<16s} {row['seconds'] * 1e3:8.1f}ms "
                  f"({row['fraction'] * 100:5.1f}%, "
                  f"{row['calls']} calls)", file=out)

    if args.json:
        doc = {
            "nodes": args.nodes,
            "jobs": args.jobs,
            "rate": args.rate,
            "arrivals": args.arrivals,
            "admission": args.admission,
            "placement": placement.name,
            "window_size": args.window,
            "seed": args.seed,
            "summary": summary,
            "makespan": result.makespan,
            "utilization": result.utilization,
            "placements": [list(p) for p in result.placements],
        }
        if args.profile:
            doc["phases"] = profile.to_dict()
        if args.json == "-":
            json.dump(doc, sys.stdout, indent=1, sort_keys=True)
            sys.stdout.write("\n")
        else:
            with open(args.json, "w") as fh:
                json.dump(doc, fh, indent=1, sort_keys=True)
                fh.write("\n")
            print(f"wrote run document to {args.json}", file=out)
    if args.telemetry:
        lifecycle.close()
        paths = write_artifacts(
            telemetry,
            args.telemetry,
            makespan=engine.cluster.makespan,
            n_tracks=len(engine.cluster.nodes),
        )
        frames_path = os.path.join(args.telemetry, "frames.jsonl")
        write_frames_jsonl(engine.snapshots, frames_path)
        paths["frames"] = frames_path
        lifecycle_path = os.path.join(args.telemetry, "lifecycle.jsonl")
        chrome_path = os.path.join(args.telemetry, "lifecycle_trace.json")
        with open(chrome_path, "w") as fh:
            json.dump(
                lifecycle_chrome_trace(read_lifecycle_jsonl(lifecycle_path)),
                fh, sort_keys=True,
            )
            fh.write("\n")
        paths["lifecycle"] = lifecycle_path
        paths["lifecycle_trace"] = chrome_path
        summary_path = os.path.join(args.telemetry, "fleet.json")
        with open(summary_path, "w") as fh:
            json.dump(summary, fh, indent=1, sort_keys=True)
            fh.write("\n")
        paths["fleet"] = summary_path
        print("telemetry artifacts: " + "  ".join(paths.values()), file=out)
    if recorder is not None:
        _write_insight_artifacts(
            recorder, trainer.repository, args.insight, out=out
        )
    if summary["completed"] == 0:
        print("no job completed (admission too tight?)", file=out)
        return 1
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.insight import BurnRateConfig, scan_burn_rate
    from repro.obs import load_run, render_top

    run = load_run(args.dir)
    alerts = scan_burn_rate(
        run["frames"], BurnRateConfig(slo_wait_seconds=args.slo)
    )
    print(render_top(run, alerts=alerts, width=args.width))
    if alerts and args.fail_on_burn:
        return 1
    return 0


def _cmd_benchgate(args: argparse.Namespace) -> int:
    from repro.insight import benchgate as bg

    baseline = bg.load_bench(args.baseline)
    if args.candidate:
        candidate = bg.load_bench(args.candidate)
    elif args.measure:
        print(
            f"measuring a fresh training benchmark "
            f"({args.episodes} episodes x {args.timed_runs} timed runs) ..."
        )
        candidate = bg.measure_training_bench(
            episodes=args.episodes, timed_runs=args.timed_runs
        )
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(candidate, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote measured candidate to {args.out}")
    else:
        print("benchgate needs --candidate PATH or --measure")
        return 2

    checks = bg.compare_bench(baseline, candidate, tolerance=args.tolerance)
    print(bg.format_checks(checks))

    serving_checks = []
    if args.serving_baseline:
        serving_baseline = bg.load_bench(args.serving_baseline)
        if args.serving_candidate:
            serving_candidate = bg.load_bench(args.serving_candidate)
        else:
            print("measuring a fresh serving benchmark ...")
            serving_candidate = bg.measure_serving_bench()
            if args.serving_out:
                with open(args.serving_out, "w") as fh:
                    json.dump(serving_candidate, fh, indent=2, sort_keys=True)
                    fh.write("\n")
                print(f"wrote measured serving candidate to {args.serving_out}")
        serving_checks = bg.compare_serving_bench(
            serving_baseline, serving_candidate, tolerance=args.tolerance
        )
        print(bg.format_checks(serving_checks))

    fleet_checks = []
    if args.fleet_baseline:
        fleet_baseline = bg.load_bench(args.fleet_baseline)
        if args.fleet_candidate:
            fleet_candidate = bg.load_bench(args.fleet_candidate)
        else:
            print("measuring a fresh fleet benchmark ...")
            fleet_candidate = bg.measure_fleet_bench()
            if args.fleet_out:
                with open(args.fleet_out, "w") as fh:
                    json.dump(fleet_candidate, fh, indent=2, sort_keys=True)
                    fh.write("\n")
                print(f"wrote measured fleet candidate to {args.fleet_out}")
        fleet_checks = bg.compare_fleet_bench(
            fleet_baseline, fleet_candidate, tolerance=args.tolerance
        )
        print(bg.format_checks(fleet_checks))

    hierarchy_checks = []
    if args.hierarchy_baseline:
        hierarchy_baseline = bg.load_bench(args.hierarchy_baseline)
        if args.hierarchy_candidate:
            hierarchy_candidate = bg.load_bench(args.hierarchy_candidate)
        else:
            print("measuring a fresh hierarchy benchmark ...")
            hierarchy_candidate = bg.measure_hierarchy_bench()
            if args.hierarchy_out:
                with open(args.hierarchy_out, "w") as fh:
                    json.dump(hierarchy_candidate, fh, indent=2, sort_keys=True)
                    fh.write("\n")
                print(
                    "wrote measured hierarchy candidate to "
                    f"{args.hierarchy_out}"
                )
        hierarchy_checks = bg.compare_hierarchy_bench(
            hierarchy_baseline, hierarchy_candidate, tolerance=args.tolerance
        )
        print(bg.format_checks(hierarchy_checks))

    overhead_checks = []
    if args.overhead:
        print("measuring telemetry overhead (off vs telemetry vs full) ...")
        overhead_doc = bg.measure_overhead_bench(
            n_jobs=args.overhead_jobs, timed_runs=args.overhead_runs
        )
        if args.overhead_out:
            with open(args.overhead_out, "w") as fh:
                json.dump(overhead_doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote measured overhead document to {args.overhead_out}")
        overhead_checks = bg.compare_overhead_bench(
            overhead_doc, budget=args.overhead_budget
        )
        print(bg.format_checks(overhead_checks))

    if (
        bg.gate_passes(checks)
        and bg.gate_passes(serving_checks)
        and bg.gate_passes(fleet_checks)
        and bg.gate_passes(hierarchy_checks)
        and bg.gate_passes(overhead_checks)
    ):
        print("bench gate: PASS")
        return 0
    print("bench gate: REGRESSED")
    return 1


def _cmd_statcheck(args: argparse.Namespace) -> int:
    from repro.statcheck import (
        StatcheckError,
        apply_fixes,
        check_paths,
        load_config,
        update_baseline,
    )
    from repro.statcheck.sarif import to_sarif

    fmt = "json" if args.json else args.format
    try:
        config = load_config(args.root)
        if args.clear_cache:
            cache_path = config.cache_path
            if cache_path is not None and cache_path.is_file():
                cache_path.unlink()
                print(f"removed {cache_path}", file=sys.stderr)
            return 0
        if args.fix:
            changed = apply_fixes(paths=args.paths or None, config=config)
            for rel, applied in changed:
                codes = ", ".join(sorted({rule for rule, _ in applied}))
                print(
                    f"fixed {rel}: {len(applied)} edit(s) ({codes})",
                    file=sys.stderr,
                )
            if not changed:
                print("nothing to fix", file=sys.stderr)
        report = check_paths(
            paths=args.paths or None,
            config=config,
            use_baseline=not args.no_baseline,
            use_cache=not args.no_cache,
        )
        if args.write_baseline:
            path = update_baseline(report, config)
            print(
                f"wrote {len(report.new) + len(report.grandfathered)} "
                f"finding(s) to {path}",
                file=sys.stderr,
            )
            return 0
    except StatcheckError as exc:
        print(f"statcheck: error: {exc}", file=sys.stderr)
        return 2
    if fmt == "json":
        json.dump(report.to_dict(), sys.stdout, indent=1, sort_keys=True)
        sys.stdout.write("\n")
    elif fmt == "sarif":
        json.dump(to_sarif(report), sys.stdout, indent=1, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(report.render(verbose=args.verbose))
    return 0 if report.clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gpu",
        description="Hierarchical GPU resource partitioning via RL "
        "(CLUSTER 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("profile", help="profile suite programs")
    p.add_argument("programs", nargs="*", help="program names (default: all)")
    p.add_argument("--noise", type=float, default=0.01)
    p.add_argument("--output", help="save repository JSON here")
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser("classify", help="reproduce Table IV")
    p.add_argument("--noise", type=float, default=0.02)
    p.set_defaults(fn=_cmd_classify)

    p = sub.add_parser("variants", help="list partition variants")
    p.add_argument("--c-max", type=int, default=4)
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=_cmd_variants)

    p = sub.add_parser("train", help="offline RL training")
    p.add_argument("--window", type=int, default=12)
    p.add_argument("--c-max", type=int, default=4)
    p.add_argument("--queues", type=int, default=20)
    p.add_argument("--episodes", type=int, default=2000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", help="save the trained agent checkpoint (.npz) here")
    p.add_argument("--telemetry", metavar="DIR",
                   help="record training metrics and write telemetry "
                        "artifacts to this directory")
    p.add_argument("--insight", metavar="DIR",
                   help="record per-step decisions and write decisions/"
                        "regret artifacts to this directory")
    p.set_defaults(fn=_cmd_train)

    p = sub.add_parser("schedule", help="schedule a Table V queue")
    p.add_argument("queue", help="Q1..Q12")
    p.add_argument(
        "--method",
        choices=("rl", "oracle", "timeshare", "mig", "mps", "default"),
        default="rl",
    )
    p.add_argument("--window", type=int, default=12)
    p.add_argument("--c-max", type=int, default=4)
    p.add_argument("--episodes", type=int, default=800)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--telemetry", metavar="DIR",
                   help="write trace/metrics/timeline artifacts for the "
                        "planned schedule to this directory")
    p.add_argument("--insight", metavar="DIR",
                   help="(rl only) record the optimizer's decisions and "
                        "write decisions/regret artifacts here")
    p.set_defaults(fn=_cmd_schedule)

    def add_cluster_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("queue", nargs="?", default="Q1", help="Q1..Q12")
        p.add_argument("--gpus", type=int, default=2)
        p.add_argument("--repeat", type=int, default=1,
                       help="submit the queue this many times")
        p.add_argument("--window", type=int, default=12)
        p.add_argument("--c-max", type=int, default=4)
        p.add_argument("--episodes", type=int, default=800)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--crowding", type=int, default=2,
                       help="queue depth per free GPU that triggers "
                            "co-scheduling")
        p.add_argument("--faults", type=float, default=0.0,
                       help="per-decision fault rate for every fault kind "
                            "(0 disables injection)")
        p.add_argument("--fault-seed", type=int, default=0,
                       help="seed for the deterministic fault injector")
        p.add_argument("--max-retries", type=int, default=3,
                       help="retry cap for transient faults and job re-queues")
        p.add_argument("--insight", metavar="DIR",
                       help="record per-window RL decisions and write "
                            "decisions/regret artifacts to this directory")

    p = sub.add_parser(
        "cluster",
        help="drain a queue through the Slurm-like batch system",
    )
    add_cluster_args(p)
    p.add_argument("--json", metavar="PATH",
                   help="dump accounting, job states, utilization, fault "
                        "summary, and dispatch history as one JSON document "
                        "('-' for stdout)")
    p.add_argument("--telemetry", metavar="DIR",
                   help="record traces/metrics and write trace.json, "
                        "metrics.prom, and timeline.json to this directory")
    p.set_defaults(fn=_cmd_cluster)

    p = sub.add_parser(
        "trace",
        help="run a cluster scenario with telemetry on and export "
             "Perfetto/Prometheus/timeline artifacts",
    )
    add_cluster_args(p)
    p.add_argument("--out", metavar="DIR", default="out",
                   help="artifact directory (default: out/)")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "alerts",
        help="run a cluster scenario and scan its telemetry with the "
             "insight anomaly/SLO detectors",
    )
    add_cluster_args(p)
    p.add_argument("--out", metavar="DIR",
                   help="also write alerts.jsonl plus the trace/metrics/"
                        "timeline artifacts here")
    p.add_argument("--fail-on-alert", action="store_true",
                   help="exit 1 if any alert is raised (CI gating)")
    p.set_defaults(fn=_cmd_alerts)

    p = sub.add_parser(
        "fleet",
        help="drain an open-loop arrival process over a GPU fleet "
             "through the event engine, with a choice of placement "
             "policy (two-level agent or classic baselines)",
    )
    p.add_argument("--nodes", type=int, default=16,
                   help="fleet size in single-GPU nodes")
    p.add_argument("--jobs", type=int, default=400,
                   help="arrivals to drain")
    p.add_argument("--rate", type=float, default=8.0,
                   help="mean arrival rate, jobs per simulated second")
    p.add_argument("--arrivals", choices=("poisson", "diurnal"),
                   default="poisson",
                   help="arrival process shape")
    p.add_argument("--peak-rate", type=float, default=None,
                   help="diurnal crest rate (default: 2x --rate)")
    p.add_argument("--period", type=float, default=600.0,
                   help="diurnal period in simulated seconds")
    p.add_argument("--pool-size", type=int, default=6,
                   help="distinct benchmarks in the arrival mix")
    p.add_argument("--admission",
                   choices=("admit-all", "bounded", "token-bucket"),
                   default="admit-all",
                   help="backpressure policy at the fleet door")
    p.add_argument("--max-pending", type=int, default=512,
                   help="queue bound (with --admission bounded)")
    p.add_argument("--admit-rate", type=float, default=None,
                   help="token refill rate (with --admission "
                        "token-bucket; default: --rate)")
    p.add_argument("--admit-burst", type=float, default=16.0,
                   help="token bucket burst capacity")
    p.add_argument("--placement",
                   choices=("agent", "least-loaded", "round-robin", "random"),
                   default="least-loaded",
                   help="cluster-level routing policy (agent trains the "
                        "placement DQN first)")
    p.add_argument("--window", type=int, default=6)
    p.add_argument("--c-max", type=int, default=3)
    p.add_argument("--episodes", type=int, default=12,
                   help="node-level offline training episodes")
    p.add_argument("--placement-episodes", type=int, default=10,
                   help="placement-level rollout episodes "
                        "(with --placement agent)")
    p.add_argument("--jobs-per-episode", type=int, default=100,
                   help="arrivals per placement training rollout")
    p.add_argument("--crowding", type=int, default=1,
                   help="queue depth per free GPU that triggers "
                        "co-scheduling")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", metavar="PATH",
                   help="dump accounting, energy/fairness, and the "
                        "placement trace as one JSON document "
                        "('-' for stdout)")
    p.add_argument("--telemetry", metavar="DIR",
                   help="record metrics/traces plus the observability "
                        "artifacts (lifecycle.jsonl span trees, "
                        "frames.jsonl rollups, lifecycle_trace.json, "
                        "fleet.json) to this directory")
    p.add_argument("--checkpoint-interval", type=float, default=None,
                   help="rollup frame cadence in simulated seconds "
                        "(default: ~32 frames across the arrival span; "
                        "with --telemetry)")
    p.add_argument("--profile", action="store_true",
                   help="attribute wall-clock time to engine phases and "
                        "time placement decisions (non-deterministic "
                        "fields; off by default)")
    p.add_argument("--insight", metavar="DIR",
                   help="record per-window RL decisions and write "
                        "decisions/regret artifacts to this directory")
    p.set_defaults(fn=_cmd_fleet)

    p = sub.add_parser(
        "top",
        help="render fleet health (rollup sparklines, lifecycle outcome "
             "mix, burn-rate SLO status) from a fleet run directory",
    )
    p.add_argument("dir", nargs="?", default="out",
                   help="fleet run directory holding frames.jsonl / "
                        "lifecycle.jsonl / fleet.json (default: out/)")
    p.add_argument("--slo", type=float, default=7200.0,
                   help="queue-wait p95 SLO in simulated seconds for the "
                        "burn-rate scan")
    p.add_argument("--width", type=int, default=48,
                   help="sparkline width in characters")
    p.add_argument("--fail-on-burn", action="store_true",
                   help="exit 1 if the burn-rate monitor fires (CI gating)")
    p.set_defaults(fn=_cmd_top)

    p = sub.add_parser(
        "benchgate",
        help="diff a training benchmark against the committed baseline "
             "and fail on regression",
    )
    p.add_argument("--baseline", default="BENCH_training.json",
                   help="committed baseline JSON "
                        "(default: BENCH_training.json)")
    p.add_argument("--candidate", metavar="PATH",
                   help="candidate benchmark JSON to compare")
    p.add_argument("--measure", action="store_true",
                   help="measure a fresh candidate in-process instead of "
                        "reading one")
    p.add_argument("--episodes", type=int, default=30,
                   help="episodes per measured run (with --measure)")
    p.add_argument("--timed-runs", type=int, default=2,
                   help="timed repetitions, best-of (with --measure)")
    p.add_argument("--tolerance", type=float, default=None,
                   help="allowed fractional drop per ratio check "
                        "(default 0.15)")
    p.add_argument("--out", metavar="PATH",
                   help="write the measured candidate JSON here")
    p.add_argument("--serving-baseline", metavar="PATH",
                   help="also gate the serving benchmark against this "
                        "baseline (e.g. BENCH_serving.json)")
    p.add_argument("--serving-candidate", metavar="PATH",
                   help="serving candidate JSON to compare (default: "
                        "measure a fresh one in-process)")
    p.add_argument("--serving-out", metavar="PATH",
                   help="write the measured serving candidate JSON here")
    p.add_argument("--fleet-baseline", metavar="PATH",
                   help="also gate the fleet benchmark against this "
                        "baseline (e.g. BENCH_fleet.json)")
    p.add_argument("--fleet-candidate", metavar="PATH",
                   help="fleet candidate JSON to compare (default: "
                        "measure a fresh one in-process)")
    p.add_argument("--fleet-out", metavar="PATH",
                   help="write the measured fleet candidate JSON here")
    p.add_argument("--hierarchy-baseline", metavar="PATH",
                   help="also gate the two-level placement benchmark "
                        "against this baseline (e.g. BENCH_hierarchy.json)")
    p.add_argument("--hierarchy-candidate", metavar="PATH",
                   help="hierarchy candidate JSON to compare (default: "
                        "measure a fresh one in-process)")
    p.add_argument("--hierarchy-out", metavar="PATH",
                   help="write the measured hierarchy candidate JSON here")
    p.add_argument("--overhead", action="store_true",
                   help="also measure the telemetry-overhead benchmark "
                        "and gate the telemetry-plane throughput ratio "
                        "against --overhead-budget")
    p.add_argument("--overhead-budget", type=float, default=0.85,
                   help="minimum telemetry-on / telemetry-off fleet "
                        "throughput ratio (default: 0.85)")
    p.add_argument("--overhead-jobs", type=int, default=3000,
                   help="fleet drain size for the overhead benchmark")
    p.add_argument("--overhead-runs", type=int, default=5,
                   help="interleaved timed repetitions, best-of")
    p.add_argument("--overhead-out", metavar="PATH",
                   help="write the measured overhead document JSON here")
    p.set_defaults(fn=_cmd_benchgate)

    p = sub.add_parser(
        "statcheck",
        help="run the determinism-invariant linter (DET/OBS/HYG rules); "
             "exits 1 on any finding not in the baseline",
    )
    p.add_argument("paths", nargs="*",
                   help="files/directories to check "
                        "(default: [tool.statcheck] paths)")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable report on stdout "
                        "(alias for --format json)")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text",
                   help="report format; sarif emits a SARIF 2.1.0 log "
                        "for code-scanning upload (default: text)")
    p.add_argument("--fix", action="store_true",
                   help="rewrite mechanically fixable findings in place "
                        "(DET004 epsilon comparisons, HYG001 mutable "
                        "defaults) before reporting; idempotent")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and do not write the incremental cache "
                        "(.statcheck-cache.json)")
    p.add_argument("--clear-cache", action="store_true",
                   help="delete the incremental cache and exit")
    p.add_argument("--root", metavar="DIR",
                   help="repo root holding pyproject.toml "
                        "(default: discovered from cwd)")
    p.add_argument("--no-baseline", action="store_true",
                   help="report every finding, ignoring the baseline file")
    p.add_argument("--write-baseline", action="store_true",
                   help="accept the current findings as the new baseline "
                        "(the ratchet step; the file may only shrink)")
    p.add_argument("--verbose", action="store_true",
                   help="append each rule's fix-it guidance to the report")
    p.set_defaults(fn=_cmd_statcheck)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
