"""Metrics registry: counters, gauges, and histograms with labels.

The registry is the pull side of the telemetry subsystem: components
increment/observe during a run, exporters read a consistent snapshot at
the end (or periodically). Design points:

* **Labeled series** — every metric fans out into one series per label
  set (``counter.inc(1, node="gpu00")``), mirroring the Prometheus data
  model so the text exposition falls out naturally.
* **Bounded reservoirs** — histograms keep per-series bucket counts plus
  an Algorithm-R reservoir for quantiles. The reservoir RNG is a private
  ``random.Random`` seeded from the metric name, so recording samples
  never consumes global/NumPy randomness — telemetry cannot perturb a
  seeded simulation.
* **Thread-safe** — one lock per registry guards both get-or-create and
  every series update; the simulation is mostly single-threaded but
  vectorized rollouts and future async serving must be safe.
* **Process-global default plus injectable instances** — library code
  takes a registry (via :class:`~repro.telemetry.facade.Telemetry`);
  scripts that do not care use :func:`default_registry`.
"""

from __future__ import annotations

import math
import random
import threading
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.obs.sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "SketchMetric",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
    "DEFAULT_BUCKETS",
]

# Prometheus' classic latency ladder; callers override per metric.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 300.0,
)

LabelKey = tuple  # tuple[tuple[str, str], ...], sorted by label name


def _label_key(labels: dict) -> LabelKey:
    if not labels:  # hot path: most engine metrics are label-free
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared plumbing: name, help text, per-label-set series dict."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.RLock):
        if not name or not name.replace("_", "a").isalnum():
            raise ConfigurationError(
                f"metric name must be snake_case alphanumeric; got {name!r}"
            )
        self.name = name
        self.help = help
        self._lock = lock
        self._series: dict[LabelKey, object] = {}

    def series(self) -> dict[LabelKey, object]:
        """Snapshot of label-set -> value (stable sorted order)."""
        with self._lock:
            return dict(sorted(self._series.items()))

    def labels_seen(self) -> list[dict]:
        with self._lock:
            return [dict(k) for k in sorted(self._series)]


class Counter(_Metric):
    """Monotonically increasing float per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ConfigurationError("counters can only increase")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)


class Gauge(_Metric):
    """Last-write-wins float per label set."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)


@dataclass
class _HistogramSeries:
    """Mutable per-label-set accumulator."""

    bucket_counts: list  # one slot per bound (cumulated at export)
    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    reservoir: list = None  # type: ignore[assignment]
    sketch: QuantileSketch = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.reservoir is None:
            self.reservoir = []
        if self.sketch is None:
            self.sketch = QuantileSketch()


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable view of one histogram series."""

    buckets: tuple  # ((le, cumulative_count), ...) + ("+Inf", count)
    count: int
    total: float
    minimum: float
    maximum: float
    samples: tuple
    sketch: QuantileSketch | None = None

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Quantile estimate for the full stream.

        Exact (reservoir order statistic) while every sample is still
        retained; beyond the reservoir size it switches to the series'
        :class:`~repro.obs.sketch.QuantileSketch`, whose relative error
        is bounded instead of sampled — the reservoir's value past that
        point is a lottery at fleet scale. ``q=0`` / ``q=1`` always
        return the exactly-tracked extremes.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1]; got {q}")
        if not self.samples:
            return 0.0
        if self.sketch is not None and self.count > len(self.samples):
            return self.sketch.quantile(q)
        ordered = sorted(self.samples)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]


class Histogram(_Metric):
    """Bucketed distribution with a bounded reservoir per label set."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.RLock,
        buckets: tuple = DEFAULT_BUCKETS,
        reservoir_size: int = 512,
    ):
        super().__init__(name, help, lock)
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ConfigurationError(
                "histogram buckets must be sorted, unique, and non-empty"
            )
        if reservoir_size < 1:
            raise ConfigurationError("reservoir size must be positive")
        self.buckets = tuple(float(b) for b in buckets)
        self.reservoir_size = reservoir_size
        # Private RNG: reservoir sampling must never touch global
        # randomness (determinism contract of the simulation). Seeded
        # from the metric name on purpose — the reservoir is a
        # telemetry-only estimator and must be stable per metric
        # without threading the experiment seed into the registry.
        self._rng = random.Random(  # statcheck: ignore[DET005] name-keyed telemetry reservoir, not an experiment RNG
            f"repro.telemetry:{name}"
        )

    def observe(self, value: float, count: int = 1, **labels) -> None:
        """Record ``value`` (``count`` times, exactly as ``count``
        sequential single observes — including the reservoir's RNG
        draws). Bulk counts are the batched-mirror path: hot loops keep
        a plain ``{value: n}`` dict and flush it periodically."""
        if count < 1:
            raise ConfigurationError("observe count must be positive")
        key = _label_key(labels)
        with self._lock:
            s = self._series.get(key)
            if s is None:
                s = _HistogramSeries(bucket_counts=[0] * len(self.buckets))
                self._series[key] = s
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    s.bucket_counts[i] += count
                    break
            before = s.count
            s.count += count
            s.total += value * count
            s.minimum = min(s.minimum, value)
            s.maximum = max(s.maximum, value)
            if math.isfinite(value):
                s.sketch.add(value, count)
            for i in range(count):
                if len(s.reservoir) < self.reservoir_size:
                    s.reservoir.append(value)
                else:  # Vitter's Algorithm R
                    j = self._rng.randrange(before + i + 1)
                    if j < self.reservoir_size:
                        s.reservoir[j] = value

    def snapshot(self, **labels) -> HistogramSnapshot:
        with self._lock:
            s = self._series.get(_label_key(labels))
            if s is None:
                return HistogramSnapshot(
                    buckets=tuple((b, 0) for b in self.buckets) + (("+Inf", 0),),
                    count=0,
                    total=0.0,
                    minimum=0.0,
                    maximum=0.0,
                    samples=(),
                    sketch=None,
                )
            cumulative, acc = [], 0
            for bound, n in zip(self.buckets, s.bucket_counts):
                acc += n
                cumulative.append((bound, acc))
            cumulative.append(("+Inf", s.count))
            return HistogramSnapshot(
                buckets=tuple(cumulative),
                count=s.count,
                total=s.total,
                minimum=s.minimum if s.count else 0.0,
                maximum=s.maximum if s.count else 0.0,
                samples=tuple(s.reservoir),
                sketch=s.sketch.copy(),
            )


class SketchMetric(_Metric):
    """A pure-sketch distribution metric (no fixed buckets, no reservoir).

    The streaming replacement for :class:`Histogram` where the bucket
    ladder cannot be known up front and percentiles must stay trustworthy
    at fleet scale: per-label-set :class:`~repro.obs.sketch.QuantileSketch`
    accumulators with a relative-error bound, mergeable across shards.
    Exported as a Prometheus histogram whose cumulative ``le`` bounds are
    the sketch's log buckets.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.RLock,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
    ):
        super().__init__(name, help, lock)
        self.relative_accuracy = float(relative_accuracy)

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            s = self._series.get(key)
            if s is None:
                s = QuantileSketch(relative_accuracy=self.relative_accuracy)
                self._series[key] = s
            s.add(value)

    def replace(self, sketch: QuantileSketch, **labels) -> None:
        """Bulk-sync one label set to a copy of an externally-maintained
        sketch — the constant-cost alternative to per-value ``observe``
        for hot paths that already keep their own sketch (e.g. the
        fleet engine's always-on wait sketch, synced at checkpoints)."""
        with self._lock:
            self._series[_label_key(labels)] = sketch.copy()

    def snapshot(self, **labels) -> QuantileSketch:
        """An isolated copy of one label set's sketch (empty if unseen)."""
        with self._lock:
            s = self._series.get(_label_key(labels))
            if s is None:
                return QuantileSketch(relative_accuracy=self.relative_accuracy)
            return s.copy()

    def quantile(self, q: float, **labels) -> float:
        return self.snapshot(**labels).quantile(q)

    def merged(self) -> QuantileSketch:
        """All label sets folded into one fleet-wide sketch."""
        merged = QuantileSketch(relative_accuracy=self.relative_accuracy)
        with self._lock:
            for key in sorted(self._series):
                merged.merge(self._series[key])
        return merged


class MetricsRegistry:
    """Get-or-create home for every metric of one telemetry instance."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, self._lock, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ConfigurationError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple = DEFAULT_BUCKETS,
        reservoir_size: int = 512,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, buckets=buckets, reservoir_size=reservoir_size
        )

    def sketch(
        self,
        name: str,
        help: str = "",
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
    ) -> SketchMetric:
        return self._get_or_create(
            SketchMetric, name, help, relative_accuracy=relative_accuracy
        )

    def collect(self) -> list[_Metric]:
        """All metrics in registration order (stable for exporters)."""
        with self._lock:
            return list(self._metrics.values())

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry (scripts and REPL convenience)."""
    return _DEFAULT


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one."""
    global _DEFAULT
    previous, _DEFAULT = _DEFAULT, registry
    return previous
