"""repro.telemetry — tracing, metrics, and timeline export.

The observability subsystem for the scheduler, devices, and trainer:

* :mod:`repro.telemetry.registry` — labeled counters/gauges/histograms
  behind a thread-safe :class:`MetricsRegistry` (plus a process-global
  default);
* :mod:`repro.telemetry.tracer` — a span/event :class:`Tracer` driven by
  the *simulated* clock, ring-buffered with an optional JSONL sink;
* :mod:`repro.telemetry.facade` — the :class:`Telemetry` handle
  components are instrumented against, and the no-op
  :class:`NullTelemetry` fast path (:data:`NULL_TELEMETRY`) that keeps
  uninstrumented runs bitwise-identical;
* :mod:`repro.telemetry.export` — Chrome ``trace_event`` JSON
  (Perfetto-loadable), Prometheus text exposition, and per-device
  utilization timelines.

Quick use::

    from repro.telemetry import Telemetry, write_artifacts

    tel = Telemetry()
    bs = BatchSystem(cluster, selector, telemetry=tel)
    ...
    write_artifacts(tel, "out/")   # trace.json + metrics.prom + timeline.json
"""

from repro.telemetry.facade import (
    METRIC_HELP,
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
)
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    SketchMetric,
    default_registry,
    set_default_registry,
)
from repro.telemetry.tracer import Event, JsonlSink, Span, Tracer
from repro.telemetry.export import (
    chrome_trace,
    device_timelines,
    prometheus_text,
    utilization_from_timelines,
    write_artifacts,
    write_chrome_trace,
)

__all__ = [
    "METRIC_HELP",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "SketchMetric",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
    "Event",
    "JsonlSink",
    "Span",
    "Tracer",
    "chrome_trace",
    "device_timelines",
    "prometheus_text",
    "utilization_from_timelines",
    "write_artifacts",
    "write_chrome_trace",
]
