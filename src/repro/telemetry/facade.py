"""The telemetry facade components are instrumented against.

Every instrumented class takes a ``telemetry`` object and calls a tiny
surface — :meth:`Telemetry.span`, :meth:`Telemetry.event`,
:meth:`Telemetry.count`, :meth:`Telemetry.gauge`,
:meth:`Telemetry.observe`. Two implementations exist:

* :class:`Telemetry` — records into a :class:`MetricsRegistry` and a
  :class:`Tracer`;
* :class:`NullTelemetry` — the disabled-by-default fast path. Its
  ``enabled`` flag is ``False`` and every method is a no-op, so hot
  paths guard with ``if telemetry.enabled:`` and pay one attribute read
  when telemetry is off. The module-level :data:`NULL_TELEMETRY`
  singleton is the default everywhere, which keeps existing behaviour
  bitwise-identical.

Known metric names carry canonical help strings (:data:`METRIC_HELP`)
so ad-hoc instrumentation still produces a self-describing Prometheus
exposition.
"""

from __future__ import annotations

from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    default_registry,
)
from repro.telemetry.tracer import JsonlSink, Tracer

__all__ = ["METRIC_HELP", "Telemetry", "NullTelemetry", "NULL_TELEMETRY"]

#: canonical help text for the metrics the built-in hooks emit
METRIC_HELP = {
    "windows_dispatched_total": "scheduling windows dispatched to a GPU",
    "window_gain": "per-window throughput gain over time sharing",
    "window_seconds": "simulated execution time of one dispatched window",
    "policy_fallbacks_total": "windows where the policy raised and FCFS took over",
    "dispatch_retries_total": "device-level retries spent on transient/reconfig faults",
    "degraded_groups_total": "groups that exhausted retries and ran solo",
    "jobs_submitted_total": "jobs submitted via sbatch",
    "jobs_completed_total": "jobs that reached the COMPLETED state",
    "jobs_failed_total": "jobs that spent their retry budget (terminal FAILED)",
    "job_requeues_total": "crashed jobs pushed back onto the pending queue",
    "queue_depth": "pending jobs at the latest dispatch decision",
    "device_groups_total": "co-scheduled groups executed on a device",
    "device_busy_seconds_total": "simulated seconds a device spent executing",
    "device_reconfigs_total": "successful partition (re)configurations",
    "faults_injected_total": "faults injected, by kind",
    "train_episode_return": "per-episode RL return",
    "train_episode_throughput": "per-episode schedule throughput gain",
    "train_loss": "TD training loss per gradient step",
    "train_epsilon": "exploration epsilon after the latest episode",
    "corun_cache_hit_rate": "CoRunCache hit rate over the training run",
    "decision_cache_hit_rate": "step-decision memo hit rate over the training run",
    "optimizer_decision_seconds": "online decision latency per window (injected clock)",
    "queue_wait_seconds": "per-job queue wait at dispatch (start minus submit)",
    "train_q_max": "max online-network Q at each episode's final observation",
    "alerts_raised_total": "alerts raised by the insight detectors, by kind",
    "fleet_rejected_total": "arrivals shed by admission control",
    "fleet_queue_wait_seconds": "per-job fleet queue wait (sketch percentiles)",
    "placement_decision_seconds": "placement-level routing latency per job",
    "energy_joules_total": "cumulative dispatched-group energy (power model)",
    "dispatch_batch_windows": "windows served per batched dispatch round",
}


class Telemetry:
    """Live telemetry: a registry plus a tracer behind one handle."""

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        # per-name metric handles, memoized so steady-state facade calls
        # skip the registry's locked get-or-create
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}
        self._sketches: dict = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def with_default_registry(cls, tracer: Tracer | None = None) -> "Telemetry":
        """Record metrics into the process-global registry."""
        return cls(registry=default_registry(), tracer=tracer)

    @classmethod
    def with_jsonl(cls, path, maxlen: int = 65536) -> "Telemetry":
        """Stream every trace record to ``path`` as JSON lines."""
        return cls(tracer=Tracer(maxlen=maxlen, sink=JsonlSink(path)))

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        track: str,
        start: float,
        end: float,
        category: str = "sim",
        **args,
    ) -> None:
        self.tracer.add_span(name, track, start, end, category=category, **args)

    def event(
        self, name: str, track: str, ts: float, category: str = "sim", **args
    ) -> None:
        self.tracer.add_event(name, track, ts, category=category, **args)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1.0, **labels) -> None:
        metric = self._counters.get(name)
        if metric is None:
            metric = self.registry.counter(name, METRIC_HELP.get(name, ""))
            self._counters[name] = metric
        metric.inc(amount, **labels)

    def gauge(self, name: str, value: float, **labels) -> None:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self.registry.gauge(name, METRIC_HELP.get(name, ""))
            self._gauges[name] = metric
        metric.set(value, **labels)

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple = DEFAULT_BUCKETS,
        count: int = 1,
        **labels,
    ) -> None:
        metric = self._histograms.get((name, buckets))
        if metric is None:
            metric = self.registry.histogram(
                name, METRIC_HELP.get(name, ""), buckets=buckets
            )
            self._histograms[(name, buckets)] = metric
        metric.observe(value, count, **labels)

    def sketch(self, name: str, value: float, **labels) -> None:
        """Observe into a :class:`SketchMetric` — the fleet-scale
        distribution path (mergeable, relative-error-bounded
        percentiles; no bucket ladder to choose). Hot path: the metric
        handle is memoized per name, so steady-state cost is one
        sketch ``observe``."""
        metric = self._sketches.get(name)
        if metric is None:
            metric = self.registry.sketch(name, METRIC_HELP.get(name, ""))
            self._sketches[name] = metric
        metric.observe(value, **labels)

    def sync_sketch(self, name: str, sketch, **labels) -> None:
        """Replace ``name``'s series with a copy of an externally-kept
        :class:`~repro.obs.sketch.QuantileSketch` — one O(bins) sync
        instead of one ``observe`` per hot-path value."""
        metric = self._sketches.get(name)
        if metric is None:
            metric = self.registry.sketch(name, METRIC_HELP.get(name, ""))
            self._sketches[name] = metric
        metric.replace(sketch, **labels)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush and close any streaming sink."""
        if self.tracer.sink is not None:
            self.tracer.sink.close()


class NullTelemetry(Telemetry):
    """Disabled telemetry: every call is a no-op.

    ``enabled`` is ``False`` so instrumented hot paths skip argument
    construction entirely; the methods still exist (and do nothing) for
    callers that do not bother guarding.
    """

    enabled = False

    def __init__(self):
        self.registry = None
        self.tracer = None

    def span(self, *a, **k) -> None:  # noqa: D102
        pass

    def event(self, *a, **k) -> None:  # noqa: D102
        pass

    def count(self, *a, **k) -> None:  # noqa: D102
        pass

    def gauge(self, *a, **k) -> None:  # noqa: D102
        pass

    def observe(self, *a, **k) -> None:  # noqa: D102
        pass

    def sketch(self, *a, **k) -> None:  # noqa: D102
        pass

    def sync_sketch(self, *a, **k) -> None:  # noqa: D102
        pass

    def close(self) -> None:  # noqa: D102
        pass


#: the shared no-op instance every component defaults to
NULL_TELEMETRY = NullTelemetry()
