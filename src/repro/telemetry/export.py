"""Exporters: Chrome trace JSON, Prometheus text, device timelines.

Three read-only views over one run's telemetry:

* :func:`chrome_trace` — the ``trace_event`` format understood by
  Perfetto / ``chrome://tracing``. One *thread track* per tracer track
  (one per GPU node plus system tracks), complete ``"X"`` events for
  spans and instant ``"i"`` events for point occurrences. Simulated
  seconds map to microseconds (the format's native unit).
* :func:`prometheus_text` — the text exposition format, with counters
  suffixed ``_total``-as-named, gauges plain, and full
  ``_bucket``/``_sum``/``_count`` lines for histograms.
* :func:`device_timelines` — per-track busy intervals recovered from
  ``run_group`` spans. Their summed durations reproduce each device's
  ``busy_time`` exactly, so :func:`utilization_from_timelines` agrees
  with :meth:`ClusterState.utilization` to float precision.

:func:`write_artifacts` bundles all three to a directory (the CLI's
``--telemetry PATH`` / ``trace`` output).
"""

from __future__ import annotations

import json
import os

from repro.telemetry.facade import Telemetry
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SketchMetric,
)
from repro.telemetry.tracer import Event, Span, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "device_timelines",
    "utilization_from_timelines",
    "write_artifacts",
]

_SECONDS_TO_US = 1e6


def chrome_trace(tracer: Tracer, process_name: str = "repro-gpu") -> dict:
    """Render the tracer's buffer as a ``trace_event`` document."""
    tracks = tracer.tracks()
    tid_of = {track: i + 1 for i, track in enumerate(tracks)}
    events: list[dict] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for track in tracks:
        events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": tid_of[track],
                "name": "thread_name",
                "args": {"name": track},
            }
        )
    for record in tracer.records():
        if isinstance(record, Span):
            events.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": tid_of[record.track],
                    "name": record.name,
                    "cat": record.category,
                    "ts": record.start * _SECONDS_TO_US,
                    "dur": record.duration * _SECONDS_TO_US,
                    "args": record.args,
                }
            )
        elif isinstance(record, Event):
            events.append(
                {
                    "ph": "i",
                    "pid": 1,
                    "tid": tid_of[record.track],
                    "name": record.name,
                    "cat": record.category,
                    "ts": record.ts * _SECONDS_TO_US,
                    "s": "t",  # thread-scoped instant
                    "args": record.args,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path) -> dict:
    doc = chrome_trace(tracer)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return doc


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _format_value(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _escape_label_value(v) -> str:
    """Label-value escaping per the exposition format: backslash,
    double quote, and line feed must be backslash-escaped."""
    return (
        str(v)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """HELP text escaping: backslash and line feed only."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(key, extra: dict | None = None) -> str:
    pairs = list(key) + sorted((extra or {}).items())
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry's state in Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for key, value in metric.series().items():
                lines.append(
                    f"{metric.name}{_format_labels(key)} {_format_value(value)}"
                )
        elif isinstance(metric, (Histogram, SketchMetric)):
            # both expose cumulative le-buckets: fixed ladder for the
            # classic histogram, log buckets for the quantile sketch
            for key in metric.series():
                snap = metric.snapshot(**dict(key))
                buckets = (
                    snap.buckets if isinstance(metric, Histogram)
                    else snap.to_buckets()
                )
                total = snap.total
                count = snap.count
                for bound, cumulative in buckets:
                    le = "+Inf" if bound == "+Inf" else _format_value(bound)
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_format_labels(key, {'le': le})} {cumulative}"
                    )
                lines.append(
                    f"{metric.name}_sum{_format_labels(key)} "
                    f"{_format_value(total)}"
                )
                lines.append(
                    f"{metric.name}_count{_format_labels(key)} {count}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# device utilization timelines
# ----------------------------------------------------------------------
def device_timelines(
    tracer: Tracer, span_name: str = "run_group"
) -> dict[str, list[dict]]:
    """Busy intervals per device track, chronological.

    Each interval is one executed group: ``start``/``end`` on the
    device's simulated clock plus the group's labels. Gaps between
    intervals are idle time (or fault backoff).
    """
    timelines: dict[str, list[dict]] = {}
    for span in tracer.spans(name=span_name):
        timelines.setdefault(span.track, []).append(
            {
                "start": span.start,
                "end": span.end,
                "duration": span.duration,
                **span.args,
            }
        )
    for intervals in timelines.values():
        intervals.sort(key=lambda iv: iv["start"])
    return timelines


def utilization_from_timelines(
    timelines: dict[str, list[dict]], makespan: float, n_tracks: int | None = None
) -> float:
    """Cluster utilization recomputed from exported busy intervals."""
    if makespan <= 0:
        return 0.0
    n = n_tracks if n_tracks is not None else len(timelines)
    if n <= 0:
        return 0.0
    busy = sum(
        iv["duration"] for intervals in timelines.values() for iv in intervals
    )
    return busy / (makespan * n)


# ----------------------------------------------------------------------
# one-call artifact bundle
# ----------------------------------------------------------------------
def write_artifacts(
    telemetry: Telemetry, out_dir, makespan: float | None = None,
    n_tracks: int | None = None,
) -> dict[str, str]:
    """Write ``trace.json``, ``metrics.prom`` and ``timeline.json``.

    Returns ``{artifact_name: path}``. ``makespan``/``n_tracks`` refine
    the utilization figure embedded in the timeline document.
    """
    os.makedirs(out_dir, exist_ok=True)
    paths: dict[str, str] = {}

    trace_path = os.path.join(out_dir, "trace.json")
    write_chrome_trace(telemetry.tracer, trace_path)
    paths["trace"] = trace_path

    prom_path = os.path.join(out_dir, "metrics.prom")
    with open(prom_path, "w") as fh:
        fh.write(prometheus_text(telemetry.registry))
    paths["metrics"] = prom_path

    timelines = device_timelines(telemetry.tracer)
    span = makespan
    if span is None:
        span = max(
            (iv["end"] for ivs in timelines.values() for iv in ivs),
            default=0.0,
        )
    doc = {
        "makespan": span,
        "utilization": utilization_from_timelines(timelines, span, n_tracks),
        "devices": timelines,
    }
    timeline_path = os.path.join(out_dir, "timeline.json")
    with open(timeline_path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    paths["timeline"] = timeline_path
    return paths
