"""Span/event tracer driven by the *simulated* clock.

Unlike a wall-clock tracer, every timestamp here is supplied by the
caller from the simulation's own time base (``SimulatedGpu.clock``,
``BatchSystem.now``). Spans are recorded *complete* — the simulation
always knows both endpoints of an interval when it happens — which
keeps the API a single call and makes the tracer trivially
deterministic: identical runs produce identical traces.

Sinks:

* a **ring buffer** (``collections.deque(maxlen=...)``) always holds the
  most recent records for in-process inspection and export; overflow is
  counted, never raised;
* an optional **JSONL sink** streams every record to disk as it is
  recorded, so a crashed run still leaves a usable trace behind.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["Span", "Event", "JsonlSink", "Tracer"]


@dataclass(frozen=True)
class Span:
    """A named interval on one track (e.g. a window on one GPU)."""

    name: str
    category: str
    track: str
    start: float
    end: float
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "cat": self.category,
            "track": self.track,
            "start": self.start,
            "end": self.end,
            "args": self.args,
        }


@dataclass(frozen=True)
class Event:
    """An instantaneous occurrence on one track (fault, fallback, ...)."""

    name: str
    category: str
    track: str
    ts: float
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "type": "event",
            "name": self.name,
            "cat": self.category,
            "track": self.track,
            "ts": self.ts,
            "args": self.args,
        }


class JsonlSink:
    """Append-only JSON-lines writer for trace records."""

    def __init__(self, path):
        self.path = path
        self._fh = open(path, "w")
        self.records_written = 0

    def write(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self.records_written += 1

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Tracer:
    """Ring-buffered recorder of :class:`Span`/:class:`Event` records."""

    def __init__(self, maxlen: int = 65536, sink: JsonlSink | None = None):
        if maxlen < 1:
            raise ConfigurationError("tracer ring buffer needs maxlen >= 1")
        self.maxlen = maxlen
        self._records: deque = deque(maxlen=maxlen)
        self.sink = sink
        self.dropped = 0  # records pushed out of the ring buffer
        self.total_recorded = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def add_span(
        self,
        name: str,
        track: str,
        start: float,
        end: float,
        category: str = "sim",
        **args,
    ) -> Span:
        if end < start:
            raise ConfigurationError(
                f"span {name!r} ends before it starts ({end} < {start})"
            )
        span = Span(
            name=name, category=category, track=track,
            start=float(start), end=float(end), args=args,
        )
        self._push(span)
        return span

    def add_event(
        self,
        name: str,
        track: str,
        ts: float,
        category: str = "sim",
        **args,
    ) -> Event:
        event = Event(
            name=name, category=category, track=track, ts=float(ts), args=args,
        )
        self._push(event)
        return event

    def _push(self, record) -> None:
        if len(self._records) == self.maxlen:
            self.dropped += 1
        self._records.append(record)
        self.total_recorded += 1
        if self.sink is not None:
            self.sink.write(record.to_dict())

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def records(self) -> list:
        """Every buffered record in insertion (chronological) order."""
        return list(self._records)

    def spans(
        self, name: str | None = None, track: str | None = None
    ) -> list[Span]:
        return [
            r
            for r in self._records
            if isinstance(r, Span)
            and (name is None or r.name == name)
            and (track is None or r.track == track)
        ]

    def events(
        self, name: str | None = None, track: str | None = None
    ) -> list[Event]:
        return [
            r
            for r in self._records
            if isinstance(r, Event)
            and (name is None or r.name == name)
            and (track is None or r.track == track)
        ]

    def tracks(self) -> list[str]:
        """Distinct track names, sorted (stable exporter ordering)."""
        return sorted({r.track for r in self._records})

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._records)
