"""Solo-run scaling model (roofline with Amdahl compute scaling).

A kernel's run time under an allocation ``(beta, alpha)`` — fractions of
full-device compute and bandwidth — follows a two-phase overlap model:

* the compute phase inflates by Amdahl's law in ``beta``
  (``(1 - f) + f / beta``),
* the memory phase inflates when the granted bandwidth drops below the
  kernel's unconstrained demand (``demand / min(demand, alpha)``),
* the two phases overlap by the kernel's overlap factor.

This reproduces the Section III observations that motivate the paper:
compute-bound kernels keep scaling with SM share, bandwidth-bound
kernels flat-line once ``alpha`` covers their demand, and unscalable
kernels are insensitive to both.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.kernels import KernelModel

__all__ = ["solo_time", "allocation_time", "speedup_curve", "efficiency"]


def solo_time(model: KernelModel) -> float:
    """Solo execution time on the full device."""
    return model.solo_time


def allocation_time(
    model: KernelModel,
    compute_fraction: float,
    bandwidth_fraction: float,
    interference_pressure: float = 0.0,
) -> float:
    """Execution time under a partial allocation (possibly with
    co-runner pressure on the memory domain)."""
    return model.execution_time(
        compute_fraction, bandwidth_fraction, interference_pressure
    )


def speedup_curve(
    model: KernelModel,
    compute_fractions: np.ndarray,
    bandwidth_fraction: float = 1.0,
) -> np.ndarray:
    """Speedup relative to the full device across compute allocations.

    Vectorized over ``compute_fractions`` for plotting/benchmark use.
    """
    fracs = np.asarray(compute_fractions, dtype=float)
    if np.any(fracs <= 0) or np.any(fracs > 1 + 1e-9):
        raise ValueError("compute fractions must lie in (0, 1]")
    f = model.parallel_fraction
    effective = np.minimum(fracs / model.saturation_fraction, 1.0)
    tc = model.t_compute * ((1.0 - f) + f / effective)
    achieved = np.minimum(model.bw_demand, bandwidth_fraction)
    tm = model.t_memory * (model.bw_demand / achieved)
    hi = np.maximum(tc, tm)
    lo = np.minimum(tc, tm)
    times = hi + (1.0 - model.overlap) * lo
    return model.solo_time / times


def efficiency(
    model: KernelModel, compute_fraction: float, bandwidth_fraction: float = 1.0
) -> float:
    """Parallel efficiency of an allocation: speedup / resource share."""
    t = allocation_time(model, compute_fraction, bandwidth_fraction)
    return (model.solo_time / t) / compute_fraction
