"""Bandwidth sharing and interference inside one memory domain.

A *memory domain* is the set of job slots that share LLC/HBM resources:
all slots of one MIG GPU instance, or every slot on the device when MIG
is off. MPS provides no memory isolation, so co-runners in a domain
affect each other in two ways:

1. **Bandwidth capacity** — the domain's bandwidth ``alpha`` (fraction
   of device peak) is finite. When the summed effective demand exceeds
   it, jobs receive demand-proportional shares (the memory controller
   is demand-fair). Below saturation every job can still burst to the
   full domain bandwidth during its memory phase.
2. **Interference pressure** — even below saturation, concurrent
   traffic degrades locality (LLC thrash, DRAM row-buffer conflicts).
   Each job's memory phase inflates by
   ``1 + sensitivity_j * pressure_j`` where ``pressure_j`` is the
   summed effective demand of its co-runners. This is the effect MIG's
   physical isolation removes (paper Fig. 4) and is why hierarchical
   MIG+MPS beats MPS-only for conflicting mixes.

A job's *effective demand* is its solo average DRAM utilization scaled
by how much its compute throttling slows it down: a kernel running at a
tenth of its compute rate issues its traffic over a proportionally
longer run and presses the memory system less. The adjustment is a
single deterministic pass (compute-side only) — demand is *not* relaxed
by the bandwidth contention itself, otherwise saturated domains would
talk themselves out of saturation and the capacity effect the paper
measures in Fig. 4 would vanish.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.kernels import KernelModel

__all__ = [
    "DomainShare",
    "solve_domain",
    "solve_domain_fast",
    "effective_demand",
    "CROWDING_PRESSURE",
]

#: Extra interference pressure contributed by each additional client in
#: the same memory domain, independent of its bandwidth demand. Models
#: capacity effects bandwidth accounting misses — LLC set thrashing, TLB
#: pollution, DRAM row-buffer conflicts scale with the *number* of
#: concurrent access streams, not only their volume. This is the
#: crowding that MIG's physical isolation removes and MPS cannot; it is
#: why the paper's hierarchical partitioning beats MPS-only at high
#: concurrency (Figs. 4, 5, 8).
CROWDING_PRESSURE = 0.65


@dataclass(frozen=True)
class DomainShare:
    """Resolved memory-domain state for one job.

    ``available_bw``
        bandwidth fraction (of device peak) usable by the job's memory
        phase — the full domain below saturation, its proportional
        share above it.
    ``pressure``
        summed effective co-runner demand, feeding the interference
        term of :meth:`KernelModel.execution_time`.
    ``effective_demand``
        the job's own compute-pace-adjusted average demand.
    """

    available_bw: float
    pressure: float
    effective_demand: float


def effective_demand(model: KernelModel, compute_fraction: float) -> float:
    """Average DRAM utilization a job drives at a given compute share.

    The solo average utilization (peak demand x memory duty cycle) is
    scaled by the compute-side slowdown: the same bytes spread over a
    longer run press the memory system proportionally less.
    """
    base = model.avg_dram_utilization
    slowdown = (
        model.execution_time(compute_fraction, 1.0, 0.0) / model.solo_time
    )
    return min(base / max(slowdown, 1e-9), model.bw_demand)


def solve_domain(
    models: list[KernelModel],
    compute_fractions: list[float],
    domain_bandwidth: float,
) -> list[DomainShare]:
    """Solve bandwidth shares + pressure for jobs co-located in a domain.

    ``compute_fractions`` are device-level compute shares per job;
    ``domain_bandwidth`` is the domain's fraction of device bandwidth.
    Jobs running alone in their domain see zero pressure and the whole
    domain bandwidth, so a single-job call degenerates to the private
    case.
    """
    n = len(models)
    if n == 0:
        return []
    if domain_bandwidth <= 0:
        raise ValueError("domain bandwidth must be positive")
    if len(compute_fractions) != n:
        raise ValueError("one compute fraction per model is required")

    demand = np.array(
        [
            min(effective_demand(m, beta), domain_bandwidth)
            for m, beta in zip(models, compute_fractions)
        ]
    )
    total = float(demand.sum())
    if total > domain_bandwidth:
        avail = domain_bandwidth * demand / total
    else:
        avail = np.full(n, domain_bandwidth)
    pressure = (total - demand) + CROWDING_PRESSURE * (n - 1)
    return [
        DomainShare(
            available_bw=float(a),
            pressure=float(p),
            effective_demand=float(d),
        )
        for a, p, d in zip(avail, pressure, demand)
    ]


#: Memo of :func:`effective_demand` keyed by ``(id(model), beta)``.
#: The demand is a pure function of the kernel model and the compute
#: share, both drawn from small fixed sets during training (one model
#: per profiled program, one share per distinct slot shape). Values
#: hold a strong reference to the model so the id key stays valid.
_DEMAND_MEMO: dict[tuple[int, float], tuple[KernelModel, float]] = {}


def _effective_demand_cached(model: KernelModel, beta: float) -> float:
    key = (id(model), beta)
    hit = _DEMAND_MEMO.get(key)
    if hit is not None and hit[0] is model:
        return hit[1]
    value = effective_demand(model, beta)
    _DEMAND_MEMO[key] = (model, value)
    return value


def solve_domain_fast(
    models: list[KernelModel],
    compute_fractions: list[float],
    domain_bandwidth: float,
) -> list[tuple[float, float]]:
    """Scalar re-implementation of :func:`solve_domain` for the fast path.

    Returns bare ``(available_bw, pressure)`` pairs instead of
    :class:`DomainShare` objects and memoizes the per-(model, share)
    effective demand. Domains hold at most a handful of jobs, so the
    NumPy reduction in :func:`solve_domain` degenerates to the same
    left-to-right float accumulation performed here — the results are
    bitwise-identical (pinned by tests); only the constant factors
    differ.
    """
    n = len(models)
    if n == 0:
        return []
    if domain_bandwidth <= 0:
        raise ValueError("domain bandwidth must be positive")
    if len(compute_fractions) != n:
        raise ValueError("one compute fraction per model is required")

    demand = [
        min(_effective_demand_cached(m, beta), domain_bandwidth)
        for m, beta in zip(models, compute_fractions)
    ]
    total = 0.0
    for d in demand:
        total += d
    crowding = CROWDING_PRESSURE * (n - 1)
    if total > domain_bandwidth:
        return [
            (domain_bandwidth * d / total, (total - d) + crowding)
            for d in demand
        ]
    return [(domain_bandwidth, (total - d) + crowding) for d in demand]
