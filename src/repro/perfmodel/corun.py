"""Co-run simulation: per-job times and group makespans.

``simulate_corun`` is the simulated equivalent of "launch the job set
under this MIG/MPS configuration and measure": it binds jobs to the
partition's slots (slot order = binding order), then advances a staged
simulation. Between completion events every active job progresses at a
constant rate given by the roofline + interference model; when a job
finishes, its bandwidth demand disappears and the remaining jobs in its
memory domain are re-solved. Compute shares stay fixed for the whole
group — MIG/MPS setups cannot be reconfigured while programs run (paper
Section IV-B), so an early finisher's SMs idle.

The resulting semantics match the paper's metrics directly:

* ``CoRunTime(JS, R)``   = the simulated makespan,
* ``SoloRunTime(JS)``    = sum of members' solo times (time sharing),
* relative throughput    = SoloRunTime / CoRunTime,
* ``CoRunAppTime(J)``    = the job's own completion time (used for the
  slowdown and fairness metrics of Figs. 11–12).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.gpu.partition import PartitionTree
from repro.perfmodel.interference import solve_domain, solve_domain_fast
from repro.workloads.kernels import KernelModel

__all__ = [
    "CoRunResult",
    "simulate_corun",
    "simulate_corun_fast",
    "corun_time",
    "solo_run_time",
    "relative_throughput",
]

#: Progress below this is treated as complete (guards float residue).
_WORK_EPS = 1e-12

#: Per-co-client compute-phase inflation for MPS clients sharing one
#: compute instance: percentage provisioning partitions SMs but the
#: clients still contend on the shared front-end path (L2 ports,
#: copy engines, launch/scheduling). MIG compute instances remove this
#: by construction — a second reason hierarchical MIG+MPS beats flat
#: MPS at high concurrency.
MPS_COMPUTE_CROWDING = 0.11


@dataclass(frozen=True)
class CoRunResult:
    """Outcome of co-running one job group under one partition."""

    job_names: tuple[str, ...]
    finish_times: tuple[float, ...]
    solo_times: tuple[float, ...]
    makespan: float

    @property
    def solo_run_time(self) -> float:
        """Time-sharing execution time of the same group."""
        return sum(self.solo_times)

    @property
    def throughput_gain(self) -> float:
        """Relative throughput vs. time sharing (> 1 is a win)."""
        return self.solo_run_time / self.makespan

    @property
    def slowdowns(self) -> tuple[float, ...]:
        """Per-job AppSlowdown = CoRunAppTime / SoloRunAppTime."""
        return tuple(
            f / s for f, s in zip(self.finish_times, self.solo_times)
        )

    def beats_time_sharing(self) -> bool:
        """The paper's first constraint: co-running must not lose to
        time sharing."""
        return self.makespan <= self.solo_run_time + 1e-9


def simulate_corun(
    models: list[KernelModel], tree: PartitionTree
) -> CoRunResult:
    """Run a job group under a partition and return measured times.

    Jobs are bound to ``tree.slots()`` in order; the group size must
    equal the slot count (slots cannot idle by construction — the
    schedulers always pick a variant matching the group's concurrency).
    """
    slots = tree.slots()
    if len(models) != len(slots):
        raise SchedulingError(
            f"group of {len(models)} jobs cannot fill a partition with "
            f"{len(slots)} slots"
        )
    n = len(models)
    domains = tree.mem_domains()
    domain_bw = [tree.gis[g].mem_fraction for g in range(len(tree.gis))]
    betas = [s.compute_fraction for s in slots]
    ci_of_slot = [(s.gi_index, s.ci_index) for s in slots]

    remaining = [1.0] * n
    finish = [0.0] * n
    active = set(range(n))
    now = 0.0

    while active:
        # SM-level crowding: active clients per compute instance.
        ci_load: dict[tuple[int, int], int] = {}
        for i in active:
            ci_load[ci_of_slot[i]] = ci_load.get(ci_of_slot[i], 0) + 1
        # Solve every memory domain for the currently active jobs.
        rates = [0.0] * n
        for d_idx, slot_ids in enumerate(domains):
            live = [i for i in slot_ids if i in active]
            if not live:
                continue
            shares = solve_domain(
                [models[i] for i in live],
                [betas[i] for i in live],
                domain_bw[d_idx],
            )
            for i, share in zip(live, shares):
                crowd = 1.0 + MPS_COMPUTE_CROWDING * (ci_load[ci_of_slot[i]] - 1)
                t = models[i].execution_time(
                    betas[i], share.available_bw, share.pressure, crowd
                )
                rates[i] = 1.0 / t
        # Advance to the next completion event.
        dt = min(remaining[i] / rates[i] for i in active)
        now += dt
        done = []
        for i in active:
            remaining[i] -= rates[i] * dt
            if remaining[i] <= _WORK_EPS:
                finish[i] = now
                done.append(i)
        if not done:  # pragma: no cover - dt picks at least one finisher
            raise SchedulingError("co-run simulation failed to progress")
        active.difference_update(done)

    return CoRunResult(
        job_names=tuple(m.name for m in models),
        finish_times=tuple(finish),
        solo_times=tuple(m.solo_time for m in models),
        makespan=now,
    )


#: Per-tree static facts (slots, domains, shares) keyed by ``id(tree)``.
#: Partition trees are immutable; the 29 catalog templates are reused
#: for every group evaluation, so their derived structures are computed
#: once. Values keep a strong reference to the tree so the id key stays
#: valid; the map is cleared if ephemeral trees (solo partitions missing
#: the co-run cache) ever bloat it.
_TREE_MEMO: dict[int, tuple] = {}
_TREE_MEMO_LIMIT = 4096

#: Per-(model, compute share) execution-time constants, keyed by
#: ``(id(model), beta)``: the compute-phase base ``t_compute *
#: compute_scale(beta)`` plus the model fields the inner loop needs.
#: Values keep a strong reference to the model so the id key stays
#: valid. Both factors of the memoized product are exactly the operands
#: :meth:`KernelModel.execution_time` multiplies first, so downstream
#: arithmetic is bitwise-unchanged.
_EXEC_MEMO: dict[tuple[int, float], tuple] = {}
_EXEC_MEMO_LIMIT = 65536


def _exec_consts(model: KernelModel, beta: float) -> tuple:
    key = (id(model), beta)
    hit = _EXEC_MEMO.get(key)
    if hit is not None and hit[0] is model:
        return hit
    consts = (
        model,
        model.t_compute * model.compute_scale(beta),
        model.t_memory,
        model.bw_demand,
        model.interference_sensitivity,
        1.0 - model.overlap,
    )
    if len(_EXEC_MEMO) >= _EXEC_MEMO_LIMIT:
        _EXEC_MEMO.clear()
    _EXEC_MEMO[key] = consts
    return consts


def _tree_facts(tree: PartitionTree) -> tuple:
    key = id(tree)
    hit = _TREE_MEMO.get(key)
    if hit is not None and hit[0] is tree:
        return hit
    slots = tree.slots()
    facts = (
        tree,
        tree.mem_domains(),
        [tree.gis[g].mem_fraction for g in range(len(tree.gis))],
        [s.compute_fraction for s in slots],
        [(s.gi_index, s.ci_index) for s in slots],
        len(slots),
    )
    if len(_TREE_MEMO) >= _TREE_MEMO_LIMIT:
        _TREE_MEMO.clear()
    _TREE_MEMO[key] = facts
    return facts


def simulate_corun_fast(
    models: list[KernelModel], tree: PartitionTree
) -> CoRunResult:
    """Lean re-implementation of :func:`simulate_corun` for the fast path.

    Identical event-driven simulation, but the partition's static
    structure is memoized per tree, domain solving goes through
    :func:`~repro.perfmodel.interference.solve_domain_fast` (scalar
    arithmetic, memoized effective demands, no per-job share objects).
    Every float operation happens in the reference's order, so results
    are bitwise-identical (pinned by tests).
    """
    _, domains, domain_bw, betas, ci_of_slot, n_slots = _tree_facts(tree)
    n = len(models)
    if n != n_slots:
        raise SchedulingError(
            f"group of {n} jobs cannot fill a partition with "
            f"{n_slots} slots"
        )

    consts = [_exec_consts(models[i], betas[i]) for i in range(n)]
    remaining = [1.0] * n
    finish = [0.0] * n
    active = set(range(n))
    now = 0.0

    while active:
        ci_load: dict[tuple[int, int], int] = {}
        for i in active:
            ci_load[ci_of_slot[i]] = ci_load.get(ci_of_slot[i], 0) + 1
        rates = [0.0] * n
        for d_idx, slot_ids in enumerate(domains):
            live = [i for i in slot_ids if i in active]
            if not live:
                continue
            shares = solve_domain_fast(
                [models[i] for i in live],
                [betas[i] for i in live],
                domain_bw[d_idx],
            )
            for i, (avail_bw, pressure) in zip(live, shares):
                crowd = 1.0 + MPS_COMPUTE_CROWDING * (ci_load[ci_of_slot[i]] - 1)
                # Inlined KernelModel.execution_time over the memoized
                # constants — identical operations in identical order.
                _, tc0, t_mem, bw_dem, sens, inv_ov = consts[i]
                tc = tc0 * crowd
                achieved = bw_dem if bw_dem <= avail_bw else avail_bw
                tm = (t_mem * (bw_dem / achieved)) * (
                    1.0 + sens * (pressure if pressure > 0.0 else 0.0)
                )
                hi, lo = (tc, tm) if tc >= tm else (tm, tc)
                rates[i] = 1.0 / (hi + inv_ov * lo)
        dt = min(remaining[i] / rates[i] for i in active)
        now += dt
        done = []
        for i in active:
            remaining[i] -= rates[i] * dt
            if remaining[i] <= _WORK_EPS:
                finish[i] = now
                done.append(i)
        if not done:  # pragma: no cover - dt picks at least one finisher
            raise SchedulingError("co-run simulation failed to progress")
        active.difference_update(done)

    return CoRunResult(
        job_names=tuple(m.name for m in models),
        finish_times=tuple(finish),
        solo_times=tuple(m.solo_time for m in models),
        makespan=now,
    )


def corun_time(models: list[KernelModel], tree: PartitionTree) -> float:
    """``CoRunTime(JS, R)`` from the paper's problem definition."""
    return simulate_corun(models, tree).makespan


def solo_run_time(models: list[KernelModel]) -> float:
    """``SoloRunTime(JS)``: time-shared execution of the group."""
    return sum(m.solo_time for m in models)


def relative_throughput(models: list[KernelModel], tree: PartitionTree) -> float:
    """Throughput of co-running relative to time sharing (> 1 wins)."""
    return simulate_corun(models, tree).throughput_gain
