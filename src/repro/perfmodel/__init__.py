"""Performance model: solo-run roofline + co-run contention simulation.

This package plays the role the physical A100 plays in the paper: given
a hierarchical partition (:class:`repro.gpu.partition.PartitionTree`)
and the jobs bound to its slots, it produces co-run execution times.

Structure:

* :mod:`repro.perfmodel.roofline` — solo-run scaling of one kernel under
  a (compute fraction, bandwidth fraction) allocation.
* :mod:`repro.perfmodel.interference` — bandwidth sharing and
  interference pressure inside one memory domain (one MIG GI, or the
  whole device without MIG).
* :mod:`repro.perfmodel.corun` — the staged co-run simulator producing
  per-job times, makespans, and relative throughput.
* :mod:`repro.perfmodel.calibration` — the Section III consistency
  checks tying the model to the paper's observations.
"""

from repro.perfmodel.roofline import solo_time, allocation_time, speedup_curve
from repro.perfmodel.interference import DomainShare, solve_domain
from repro.perfmodel.corun import (
    CoRunResult,
    simulate_corun,
    corun_time,
    solo_run_time,
    relative_throughput,
)
from repro.perfmodel.cache import (
    CacheStats,
    CoRunCache,
    cached_simulate_corun,
    corun_cache,
    corun_cache_disabled,
    corun_caching_enabled,
    corun_signature,
    reset_corun_cache,
    set_corun_caching,
)

__all__ = [
    "solo_time",
    "allocation_time",
    "speedup_curve",
    "DomainShare",
    "solve_domain",
    "CoRunResult",
    "simulate_corun",
    "corun_time",
    "solo_run_time",
    "relative_throughput",
    "CacheStats",
    "CoRunCache",
    "cached_simulate_corun",
    "corun_cache",
    "corun_cache_disabled",
    "corun_caching_enabled",
    "corun_signature",
    "reset_corun_cache",
    "set_corun_caching",
]
