"""Calibration checks tying the performance model to Section III.

The paper motivates its design with three observations; the functions
here evaluate those observations against the model so both the test
suite and EXPERIMENTS.md can verify the simulated platform exhibits the
same phenomenology:

* :func:`mps_sweep` — Fig. 3: the optimal MPS compute split depends on
  the program pair (some pairs want a skewed split, some a balanced
  one).
* :func:`bandwidth_partitioning_gain` — Fig. 4: with compute shares
  held equal, isolating memory via MIG beats sharing it for
  interference-prone pairs.
* :func:`partition_option_comparison` — Fig. 5: for a 4-program mix the
  hierarchical MIG+MPS option beats the MPS-only and MIG-only extremes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.gpu.arch import A100_40GB, GpuSpec
from repro.gpu.partition import CiNode, GiNode, MpsShare, PartitionTree
from repro.perfmodel.corun import relative_throughput
from repro.workloads.kernels import KernelModel
from repro.workloads.suite import benchmark

__all__ = [
    "FIG3_PAIRS",
    "FIG4_PAIRS",
    "FIG5_MIX",
    "mps_sweep",
    "bandwidth_partitioning_gain",
    "partition_option_comparison",
]

#: Canonical program pairs for the Fig. 3 sweep: two with a skewed
#: optimal compute split (CI+US mixes — the unscalable partner only
#: needs a small share) and one whose optimum is balanced (CI+MI with
#: matched durations). The paper's legend is not machine-readable; the
#: pairs were chosen to exhibit the three shapes Fig. 3 demonstrates.
FIG3_PAIRS = (
    ("hotspot", "qs_Coral_P2"),
    ("huffman", "needle"),
    ("heartwall", "sp_solver_C"),
)

#: Job mixes for the Fig. 4 shared-vs-private comparison — pairs whose
#: combined bandwidth demand and interference make isolation pay off.
FIG4_PAIRS = (
    ("stream", "sp_solver_B"),
    ("randomaccess", "lud_B"),
)

#: The 4-program mix for the Fig. 5 partitioning-option comparison.
FIG5_MIX = ("hotspot", "stream", "kmeans", "qs_Coral_P1")


def _mps_pair_tree(split: float) -> PartitionTree:
    """Full-device MPS pair: ``split`` to job 0, the rest to job 1."""
    return PartitionTree(
        gis=(
            GiNode(1.0, (CiNode(1.0, (MpsShare(split), MpsShare(1.0 - split))),)),
        ),
        mig_enabled=False,
    )


def mps_sweep(
    name_a: str, name_b: str, splits: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Relative co-run throughput of a pair across MPS splits (Fig. 3).

    Returns ``(splits, throughput)`` where ``splits[i]`` is job A's
    compute share.
    """
    if splits is None:
        splits = np.arange(0.1, 0.91, 0.1)
    a, b = benchmark(name_a), benchmark(name_b)
    gains = np.array(
        [relative_throughput([a, b], _mps_pair_tree(float(s))) for s in splits]
    )
    return np.asarray(splits), gains


def _mig_pair_private(spec: GpuSpec, left_gpcs: int = 3, right_gpcs: int = 4) -> PartitionTree:
    gis = []
    for g in (left_gpcs, right_gpcs):
        mem = spec.memory_slices_for_gpcs(g) / spec.mig_memory_slices
        gis.append(GiNode(mem, (CiNode(g / spec.n_gpcs),)))
    return PartitionTree(gis=tuple(gis), mig_enabled=True)


def _mig_pair_shared(spec: GpuSpec, left_gpcs: int = 3, right_gpcs: int = 4) -> PartitionTree:
    cis = (CiNode(left_gpcs / spec.n_gpcs), CiNode(right_gpcs / spec.n_gpcs))
    return PartitionTree(gis=(GiNode(1.0, cis),), mig_enabled=True)


def bandwidth_partitioning_gain(
    name_a: str, name_b: str, spec: GpuSpec = A100_40GB
) -> dict[str, float]:
    """Shared vs. private memory at identical compute shares (Fig. 4).

    Both layouts give the jobs 3 and 4 GPCs (87.5% total, one GPC
    disabled by MIG); only the memory-domain structure differs.
    Returns relative throughput for both options.
    """
    a, b = benchmark(name_a), benchmark(name_b)
    return {
        "shared": relative_throughput([a, b], _mig_pair_shared(spec)),
        "partitioned": relative_throughput([a, b], _mig_pair_private(spec)),
    }


def partition_option_comparison(
    names: list[str], spec: GpuSpec = A100_40GB
) -> dict[str, float]:
    """Fig. 5: best achievable throughput per partitioning option for a
    4-program mix, searching pairs/splits exhaustively.

    Options (Fig. 2): MPS-only pairs, MIG-only shared, MIG-only private,
    and the MIG+MPS hierarchical 4-way co-run. Pair selections and MPS
    splits are chosen exhaustively for each option, as in the paper.
    """
    if len(names) != 4:
        raise ValueError("the Fig. 5 experiment uses exactly 4 programs")
    models = [benchmark(n) for n in names]
    solo_total = sum(m.solo_time for m in models)

    import itertools

    def best_pairing(
        pair_time: Callable[[list[KernelModel]], float]
    ) -> float:
        """Min total time over the 3 ways to split 4 jobs into 2 pairs."""
        best = np.inf
        idx = range(4)
        for pair_a in itertools.combinations(idx, 2):
            pair_b = tuple(i for i in idx if i not in pair_a)
            t = pair_time([models[i] for i in pair_a]) + pair_time(
                [models[i] for i in pair_b]
            )
            best = min(best, t)
        return best

    from repro.perfmodel.corun import corun_time

    def mps_pair_time(pair: list[KernelModel]) -> float:
        return min(
            corun_time(pair, _mps_pair_tree(s / 10.0)) for s in range(1, 10)
        )

    def mig_shared_pair_time(pair: list[KernelModel]) -> float:
        return min(
            corun_time(pair, _mig_pair_shared(spec)),
            corun_time(pair[::-1], _mig_pair_shared(spec)),
        )

    def mig_private_pair_time(pair: list[KernelModel]) -> float:
        return min(
            corun_time(pair, _mig_pair_private(spec)),
            corun_time(pair[::-1], _mig_pair_private(spec)),
        )

    # Hierarchical: all four at once on a 3+4 MIG split with an MPS pair
    # inside each side, in both the private-memory form (two GIs) and
    # the shared-memory form (one GI, two CIs); exhaustive over job
    # permutations and splits as in the paper.
    def hierarchical_time() -> float:
        best = np.inf
        for perm in itertools.permutations(models):
            for s_left in range(1, 6):
                for s_right in range(1, 6):
                    sides = ((3, s_left / 10.0), (4, s_right / 10.0))
                    # private: one GI per side
                    gis = []
                    cis = []
                    for gpcs, split in sides:
                        mem = spec.memory_slices_for_gpcs(gpcs) / spec.mig_memory_slices
                        shares = (MpsShare(split), MpsShare(1.0 - split))
                        ci = CiNode(gpcs / spec.n_gpcs, shares)
                        gis.append(GiNode(mem, (ci,)))
                        cis.append(ci)
                    private = PartitionTree(gis=tuple(gis), mig_enabled=True)
                    shared = PartitionTree(
                        gis=(GiNode(1.0, tuple(cis)),), mig_enabled=True
                    )
                    best = min(
                        best,
                        corun_time(list(perm), private),
                        corun_time(list(perm), shared),
                    )
        return best

    return {
        "MPS Only": solo_total / best_pairing(mps_pair_time),
        "MIG Only (Shared Memory)": solo_total / best_pairing(mig_shared_pair_time),
        "MIG Only (Private Memory)": solo_total / best_pairing(mig_private_pair_time),
        "MIG+MPS Hierarchical": solo_total / hierarchical_time(),
    }
