"""Memoized co-run evaluation: the offline fast path's first layer.

Training windows are drawn from a *fixed* set of queues, so the same
``(job group, partition)`` pairs reach :func:`simulate_corun` thousands
of times across episodes. The simulation is deterministic — identical
inputs always produce identical :class:`CoRunResult`s — which makes the
call safe to memoize without changing any schedule bitwise.

:class:`CoRunCache` is a bounded LRU keyed on a **canonical signature**
of the inputs rather than object identity:

* :func:`kernel_signature` reduces a :class:`KernelModel` to the tuple
  of fields that decide its behaviour under partitioning (two ``Job``
  submissions of the same benchmark share an entry);
* :func:`partition_signature` reduces a :class:`PartitionTree` to its
  nested (GI, CI, share) fraction structure.

The cache counts hits / misses / evictions so callers (the trainer, the
perf benchmarks) can report hit rates; a process-wide default instance
backs :func:`cached_simulate_corun`, which is what the scheduling layers
(:class:`~repro.core.problem.ScheduledGroup`,
:class:`~repro.gpu.device.SimulatedGpu`, the predictive baselines) call.
``REPRO_CORUN_CACHE=0`` disables memoization globally;
:func:`corun_cache_disabled` does so for a scope (used by the A/B perf
benchmark and the determinism tests).

The class is deliberately generic — any deterministic computation with
a hashable key can ride on it (``get_or_compute``); the predictive
baselines reuse it to bound their previously unbounded predicted-cost
memo, and :mod:`repro.core.assignment` reuses it for per-(job,
slot-shape) intermediate rewards.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator

from repro.errors import ConfigurationError
from repro.gpu.partition import PartitionTree
from repro.perfmodel.corun import CoRunResult, simulate_corun, simulate_corun_fast
from repro.workloads.kernels import KernelModel

__all__ = [
    "CacheStats",
    "CoRunCache",
    "kernel_signature",
    "partition_signature",
    "corun_signature",
    "corun_cache",
    "cached_simulate_corun",
    "corun_caching_enabled",
    "set_corun_caching",
    "corun_cache_disabled",
    "reset_corun_cache",
]

#: Default bound of the process-wide co-run cache (entries). The
#: training set is ~20 windows x a few hundred distinct (group,
#: partition) pairs each, far below this; the bound exists so online
#: workloads with unbounded job diversity cannot grow memory forever.
DEFAULT_CORUN_CACHE_SIZE = int(os.environ.get("REPRO_CORUN_CACHE_SIZE", 65536))


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of one cache's counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    maxsize: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        n = self.lookups
        return self.hits / n if n else 0.0

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Counter difference vs. an earlier snapshot of the same cache."""
        return CacheStats(
            hits=self.hits - since.hits,
            misses=self.misses - since.misses,
            evictions=self.evictions - since.evictions,
            size=self.size,
            maxsize=self.maxsize,
        )

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "maxsize": self.maxsize,
            "hit_rate": self.hit_rate,
        }


class CoRunCache:
    """Bounded LRU over deterministic evaluations.

    Keys must be hashable canonical signatures — build them with
    :func:`corun_signature` for co-run results, or any stable tuple for
    other deterministic computations. Eviction is least-recently-*used*
    (a hit refreshes recency).
    """

    def __init__(self, maxsize: int = DEFAULT_CORUN_CACHE_SIZE) -> None:
        if maxsize <= 0:
            raise ConfigurationError("cache maxsize must be positive")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    # -- core protocol --------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up a key, counting the hit/miss and refreshing recency."""
        try:
            value = self._data[key]
        except KeyError:
            self._misses += 1
            return default
        self._hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the LRU when full."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self._evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on a miss."""
        sentinel = _MISS
        value = self.get(key, sentinel)
        if value is sentinel:
            value = compute()
            self.put(key, value)
        return value

    # -- corun convenience ----------------------------------------------
    def corun(self, models: list[KernelModel], tree: PartitionTree) -> CoRunResult:
        """Memoized co-run evaluation through this cache.

        Misses are computed with
        :func:`~repro.perfmodel.corun.simulate_corun_fast`, which is
        bitwise-identical to :func:`~repro.perfmodel.corun.simulate_corun`
        (the reference the uncached path runs) but cheaper per call.
        """
        return self.get_or_compute(
            corun_signature(models, tree),
            lambda: simulate_corun_fast(models, tree),
        )

    # -- bookkeeping -----------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._data),
            maxsize=self.maxsize,
        )

    def clear(self, reset_stats: bool = False) -> None:
        self._data.clear()
        if reset_stats:
            self._hits = self._misses = self._evictions = 0


_MISS = object()


# ---------------------------------------------------------------------------
# canonical signatures
# ---------------------------------------------------------------------------

#: Signature memos keyed by object identity. Kernel models and partition
#: trees are immutable and long-lived (the repository holds the models,
#: the catalog the trees), so their canonical signatures are computed at
#: most once per object. Values keep a strong reference to the object so
#: the id key stays valid; the maps are cleared if ephemeral objects
#: ever bloat them.
_KERNEL_SIG_MEMO: dict[int, tuple] = {}
_TREE_SIG_MEMO: dict[int, tuple] = {}
_SIG_MEMO_LIMIT = 65536


def kernel_signature(model: KernelModel) -> tuple:
    """Canonical key for a kernel model.

    Only fields that influence :func:`simulate_corun` (plus the name,
    which appears in the result) participate; the occupancy statistics
    used solely to synthesize profile counters do not.
    """
    key = id(model)
    hit = _KERNEL_SIG_MEMO.get(key)
    if hit is not None and hit[0] is model:
        return hit[1]
    sig = (
        model.name,
        model.t_compute,
        model.t_memory,
        model.parallel_fraction,
        model.bw_demand,
        model.interference_sensitivity,
        model.saturation_fraction,
        model.overlap,
    )
    if len(_KERNEL_SIG_MEMO) >= _SIG_MEMO_LIMIT:
        _KERNEL_SIG_MEMO.clear()
    _KERNEL_SIG_MEMO[key] = (model, sig)
    return sig


def partition_signature(tree: PartitionTree) -> tuple:
    """Canonical key for a partition tree: its nested fraction layout."""
    key = id(tree)
    hit = _TREE_SIG_MEMO.get(key)
    if hit is not None and hit[0] is tree:
        return hit[1]
    sig = (
        tree.mig_enabled,
        tuple(
            (
                gi.mem_fraction,
                tuple(
                    (ci.compute_fraction, tuple(s.fraction for s in ci.shares))
                    for ci in gi.cis
                ),
            )
            for gi in tree.gis
        ),
    )
    if len(_TREE_SIG_MEMO) >= _SIG_MEMO_LIMIT:
        _TREE_SIG_MEMO.clear()
    _TREE_SIG_MEMO[key] = (tree, sig)
    return sig


def corun_signature(models: list[KernelModel], tree: PartitionTree) -> tuple:
    """Canonical key of one (job group, partition) evaluation.

    Binding order matters — the simulator assigns jobs to slots in
    order — so the model tuple is *not* sorted.
    """
    return (
        tuple(kernel_signature(m) for m in models),
        partition_signature(tree),
    )


# ---------------------------------------------------------------------------
# the process-wide default cache
# ---------------------------------------------------------------------------

_DEFAULT_CACHE = CoRunCache(DEFAULT_CORUN_CACHE_SIZE)
_ENABLED = os.environ.get("REPRO_CORUN_CACHE", "1") not in ("0", "false", "off")


def corun_cache() -> CoRunCache:
    """The process-wide co-run cache instance."""
    return _DEFAULT_CACHE


def corun_caching_enabled() -> bool:
    """Whether the memoized fast path is active (also consulted by the
    environment's decision memo, so one switch governs every layer)."""
    return _ENABLED


def set_corun_caching(enabled: bool) -> None:
    """Globally enable/disable the memoized fast path."""
    global _ENABLED
    _ENABLED = bool(enabled)


@contextmanager
def corun_cache_disabled() -> Iterator[None]:
    """Scope with memoization off — every evaluation recomputes."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def reset_corun_cache() -> None:
    """Drop all entries and zero the counters of the default cache."""
    _DEFAULT_CACHE.clear(reset_stats=True)


def cached_simulate_corun(
    models: list[KernelModel], tree: PartitionTree
) -> CoRunResult:
    """Drop-in :func:`simulate_corun` with process-wide memoization.

    Falls through to the real simulation when caching is disabled.
    Results are frozen dataclasses, so sharing one instance across
    callers is safe.
    """
    if not _ENABLED:
        return simulate_corun(models, tree)
    return _DEFAULT_CACHE.corun(models, tree)
