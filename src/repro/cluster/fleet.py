"""Discrete-event fleet simulation core (datacenter-scale dispatch).

The per-window loops in :mod:`repro.cluster.scheduler` and
:mod:`repro.cluster.batch` are faithful to the paper's two-level
scheduler but advance time by scanning every node and nudging a float
clock — fine for a handful of GPUs, hopeless for the
reconfigurable-machine-scheduling setting of Tan et al. (serving on
partitionable MIG accelerators) at thousands of nodes and millions of
arrivals. This module is the scalable core: a priority-queue **event
heap** on the simulated clock carrying

* **job arrivals** (closed submissions or open-loop
  :mod:`repro.workloads.arrivals` processes),
* **window completions** (a node's occupancy drains; the node rejoins
  the idle pool),
* **requeues** (a crashed job re-enters the queue *at its failure
  time*, not at dispatch time — the event heap fixes the old loops'
  time-travelling requeue),
* **reconfigurations and faults** (planned repartition pauses and node
  outages that push a node's availability horizon),
* **checkpoints** (periodic statistics snapshots).

Time always jumps to the next event — there is no epsilon stepping, so
the engine keeps making progress at arbitrarily large simulated clocks
(see :func:`repro.clock.time_le` for the tolerance story).

Dispatch semantics are the batch system's: each round cuts one window
per idle GPU, selects the per-window policy by crowding, and schedules
the whole round through :meth:`PolicySelector.schedule_batch` — one
batched serving pass (lockstep inference plus the fleet-wide decision
cache) per round. Execution replays the already-simulated schedule via
:meth:`GpuNode.execute_schedule_fast` (bitwise-identical outcomes to
the exact path, minus device state-machine overhead); pass
``exact_execution=True`` to drive the full MIG/MPS state machines
instead. On small clusters the engine's dispatch log is
bitwise-identical to :class:`ClusterScheduler`/:class:`BatchSystem`
(the fingerprint tests pin this), which is what makes the old loops'
semantics the correctness oracle for the new core.

Open-loop operation adds **admission control**: an
:class:`AdmissionPolicy` sees every arrival and may shed it
(backpressure), so a saturated fleet degrades by rejecting work instead
of growing an unbounded queue.

**Hierarchical placement** (``placement=`` or a
:class:`repro.hierarchy.HierarchicalPolicy` selector) adds the
cluster level above the node level: every admitted arrival is routed to
a per-node queue by a placement policy at arrival-event time, and each
dispatch round cuts one window per idle node *from that node's own
queue* (the node-level agent keeps choosing groups and partitions
exactly as before). With placement off — the default — none of the
hierarchical state exists and dispatch is bitwise-identical to the
single-queue engine.

**Energy accounting** (``power_model=``) integrates the
:mod:`repro.power` draw model over every dispatched group — pure
accounting (``FleetStats.energy_joules``, joules/job, perf-per-watt,
and an ``energy_joules_total`` gauge); schedules are unchanged.
"""

from __future__ import annotations

import enum
import heapq
from collections import deque
from dataclasses import dataclass, field

from repro.clock import Clock, time_le, time_lt
from repro.errors import SchedulingError
from repro.faults import FaultInjector, RetryPolicy
from repro.obs.phase import PhaseTimers
from repro.obs.sketch import QuantileSketch
from repro.obs.trace import LifecycleTracer
from repro.telemetry.facade import NULL_TELEMETRY, Telemetry
from repro.cluster.node import ClusterState
from repro.cluster.policy import PolicySelector
from repro.cluster.scheduler import DispatchRecord
from repro.power.model import PowerModel
from repro.workloads.jobs import Job
from repro.workloads.suite import PAPER_CLASSES

__all__ = [
    "EventKind",
    "EventHeap",
    "AdmissionPolicy",
    "AdmitAll",
    "BoundedQueue",
    "TokenBucket",
    "FleetStats",
    "FleetSnapshot",
    "FleetResult",
    "FleetEngine",
    "CLASS_RANK",
    "window_signature",
]

#: canonical feature order for workload-class histograms (Table IV
#: classes) — shared with :mod:`repro.hierarchy.features`.
CLASS_RANK: dict[str, int] = {"CI": 0, "MI": 1, "US": 2}


def window_signature(names) -> str:
    """Order-independent identity of a window's benchmark multiset —
    the key under which the fleet-wide decision cache would memoize the
    window's schedule."""
    return "+".join(sorted(names))

#: windows per dispatch round (batched-serving batch size)
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class EventKind(enum.IntEnum):
    """What a heap entry means. Values are tie-break ranks within one
    timestamp batch (arrivals land before completions land before
    bookkeeping), though rounds pop whole same-time batches anyway."""

    ARRIVAL = 0
    COMPLETION = 1
    REQUEUE = 2
    RECONFIG = 3
    FAULT = 4
    CHECKPOINT = 5


class EventHeap:
    """A deterministic min-heap of ``(time, kind, seq, payload)``.

    Ordering is total and reproducible: by time, then kind rank, then
    insertion sequence — payloads are never compared.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, object]] = []
        self._seq = 0

    def push(self, time: float, kind: EventKind, payload: object = None) -> None:
        heapq.heappush(self._heap, (time, int(kind), self._seq, payload))
        self._seq += 1

    def pop(self) -> tuple[float, EventKind, object]:
        time, kind, _, payload = heapq.heappop(self._heap)
        return time, EventKind(kind), payload

    def peek_time(self) -> float:
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


# ----------------------------------------------------------------------
# admission / backpressure
# ----------------------------------------------------------------------
class AdmissionPolicy:
    """Decides, per arrival, whether the fleet accepts the job."""

    def admit(self, queue_depth: int, now: float) -> bool:  # pragma: no cover
        raise NotImplementedError


class AdmitAll(AdmissionPolicy):
    """No backpressure: every arrival joins the queue."""

    def admit(self, queue_depth: int, now: float) -> bool:
        return True


class BoundedQueue(AdmissionPolicy):
    """Shed arrivals once the pending queue reaches ``max_pending``.

    The classic head-of-line backpressure: a saturated fleet rejects
    work (callers see it in ``FleetStats.rejected``) instead of letting
    queue waits — and memory — grow without bound.
    """

    def __init__(self, max_pending: int):
        if max_pending < 1:
            raise SchedulingError("max_pending must be positive")
        self.max_pending = max_pending

    def admit(self, queue_depth: int, now: float) -> bool:
        return queue_depth < self.max_pending


class TokenBucket(AdmissionPolicy):
    """Rate-limit admissions to ``rate`` jobs per simulated second with
    bursts up to ``burst`` — smooths diurnal peaks into the queue."""

    def __init__(self, rate: float, burst: float = 1.0):
        if rate <= 0 or burst < 1.0:
            raise SchedulingError("token bucket needs rate > 0, burst >= 1")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._last = None  # type: float | None

    def admit(self, queue_depth: int, now: float) -> bool:
        if self._last is not None and now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


# ----------------------------------------------------------------------
# accounting
# ----------------------------------------------------------------------
@dataclass
class FleetStats:
    """Aggregate accounting — O(1) memory regardless of arrival count.

    Job outcomes are accounted when their window is dispatched (the
    simulation then knows every finish time exactly); the heap's
    completion events drive node reuse, not the counters.
    """

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    requeues: int = 0
    completed: int = 0
    failed: int = 0
    windows: int = 0
    fallback_windows: int = 0
    dispatch_retries: int = 0
    degraded_groups: int = 0
    outages: int = 0
    reconfigs: int = 0
    checkpoints: int = 0
    wait_sum: float = 0.0
    wait_max: float = 0.0
    turnaround_sum: float = 0.0
    # energy accounting (power_model engines only; zeros otherwise)
    energy_joules: float = 0.0
    solo_work: float = 0.0  # solo-equivalent seconds dispatched
    # fairness: per-job slowdown moments, O(1) memory (Jain's index
    # needs only n, sum x and sum x^2)
    slowdown_sum: float = 0.0
    slowdown_sq_sum: float = 0.0
    slowdown_count: int = 0
    # streaming percentiles: bounded log-bucketed sketches (still O(1)
    # in the arrival count; DESIGN.md §15 states the error bound)
    wait_sketch: QuantileSketch = field(default_factory=QuantileSketch)
    decision_sketch: QuantileSketch = field(default_factory=QuantileSketch)

    @property
    def mean_wait(self) -> float:
        return self.wait_sum / self.completed if self.completed else 0.0

    @property
    def mean_turnaround(self) -> float:
        return self.turnaround_sum / self.completed if self.completed else 0.0

    @property
    def joules_per_job(self) -> float:
        return self.energy_joules / self.completed if self.completed else 0.0

    @property
    def perf_per_watt(self) -> float:
        """Solo-equivalent seconds of work completed per joule-second —
        dimensionless work/energy efficiency."""
        return self.solo_work / self.energy_joules if self.energy_joules else 0.0

    @property
    def queue_wait_p50(self) -> float:
        return self.wait_sketch.quantile(0.5)

    @property
    def queue_wait_p95(self) -> float:
        return self.wait_sketch.quantile(0.95)

    @property
    def queue_wait_p99(self) -> float:
        return self.wait_sketch.quantile(0.99)

    @property
    def fairness_jain(self) -> float:
        """Jain's fairness index over per-job slowdowns, in (0, 1]."""
        if not self.slowdown_count or self.slowdown_sq_sum <= 0.0:
            return 1.0
        return (self.slowdown_sum * self.slowdown_sum) / (
            self.slowdown_count * self.slowdown_sq_sum
        )

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "requeues": self.requeues,
            "completed": self.completed,
            "failed": self.failed,
            "windows": self.windows,
            "fallback_windows": self.fallback_windows,
            "dispatch_retries": self.dispatch_retries,
            "degraded_groups": self.degraded_groups,
            "outages": self.outages,
            "reconfigs": self.reconfigs,
            "checkpoints": self.checkpoints,
            "mean_wait": self.mean_wait,
            "max_wait": self.wait_max,
            "queue_wait_p50": self.queue_wait_p50,
            "queue_wait_p95": self.queue_wait_p95,
            "queue_wait_p99": self.queue_wait_p99,
            "placement_decision_p50_s": self.decision_sketch.quantile(0.5),
            "placement_decision_p95_s": self.decision_sketch.quantile(0.95),
            "placement_decision_p99_s": self.decision_sketch.quantile(0.99),
            "mean_turnaround": self.mean_turnaround,
            "energy_joules": self.energy_joules,
            "joules_per_job": self.joules_per_job,
            "perf_per_watt": self.perf_per_watt,
            "fairness_jain": self.fairness_jain,
        }


@dataclass(frozen=True)
class FleetSnapshot:
    """One checkpoint event's view of the fleet.

    PR 9 enriched snapshots into streaming rollup *frames*: besides the
    original counters they carry utilization, the sketch-backed
    queue-wait percentiles, the decision rate over the preceding
    checkpoint interval, and cumulative energy. The new fields default
    to zero so pre-existing constructors stay valid.
    """

    time: float
    submitted: int
    completed: int
    failed: int
    rejected: int
    pending: int
    busy_nodes: int
    windows: int = 0
    utilization: float = 0.0
    queue_wait_p50: float = 0.0
    queue_wait_p95: float = 0.0
    queue_wait_p99: float = 0.0
    decisions_per_sec: float = 0.0
    energy_joules: float = 0.0

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "pending": self.pending,
            "busy_nodes": self.busy_nodes,
            "windows": self.windows,
            "utilization": self.utilization,
            "queue_wait_p50": self.queue_wait_p50,
            "queue_wait_p95": self.queue_wait_p95,
            "queue_wait_p99": self.queue_wait_p99,
            "decisions_per_sec": self.decisions_per_sec,
            "energy_joules": self.energy_joules,
        }


@dataclass
class FleetResult:
    """What :meth:`FleetEngine.run` hands back."""

    stats: FleetStats
    makespan: float
    utilization: float
    history: list[DispatchRecord] = field(default_factory=list)
    schedules: list = field(default_factory=list)  # Schedule, keep_history only
    snapshots: list[FleetSnapshot] = field(default_factory=list)
    # energy/fairness accounting (mirrors stats; zeros / 1.0 defaults)
    energy_joules: float = 0.0
    joules_per_job: float = 0.0
    perf_per_watt: float = 0.0
    fairness_jain: float = 1.0
    # streaming percentiles (mirrors stats' sketches; zeros when empty)
    queue_wait_p50: float = 0.0
    queue_wait_p95: float = 0.0
    queue_wait_p99: float = 0.0
    placement_decision_p50_s: float = 0.0
    placement_decision_p95_s: float = 0.0
    placement_decision_p99_s: float = 0.0
    # hierarchical-placement trace: (benchmark_name, node_index) per
    # routed job, in routing order (placement engines only)
    placements: list = field(default_factory=list)


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class FleetEngine:
    """Event-driven dispatch of a GPU fleet.

    Feed it closed submissions (:meth:`submit` / :meth:`submit_queue`),
    open-loop arrival processes (:meth:`attach_arrivals`), planned
    reconfigurations and outages, then :meth:`run` the heap dry.
    """

    def __init__(
        self,
        cluster: ClusterState,
        selector: PolicySelector,
        window_size: int = 12,
        min_batch: int = 1,
        admission: AdmissionPolicy | None = None,
        faults: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        max_retries: int = 3,
        start: float = 0.0,
        telemetry: Telemetry = NULL_TELEMETRY,
        exact_execution: bool = False,
        keep_history: bool = False,
        placement=None,
        power_model: PowerModel | None = None,
        lifecycle: LifecycleTracer | None = None,
        profile: PhaseTimers | None = None,
        decision_clock: Clock | None = None,
    ):
        if window_size < 1:
            raise SchedulingError("window size must be positive")
        if min_batch < 1:
            raise SchedulingError("min batch must be positive")
        if max_retries < 0:
            raise SchedulingError("max_retries cannot be negative")
        # A HierarchicalPolicy bundles (placement, selector); unwrap it
        # so the engine drives the inner PolicySelector directly.
        if placement is None:
            wrapped = getattr(selector, "placement", None)
            if wrapped is not None:
                placement = wrapped
                selector = selector.selector
        self.cluster = cluster
        self.selector = selector
        self.placement = placement
        self.power_model = power_model
        self.window_size = window_size
        self.min_batch = min_batch
        self.admission = admission or AdmitAll()
        self.faults = faults
        self.retry = retry or RetryPolicy()
        self.max_retries = max_retries
        self.telemetry = telemetry
        # causal per-job tracing, wall-clock self-profiling, and the
        # placement-decision latency clock — all pure observers: None
        # (the default) leaves every hot path byte-identical
        self.lifecycle = lifecycle
        self.profile = profile
        self.decision_clock = decision_clock
        self.exact_execution = exact_execution
        self.keep_history = keep_history
        self.now = float(start)
        self.stats = FleetStats()
        self.history: list[DispatchRecord] = []
        self.schedules: list = []
        self.snapshots: list[FleetSnapshot] = []
        self.events = EventHeap()
        self._pending: deque = deque()  # (Job, submit_time)
        # hierarchical-placement state; None/empty when placement is off
        # (the flag-off path never touches any of it)
        self.placements: list[tuple[str, int]] = []
        self.collect_windows = False
        self.collected_windows: list[tuple[str, ...]] = []
        if placement is not None:
            self._node_pending: list[deque] | None = [
                deque() for _ in cluster.nodes
            ]
            self._node_mix: list[list[int]] = [
                [0, 0, 0] for _ in cluster.nodes
            ]
        else:
            self._node_pending = None
            self._node_mix = []
        self._window_sigs: set[str] = set()
        self._attempts: dict[str, int] = {}  # crash re-queues per job id
        self._sources: list = []  # open-loop arrival iterators
        self._live_arrivals = 0  # ARRIVAL events currently in the heap
        self._live_requeues = 0  # REQUEUE events currently in the heap
        self._checkpoint_interval: float | None = None
        self._last_frame: tuple[float, int] = (self.now, 0)
        # batched telemetry mirror: the dispatch hot path increments
        # plain dicts; _sync_metrics flushes them to the registry at
        # checkpoints and end of run (constant facade cost per frame)
        self._policy_windows: dict[str, int] = {}
        self._batch_rounds: dict[int, int] = {}
        self._synced_completed = 0
        n = len(cluster.nodes)
        self._gen = [0] * n  # availability generation (outage bumps)
        self._is_idle = [True] * n
        self._idle_count = n
        self._idle: list[tuple[float, int, int]] = [
            (node.available_at, i, 0) for i, node in enumerate(cluster.nodes)
        ]
        heapq.heapify(self._idle)
        if faults is not None:
            for node in cluster.nodes:
                node.device.faults = faults
            faults.telemetry = telemetry
        for node in cluster.nodes:
            node.device.telemetry = telemetry

    # ------------------------------------------------------------------
    # feeding the heap
    # ------------------------------------------------------------------
    def submit(self, job: Job, at: float | None = None) -> None:
        """One closed submission at time ``at`` (default: now)."""
        t = self.now if at is None else float(at)
        if time_lt(t, self.now):
            raise SchedulingError("cannot submit in the past")
        self.events.push(t, EventKind.ARRIVAL, (None, job))
        self._live_arrivals += 1

    def submit_queue(self, queue, at: float | None = None) -> None:
        """Submit a whole :class:`JobQueue` at one instant (FIFO order)."""
        for job in queue:
            self.submit(job, at=at)

    def attach_arrivals(self, arrivals) -> None:
        """Attach an open-loop arrival process.

        ``arrivals`` is any iterable of ``(time, item)`` pairs in
        non-decreasing time order, where ``item`` is a benchmark name or
        a :class:`Job` — e.g. the generators in
        :mod:`repro.workloads.arrivals`. The engine pulls it lazily, one
        event in the heap per source, so a million-arrival process never
        materializes.
        """
        source = iter(arrivals)
        index = len(self._sources)
        self._sources.append(source)
        self._pull_arrival(index)

    def schedule_reconfig(self, node_name: str, at: float, duration: float) -> None:
        """A planned repartition pause: the node is unavailable for
        ``duration`` simulated seconds starting at ``at``."""
        self._push_node_event(EventKind.RECONFIG, node_name, at, duration)

    def schedule_fault(self, node_name: str, at: float, duration: float) -> None:
        """An injected node outage (crash + repair time)."""
        self._push_node_event(EventKind.FAULT, node_name, at, duration)

    def schedule_checkpoints(self, interval: float, first: float | None = None) -> None:
        """Snapshot fleet statistics every ``interval`` simulated
        seconds while the simulation still has work in flight."""
        if interval <= 0:
            raise SchedulingError("checkpoint interval must be positive")
        self._checkpoint_interval = float(interval)
        self.events.push(
            self.now + interval if first is None else float(first),
            EventKind.CHECKPOINT,
            None,
        )

    def _push_node_event(
        self, kind: EventKind, node_name: str, at: float, duration: float
    ) -> None:
        if duration < 0:
            raise SchedulingError("duration cannot be negative")
        for i, node in enumerate(self.cluster.nodes):
            if node.name == node_name:
                self.events.push(float(at), kind, (i, float(duration)))
                return
        raise SchedulingError(f"unknown node {node_name!r}")

    def _pull_arrival(self, index: int) -> None:
        source = self._sources[index]
        if source is None:
            return
        try:
            t, item = next(source)
        except StopIteration:
            self._sources[index] = None
            return
        self.events.push(float(t), EventKind.ARRIVAL, (index, item))
        self._live_arrivals += 1

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> FleetResult:
        """Pump the heap dry (or up to ``until``) and report.

        Every iteration pops the *batch* of events sharing the next
        timestamp, applies them, and runs one dispatch round — so nodes
        freed at the same instant share one batched serving pass,
        exactly like the old loops' rounds.
        """
        events = self.events
        timers = self.profile
        # the loop accumulates event_pop locally and flushes one
        # aggregate sample — per-iteration method calls would be the
        # profiler observing itself
        clk = timers.clock if timers is not None else None
        pop_seconds, pop_calls = 0.0, 0
        while events:
            t0 = clk() if clk is not None else 0.0
            t = events.peek_time()
            if until is not None and time_lt(until, t):
                break
            if t > self.now:
                self.now = t
            batch = [events.pop()]
            while events and time_le(events.peek_time(), t):
                batch.append(events.pop())
            for event_time, kind, payload in batch:
                self._handle(event_time, kind, payload)
            if clk is not None:
                pop_seconds += clk() - t0
                pop_calls += 1
            self._dispatch_round()
        if timers is not None and pop_calls:
            timers.add("event_pop", pop_seconds, pop_calls)
        self._sync_metrics()
        stats = self.stats
        return FleetResult(
            stats=stats,
            makespan=self.cluster.makespan,
            utilization=self.cluster.utilization(),
            history=self.history,
            schedules=self.schedules,
            snapshots=self.snapshots,
            energy_joules=stats.energy_joules,
            joules_per_job=stats.joules_per_job,
            perf_per_watt=stats.perf_per_watt,
            fairness_jain=stats.fairness_jain,
            queue_wait_p50=stats.queue_wait_p50,
            queue_wait_p95=stats.queue_wait_p95,
            queue_wait_p99=stats.queue_wait_p99,
            placement_decision_p50_s=stats.decision_sketch.quantile(0.5),
            placement_decision_p95_s=stats.decision_sketch.quantile(0.95),
            placement_decision_p99_s=stats.decision_sketch.quantile(0.99),
            placements=self.placements,
        )

    def _handle(self, t: float, kind: EventKind, payload) -> None:
        if kind is EventKind.ARRIVAL:
            self._live_arrivals -= 1
            source_index, item = payload
            job = item if isinstance(item, Job) else Job.submit(item)
            self.stats.submitted += 1
            if self.admission.admit(self._queue_depth(), self.now):
                self.stats.admitted += 1
                if self.lifecycle is not None:
                    self.lifecycle.arrival(job, t, admitted=True)
                if self._node_pending is None:
                    self._pending.append((job, t))
                else:
                    self._route(job, t)
            else:
                self.stats.rejected += 1
                if self.lifecycle is not None:
                    self.lifecycle.arrival(job, t, admitted=False)
                if self.telemetry.enabled:
                    self.telemetry.count("fleet_rejected_total", 1)
            if source_index is not None:
                self._pull_arrival(source_index)
        elif kind is EventKind.COMPLETION:
            index, gen = payload
            if gen != self._gen[index]:
                return  # superseded by an outage/reconfig
            self._is_idle[index] = True
            self._idle_count += 1
            heapq.heappush(
                self._idle,
                (self.cluster.nodes[index].available_at, index, gen),
            )
        elif kind is EventKind.REQUEUE:
            self._live_requeues -= 1
            job, submit_time = payload
            if self._node_pending is None:
                self._pending.append((job, submit_time))
            else:
                # a crashed job is re-*placed* at its failure time — the
                # placement level sees requeues as fresh routing decisions
                self._route(job, submit_time)
        elif kind in (EventKind.RECONFIG, EventKind.FAULT):
            index, duration = payload
            node = self.cluster.nodes[index]
            if kind is EventKind.RECONFIG:
                self.stats.reconfigs += 1
            else:
                self.stats.outages += 1
            if self._is_idle[index]:
                self._is_idle[index] = False
                self._idle_count -= 1  # its idle-heap entry is now stale
            self._gen[index] += 1
            horizon = max(self.now, node.available_at) + duration
            node.device.clock = horizon  # unavailable until repaired
            self.events.push(
                horizon, EventKind.COMPLETION, (index, self._gen[index])
            )
            if self.telemetry.enabled:
                self.telemetry.event(
                    "outage" if kind is EventKind.FAULT else "reconfig",
                    node.name,
                    self.now,
                    category="fleet",
                    duration=duration,
                )
        elif kind is EventKind.CHECKPOINT:
            self.stats.checkpoints += 1
            busy = len(self.cluster.nodes) - self._idle_count
            stats = self.stats
            frame_t, frame_windows = self._last_frame
            interval = self.now - frame_t
            rate = (
                (stats.windows - frame_windows) / interval
                if interval > 0.0
                else 0.0
            )
            self._last_frame = (self.now, stats.windows)
            p50, p95, p99 = stats.wait_sketch.quantiles((0.5, 0.95, 0.99))
            self.snapshots.append(
                FleetSnapshot(
                    time=self.now,
                    submitted=stats.submitted,
                    completed=stats.completed,
                    failed=stats.failed,
                    rejected=stats.rejected,
                    pending=self._queue_depth(),
                    busy_nodes=busy,
                    windows=stats.windows,
                    utilization=self.cluster.utilization(),
                    queue_wait_p50=p50,
                    queue_wait_p95=p95,
                    queue_wait_p99=p99,
                    decisions_per_sec=rate,
                    energy_joules=stats.energy_joules,
                )
            )
            self._sync_metrics()
            if self._checkpoint_interval is not None and (
                busy > 0 or self._queue_depth() > 0 or self._work_incoming()
            ):
                self.events.push(
                    self.now + self._checkpoint_interval,
                    EventKind.CHECKPOINT,
                    None,
                )

    def _sync_metrics(self) -> None:
        """Flush the engine-side telemetry mirror into the registry.

        Per-window facade calls cost a metric lookup, label-key sort,
        and a lock each; the engine instead accumulates plain
        dicts/ints on the hot path and bulk-syncs at checkpoints and
        end of run — identical final registry values at constant
        telemetry cost per frame. Fleet-level counters also keep label
        cardinality bounded (``policy``, not ``node``): per-node detail
        lives in the tracer's window spans, not in metric series.
        """
        if not self.telemetry.enabled:
            return
        tel = self.telemetry
        stats = self.stats
        tel.sync_sketch("fleet_queue_wait_seconds", stats.wait_sketch)
        tel.gauge("queue_depth", self._queue_depth())
        if self.power_model is not None:
            tel.gauge("energy_joules_total", stats.energy_joules)
        if self._policy_windows:
            for policy_name in sorted(self._policy_windows):
                tel.count(
                    "windows_dispatched_total",
                    self._policy_windows[policy_name],
                    policy=policy_name,
                )
            self._policy_windows.clear()
        delta = stats.completed - self._synced_completed
        if delta:
            tel.count("jobs_completed_total", delta)
            self._synced_completed = stats.completed
        if self._batch_rounds:
            for size in sorted(self._batch_rounds):
                tel.observe(
                    "dispatch_batch_windows",
                    float(size),
                    buckets=_BATCH_BUCKETS,
                    count=self._batch_rounds[size],
                )
            self._batch_rounds.clear()

    def _work_incoming(self) -> bool:
        return (
            self._live_arrivals > 0
            or self._live_requeues > 0
            or any(s is not None for s in self._sources)
        )

    # ------------------------------------------------------------------
    # hierarchical placement (cluster level)
    # ------------------------------------------------------------------
    def _queue_depth(self) -> int:
        if self._node_pending is None:
            return len(self._pending)
        return sum(len(q) for q in self._node_pending)

    def _route(self, job: Job, submit_time: float) -> None:
        """Ask the placement level for a node and enqueue the job there."""
        clock = self.decision_clock
        t0 = clock() if clock is not None else 0.0
        info: dict | None = None
        if self.lifecycle is not None:
            # same decision, same RNG consumption — plus provenance
            # (top-k alternative ranking for learned placements)
            raw, info = self.placement.place_with_info(self, job, self.now)
        else:
            raw = self.placement.place(self, job, self.now)
        if clock is not None:
            self.stats.decision_sketch.add(max(clock() - t0, 0.0))
        index = int(raw)
        if not 0 <= index < len(self.cluster.nodes):
            raise SchedulingError(
                f"placement chose node {index}; fleet has "
                f"{len(self.cluster.nodes)} nodes"
            )
        self._node_pending[index].append((job, submit_time))
        self.placements.append((job.benchmark_name, index))
        if self.lifecycle is not None:
            self.lifecycle.placed(
                job, self.now, index, self.cluster.nodes[index].name, info
            )

    def place_job(self, node_index: int, job: Job, at: float | None = None) -> None:
        """Externally-decided placement (the :class:`PlacementEnv` hook):
        admit ``job`` directly onto ``node_index`` at time ``at`` and run
        one dispatch round. Bypasses both the event heap's ARRIVAL path
        and the engine's own placement policy."""
        if self._node_pending is None:
            raise SchedulingError("place_job requires a placement-enabled engine")
        if not 0 <= node_index < len(self.cluster.nodes):
            raise SchedulingError(
                f"node index {node_index} out of range for "
                f"{len(self.cluster.nodes)} nodes"
            )
        t = self.now if at is None else float(at)
        if time_lt(t, self.now):
            raise SchedulingError("cannot place in the past")
        self.now = max(self.now, t)
        self.stats.submitted += 1
        self.stats.admitted += 1
        self._node_pending[node_index].append((job, t))
        self.placements.append((job.benchmark_name, node_index))
        self._dispatch_round()

    def advance_to(self, t: float) -> None:
        """Process every event up to ``t``, then move the clock there
        (even if no event lands exactly at ``t``)."""
        self.run(until=t)
        if t > self.now:
            self.now = float(t)

    # --- per-node observation accessors (PlacementObservation inputs) --
    def node_queue(self, index: int):
        """The (job, submit_time) deque routed to node ``index``."""
        if self._node_pending is None:
            raise SchedulingError("engine has no placement level")
        return self._node_pending[index]

    def node_is_idle(self, index: int) -> bool:
        return self._is_idle[index]

    def node_mix(self, index: int) -> tuple[int, int, int]:
        """Class histogram (CI, MI, US) of the node's last-dispatched
        window — the running mix a newly-routed job would co-run after."""
        mix = self._node_mix[index] if self._node_mix else (0, 0, 0)
        return (mix[0], mix[1], mix[2])

    def window_seen(self, signature: str) -> bool:
        """Whether a window with this :func:`window_signature` has been
        dispatched before — a proxy for decision-cache hit likelihood."""
        return signature in self._window_sigs

    def _decision_cache(self):
        """The PR 6 fleet-wide :class:`DecisionCache`, when the wired
        selector carries one (lifecycle cache-hit provenance)."""
        co = getattr(self.selector, "co_scheduling", None)
        optimizer = getattr(co, "optimizer", None)
        return getattr(optimizer, "decision_cache", None)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch_round(self) -> int:
        """Cut one window per ready idle GPU and run the round.

        Mirrors the batch system's round semantics (same policy
        selection arguments, same window cuts) so small-fleet dispatch
        logs are bitwise-comparable to the old loops. Once all arrival
        sources are dry, the last partial window dispatches regardless
        of ``min_batch`` — the drain semantics.
        """
        if self._node_pending is not None:
            return self._dispatch_round_placed()
        pending = self._pending
        min_batch = self.min_batch if self._work_incoming() else 1
        if self._idle_count == 0 or len(pending) < min_batch:
            return 0
        # how many windows this round can cut
        n_free = self._idle_count
        remaining = len(pending)
        cuts_possible = 0
        while remaining >= min_batch and cuts_possible < n_free:
            remaining -= min(self.window_size, remaining)
            cuts_possible += 1
        # pop that many live idle nodes, earliest-available first, then
        # cut in node order (the old loops' round order)
        entries: list[tuple[float, int, int]] = []
        while self._idle and len(entries) < cuts_possible:
            avail, index, gen = heapq.heappop(self._idle)
            if gen == self._gen[index]:
                entries.append((avail, index, gen))
        entries.sort(key=lambda e: e[1])
        cuts: list[tuple] = []
        for k, (avail, index, gen) in enumerate(entries):
            take = min(self.window_size, len(pending))
            window = [pending.popleft() for _ in range(take)]
            policy = self.selector.select(
                queue_depth=len(pending) + take,
                free_gpus=max(n_free - k, 1),
            )
            cuts.append((index, window, policy))
        scheduled, round_hits = self._schedule_round(cuts)
        for (index, window, policy), (schedule, fell_back) in zip(cuts, scheduled):
            self._execute(index, window, policy, schedule, fell_back, round_hits)
        return len(cuts)

    def _schedule_round(self, cuts) -> tuple[list, int | None]:
        """One batched serving pass over the round's cuts, with the
        decision phase timed and the round's decision-cache hit delta
        captured for lifecycle provenance."""
        timers = self.profile
        cache = self._decision_cache() if self.lifecycle is not None else None
        hits_before = cache.stats.hits if cache is not None else 0
        t0 = timers.clock() if timers is not None else 0.0
        scheduled = self.selector.schedule_batch(
            [([job for job, _ in window], policy) for _, window, policy in cuts]
        )
        if timers is not None:
            timers.add("decision", timers.clock() - t0)
        round_hits = (
            cache.stats.hits - hits_before if cache is not None else None
        )
        if self.telemetry.enabled:
            n = len(cuts)
            self._batch_rounds[n] = self._batch_rounds.get(n, 0) + 1
        return scheduled, round_hits

    def _dispatch_round_placed(self) -> int:
        """Hierarchical round: one window per ready idle node, cut from
        that node's *own* queue (the placement level already decided
        which jobs live where). Crowding selection sees the node-local
        queue depth with ``free_gpus=1`` — each node is its own
        single-GPU serving domain below the placement level."""
        queues = self._node_pending
        min_batch = self.min_batch if self._work_incoming() else 1
        if self._idle_count == 0:
            return 0
        ready: list[tuple[float, int, int]] = []
        parked: list[tuple[float, int, int]] = []
        while self._idle:
            entry = heapq.heappop(self._idle)
            if entry[2] != self._gen[entry[1]]:
                continue  # stale generation
            if len(queues[entry[1]]) >= min_batch:
                ready.append(entry)
            else:
                parked.append(entry)  # idle but nothing routed here yet
        for entry in parked:
            heapq.heappush(self._idle, entry)
        if not ready:
            return 0
        ready.sort(key=lambda e: e[1])  # node order, like the flat round
        cuts: list[tuple] = []
        for avail, index, gen in ready:
            queue = queues[index]
            take = min(self.window_size, len(queue))
            window = [queue.popleft() for _ in range(take)]
            policy = self.selector.select(
                queue_depth=len(queue) + take, free_gpus=1
            )
            cuts.append((index, window, policy))
        scheduled, round_hits = self._schedule_round(cuts)
        for (index, window, policy), (schedule, fell_back) in zip(cuts, scheduled):
            self._execute(index, window, policy, schedule, fell_back, round_hits)
        return len(cuts)

    def _execute(
        self, index, window, policy, schedule, fell_back, round_hits=None
    ) -> None:
        node = self.cluster.nodes[index]
        stats = self.stats
        timers = self.profile
        if fell_back:
            stats.fallback_windows += 1
        start = max(self.now, node.available_at)
        node.device.clock = start
        t0 = timers.clock() if timers is not None else 0.0
        if self.exact_execution:
            outcome = node.execute_schedule_ft(schedule, self.retry)
        else:
            outcome = node.execute_schedule_fast(schedule, self.retry)
        if timers is not None:
            timers.add("replay", timers.clock() - t0)
        stats.windows += 1
        stats.dispatch_retries += outcome.retries
        stats.degraded_groups += outcome.degraded_groups
        if self.power_model is not None:
            joules = 0.0
            for group in schedule.groups:
                joules += self.power_model.group_power(
                    [j.model for j in group.jobs],
                    group.partition,
                    group.corun_time,
                ).energy_joules
            stats.energy_joules += joules
            stats.solo_work += schedule.total_solo_time
        lifecycle = self.lifecycle
        window_seen = False
        if self._node_pending is not None or lifecycle is not None:
            sig = window_signature(job.benchmark_name for job, _ in window)
            window_seen = sig in self._window_sigs
            self._window_sigs.add(sig)
        if self._node_pending is not None:
            mix = [0, 0, 0]
            for job, _ in window:
                mix[CLASS_RANK.get(PAPER_CLASSES.get(job.benchmark_name, "US"), 2)] += 1
            self._node_mix[index] = mix
        if self.collect_windows:
            self.collected_windows.append(
                tuple(job.benchmark_name for job, _ in window)
            )
        effective_policy = self.selector.fcfs.name if fell_back else policy.name
        terminal: list | None = [] if lifecycle is not None else None
        failed = set(outcome.failed_job_ids)
        for job, submit_time in window:
            jid = job.job_id
            if jid in failed:
                attempts = self._attempts.get(jid, 0)
                if attempts < self.max_retries:
                    self._attempts[jid] = attempts + 1
                    stats.requeues += 1
                    self._live_requeues += 1
                    # the crash happens at the job's failure time; the
                    # job re-enters the queue *then*, not retroactively
                    self.events.push(
                        outcome.finish_of[jid],
                        EventKind.REQUEUE,
                        (job, submit_time),
                    )
                    if terminal is not None:
                        terminal.append((job, submit_time, "requeue"))
                else:
                    self._attempts.pop(jid, None)
                    stats.failed += 1
                    if terminal is not None:
                        terminal.append((job, submit_time, "failed"))
            else:
                self._attempts.pop(jid, None)
                stats.completed += 1
                wait = start - submit_time
                stats.wait_sum += wait
                stats.wait_sketch.add(wait)
                if wait > stats.wait_max:
                    stats.wait_max = wait
                turnaround = outcome.finish_of[jid] - submit_time
                stats.turnaround_sum += turnaround
                solo = job.solo_time
                if solo > 0.0:
                    slowdown = turnaround / solo
                    stats.slowdown_sum += slowdown
                    stats.slowdown_sq_sum += slowdown * slowdown
                    stats.slowdown_count += 1
                if terminal is not None:
                    terminal.append((job, submit_time, "completed"))
        self._is_idle[index] = False
        self._idle_count -= 1
        self.events.push(
            outcome.end_time, EventKind.COMPLETION, (index, self._gen[index])
        )
        if lifecycle is not None and terminal is not None:
            t0 = timers.clock() if timers is not None else 0.0
            for job, submit_time, kind in terminal:
                finish = outcome.finish_of[job.job_id]
                lifecycle.attempt(
                    job,
                    start,
                    finish,
                    node.name,
                    effective_policy,
                    fell_back,
                    crashed=kind != "completed",
                    window_size=len(window),
                    window_seen=window_seen,
                    cache_hits=round_hits,
                )
                if kind == "requeue":
                    lifecycle.requeued(job, finish)
                elif kind == "failed":
                    lifecycle.failed(job, finish)
                else:
                    lifecycle.completed(job, finish, wait=start - submit_time)
            if timers is not None:
                timers.add("telemetry", timers.clock() - t0)
        if self.keep_history:
            self.history.append(
                DispatchRecord(
                    node_name=node.name,
                    policy_name=effective_policy,
                    window_size=len(window),
                    start_time=start,
                    end_time=outcome.end_time,
                    throughput_gain=schedule.throughput_gain,
                    retries=outcome.retries,
                    fell_back=fell_back,
                    n_failed=len(failed),
                )
            )
            self.schedules.append(schedule)
        if self.telemetry.enabled:
            t0 = timers.clock() if timers is not None else 0.0
            # only the trace span is emitted per window; counters and
            # gauges go through the batched mirror (_sync_metrics)
            self.telemetry.span(
                "window",
                node.name,
                start,
                outcome.end_time,
                category="fleet",
                policy=effective_policy,
                window_size=len(window),
                fell_back=fell_back,
            )
            pol = self._policy_windows
            pol[effective_policy] = pol.get(effective_policy, 0) + 1
            if timers is not None:
                timers.add("telemetry", timers.clock() - t0)

    # ------------------------------------------------------------------
    @property
    def pending_depth(self) -> int:
        return self._queue_depth()

    def summary(self) -> dict:
        """The stats dict plus fleet-level derived quantities."""
        doc = self.stats.to_dict()
        doc["nodes"] = len(self.cluster.nodes)
        doc["makespan"] = self.cluster.makespan
        doc["utilization"] = self.cluster.utilization()
        doc["pending"] = self._queue_depth()
        doc["placement"] = (
            getattr(self.placement, "name", type(self.placement).__name__)
            if self.placement is not None
            else None
        )
        if self.profile is not None:
            doc["phases"] = self.profile.to_dict()
        if self.lifecycle is not None:
            doc["lifecycle_open_jobs"] = self.lifecycle.open_jobs
            doc["lifecycle_finished"] = self.lifecycle.finished
        return doc
