"""Window-scheduling policies and the load-dependent selector.

Section VI of the paper: co-scheduling pays off on over-crowded systems
(always-runnable jobs); under light load, plain FCFS without
co-scheduling can be the better choice. :class:`PolicySelector` makes
that switch on queue depth, the "policy selection mechanism" the paper
leaves as future work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.core.optimizer import OnlineOptimizer
from repro.core.problem import Schedule, ScheduledGroup
from repro.workloads.jobs import Job

__all__ = ["FcfsPolicy", "CoSchedulingPolicy", "PolicySelector"]


class FcfsPolicy:
    """First come, first served: exclusive runs in submission order."""

    name = "FCFS"

    def schedule(self, window: list[Job]) -> Schedule:
        if not window:
            raise SchedulingError("empty window")
        sched = Schedule(method=self.name)
        for job in window:
            sched.append(ScheduledGroup.run_solo(job))
        return sched


class CoSchedulingPolicy:
    """The node-local RL optimizer wrapped as a policy."""

    name = "MIG+MPS w/ RL"

    def __init__(self, optimizer: OnlineOptimizer):
        self.optimizer = optimizer

    def schedule(self, window: list[Job]) -> Schedule:
        return self.optimizer.optimize(window).schedule


@dataclass
class PolicySelector:
    """Chooses the policy from the system state (queue depth).

    ``crowding_threshold`` is the queue depth (in jobs per free GPU)
    at which co-scheduling becomes worthwhile; below it, FCFS avoids
    any co-run slowdown for jobs that would not have waited anyway.
    """

    co_scheduling: CoSchedulingPolicy
    fcfs: FcfsPolicy
    crowding_threshold: int = 4

    def select(self, queue_depth: int, free_gpus: int):
        if free_gpus <= 0:
            raise SchedulingError("policy selection needs at least one GPU")
        if queue_depth / free_gpus >= self.crowding_threshold:
            return self.co_scheduling
        return self.fcfs
