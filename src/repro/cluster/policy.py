"""Window-scheduling policies and the load-dependent selector.

Section VI of the paper: co-scheduling pays off on over-crowded systems
(always-runnable jobs); under light load, plain FCFS without
co-scheduling can be the better choice. :class:`PolicySelector` makes
that switch on queue depth, the "policy selection mechanism" the paper
leaves as future work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError, SchedulingError
from repro.core.optimizer import OnlineOptimizer
from repro.core.problem import Schedule, ScheduledGroup
from repro.workloads.jobs import Job

__all__ = ["FcfsPolicy", "CoSchedulingPolicy", "PolicySelector"]


class FcfsPolicy:
    """First come, first served: exclusive runs in submission order."""

    name = "FCFS"

    def schedule(self, window: list[Job]) -> Schedule:
        if not window:
            raise SchedulingError("empty window")
        sched = Schedule(method=self.name)
        for job in window:
            sched.append(ScheduledGroup.run_solo(job))
        return sched

    def schedule_many(self, windows: list[list[Job]]) -> list[Schedule]:
        """Batch form; FCFS has no cross-window work to share."""
        return [self.schedule(w) for w in windows]


class CoSchedulingPolicy:
    """The node-local RL optimizer wrapped as a policy."""

    name = "MIG+MPS w/ RL"

    def __init__(self, optimizer: OnlineOptimizer):
        self.optimizer = optimizer

    def schedule(self, window: list[Job]) -> Schedule:
        return self.optimizer.optimize(window).schedule

    def schedule_many(self, windows: list[list[Job]]) -> list[Schedule]:
        """Batch form: one serving pass (batched inference + decision
        cache) covers every window; schedules are bitwise-identical to
        per-window :meth:`schedule` calls."""
        return [d.schedule for d in self.optimizer.optimize_many(windows)]


@dataclass
class PolicySelector:
    """Chooses the policy from the system state (queue depth).

    ``crowding_threshold`` is the queue depth (in jobs per free GPU)
    at which co-scheduling becomes worthwhile; below it, FCFS avoids
    any co-run slowdown for jobs that would not have waited anyway.
    """

    co_scheduling: CoSchedulingPolicy
    fcfs: FcfsPolicy
    crowding_threshold: int = 4

    def select(self, queue_depth: int, free_gpus: int):
        if free_gpus <= 0:
            raise SchedulingError("policy selection needs at least one GPU")
        if queue_depth / free_gpus >= self.crowding_threshold:
            return self.co_scheduling
        return self.fcfs

    def schedule_batch(
        self, cuts: list[tuple[list[Job], object]]
    ) -> list[tuple[Schedule, bool]]:
        """Schedule one dispatch round of ``(window, policy)`` cuts.

        All co-scheduling windows of the round go through the optimizer's
        batched serving path together (one lockstep inference pass plus
        the shared decision cache). Failure isolation matches the
        per-window dispatch loops: if the batched pass raises, each of
        its windows retries individually, and any window whose policy
        still raises falls back to FCFS. Returns ``(schedule,
        fell_back)`` per cut, in cut order.
        """
        results: list[tuple[Schedule, bool] | None] = [None] * len(cuts)
        batched = getattr(self.co_scheduling, "schedule_many", None)
        co = [
            i for i, (_, policy) in enumerate(cuts)
            if policy is self.co_scheduling
        ]
        if co and batched is not None:
            try:
                schedules = batched([cuts[i][0] for i in co])
            except ReproError:
                schedules = None
            if schedules is not None:
                for i, schedule in zip(co, schedules):
                    results[i] = (schedule, False)
        for i, (window, policy) in enumerate(cuts):
            if results[i] is not None:
                continue
            try:
                results[i] = (policy.schedule(window), False)
            except ReproError:
                results[i] = (self.fcfs.schedule(window), True)
        return [r for r in results if r is not None]
