"""Two-level cluster scheduler (paper Section VI).

Top level: dispatch the next window of the global queue to the GPU that
frees up first (the "node/GPU allocations" level the paper adds above
the hierarchical partitioning). Bottom level: the per-window policy —
normally the node-local RL optimizer, or FCFS under light load via
:class:`~repro.cluster.policy.PolicySelector`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.cluster.node import ClusterState
from repro.cluster.policy import PolicySelector
from repro.workloads.jobs import JobQueue

__all__ = ["DispatchRecord", "ClusterScheduler"]


@dataclass(frozen=True)
class DispatchRecord:
    """One window dispatched to one GPU."""

    node_name: str
    policy_name: str
    window_size: int
    start_time: float
    end_time: float
    throughput_gain: float


@dataclass
class ClusterScheduler:
    """Drains a global job queue over a multi-GPU cluster."""

    cluster: ClusterState
    selector: PolicySelector
    window_size: int = 12
    history: list[DispatchRecord] = field(default_factory=list)

    def run(self, queue: JobQueue) -> list[DispatchRecord]:
        """Dispatch the whole queue; returns the dispatch log.

        Windows are cut FIFO from the queue head (the paper's window
        semantics); each goes to the earliest-available GPU under the
        policy the selector picks for the current load.
        """
        if self.window_size < 1:
            raise SchedulingError("window size must be positive")
        records: list[DispatchRecord] = []
        while len(queue) > 0:
            w = min(self.window_size, len(queue))
            window = queue.pop_window(w)
            node = self.cluster.least_loaded()
            free = sum(
                1
                for n in self.cluster.nodes
                if n.available_at <= node.available_at + 1e-9
            )
            policy = self.selector.select(
                queue_depth=len(queue) + w, free_gpus=free
            )
            schedule = policy.schedule(window)
            start = node.available_at
            end = node.execute_schedule(schedule)
            record = DispatchRecord(
                node_name=node.name,
                policy_name=policy.name,
                window_size=w,
                start_time=start,
                end_time=end,
                throughput_gain=schedule.throughput_gain,
            )
            records.append(record)
        self.history.extend(records)
        return records

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        return self.cluster.makespan

    def summary(self) -> dict:
        """Aggregate statistics for reporting."""
        if not self.history:
            raise SchedulingError("nothing dispatched yet")
        per_node: dict[str, int] = {}
        for r in self.history:
            per_node[r.node_name] = per_node.get(r.node_name, 0) + 1
        return {
            "windows_dispatched": len(self.history),
            "makespan": self.makespan,
            "utilization": self.cluster.utilization(),
            "windows_per_node": per_node,
            "mean_window_gain": sum(
                r.throughput_gain for r in self.history
            )
            / len(self.history),
        }
