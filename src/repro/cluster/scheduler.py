"""Two-level cluster scheduler (paper Section VI).

Top level: dispatch the next window of the global queue to the GPU that
frees up first (the "node/GPU allocations" level the paper adds above
the hierarchical partitioning). Bottom level: the per-window policy —
normally the node-local RL optimizer, or FCFS under light load via
:class:`~repro.cluster.policy.PolicySelector`.

The dispatch loop is failure-aware: a window whose policy raises falls
back to FCFS, device-level faults are retried with backoff inside
:meth:`~repro.cluster.node.GpuNode.execute_schedule_ft`, and crashed
jobs re-enter the global queue until their retry budget is spent.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.clock import time_le
from repro.errors import SchedulingError
from repro.faults import FaultInjector, RetryPolicy
from repro.telemetry.facade import NULL_TELEMETRY, Telemetry
from repro.cluster.node import ClusterState
from repro.cluster.policy import PolicySelector
from repro.workloads.jobs import Job, JobQueue

__all__ = ["DispatchRecord", "ClusterScheduler"]

#: windows per dispatch round (batched-serving batch size)
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


@dataclass(frozen=True)
class DispatchRecord:
    """One window dispatched to one GPU."""

    node_name: str
    policy_name: str
    window_size: int
    start_time: float
    end_time: float
    throughput_gain: float
    retries: int = 0  # device-level retries spent on this window
    fell_back: bool = False  # policy raised; FCFS scheduled the window
    n_failed: int = 0  # jobs that crashed during this window


@dataclass
class ClusterScheduler:
    """Drains a global job queue over a multi-GPU cluster."""

    cluster: ClusterState
    selector: PolicySelector
    window_size: int = 12
    faults: FaultInjector | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    max_retries: int = 3
    telemetry: Telemetry = NULL_TELEMETRY
    history: list[DispatchRecord] = field(default_factory=list)
    failed_jobs: list[Job] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.faults is not None:
            for node in self.cluster.nodes:
                node.device.faults = self.faults
            self.faults.telemetry = self.telemetry
        for node in self.cluster.nodes:
            node.device.telemetry = self.telemetry

    def run(self, queue: JobQueue) -> list[DispatchRecord]:
        """Dispatch the whole queue; returns the dispatch log.

        Windows are cut FIFO from the queue head (the paper's window
        semantics). Each dispatch *round* cuts one window per GPU that
        frees up at the earliest time and schedules them as one batch —
        co-scheduling windows share a single batched serving pass
        (lockstep inference plus the fleet decision cache) instead of
        one optimizer call each. Per-window policy selection, execution
        and accounting are unchanged; crashed jobs re-enter the queue
        tail (joining a *later* round), and after ``max_retries``
        re-queues they are dropped into :attr:`failed_jobs` so the drain
        terminates with every job accounted for.
        """
        if self.window_size < 1:
            raise SchedulingError("window size must be positive")
        records: list[DispatchRecord] = []
        attempts: dict[str, int] = {}
        nodes = self.cluster.nodes
        # node-free events on a min-heap: each round jumps straight to
        # the earliest availability instead of rescanning every node
        avail_heap = [(node.available_at, i) for i, node in enumerate(nodes)]
        heapq.heapify(avail_heap)
        while len(queue) > 0:
            t_min = avail_heap[0][0]
            popped = [heapq.heappop(avail_heap)]
            while avail_heap and time_le(avail_heap[0][0], t_min):
                popped.append(heapq.heappop(avail_heap))
            popped.sort(key=lambda entry: entry[1])
            ready = [nodes[i] for _, i in popped]
            # one window per ready GPU, in node order — exactly the
            # windows the one-at-a-time loop would have cut, since every
            # executed window pushes its node beyond t_min
            cuts: list[tuple] = []
            for k, node in enumerate(ready):
                if len(queue) == 0:
                    break
                w = min(self.window_size, len(queue))
                window = queue.pop_window(w)
                policy = self.selector.select(
                    queue_depth=len(queue) + w, free_gpus=len(ready) - k
                )
                cuts.append((node, window, policy, len(queue)))
            scheduled = self.selector.schedule_batch(
                [(window, policy) for _, window, policy, _ in cuts]
            )
            if self.telemetry.enabled:
                self.telemetry.observe(
                    "dispatch_batch_windows",
                    float(len(cuts)),
                    buckets=_BATCH_BUCKETS,
                )
            for (node, window, policy, depth), (schedule, fell_back) in zip(
                cuts, scheduled
            ):
                if fell_back:
                    policy = self.selector.fcfs
                start = node.available_at
                if self.telemetry.enabled:
                    self.telemetry.gauge("queue_depth", depth)
                    if fell_back:
                        self.telemetry.event(
                            "fallback",
                            node.name,
                            start,
                            category="scheduler",
                            policy=policy.name,
                        )
                        self.telemetry.count(
                            "policy_fallbacks_total", 1, node=node.name
                        )
                outcome = node.execute_schedule_ft(schedule, self.retry)
                failed_ids = set(outcome.failed_job_ids)
                n_failed = 0
                for job in window:
                    if job.job_id not in failed_ids:
                        continue
                    n_failed += 1
                    n = attempts.get(job.job_id, 0)
                    if n >= self.max_retries:
                        self.failed_jobs.append(job)
                    else:
                        attempts[job.job_id] = n + 1
                        queue.push(job)
                record = DispatchRecord(
                    node_name=node.name,
                    policy_name=policy.name,
                    window_size=len(window),
                    start_time=start,
                    end_time=outcome.end_time,
                    throughput_gain=schedule.throughput_gain,
                    retries=outcome.retries,
                    fell_back=fell_back,
                    n_failed=n_failed,
                )
                records.append(record)
                if self.telemetry.enabled:
                    self.telemetry.span(
                        "window",
                        node.name,
                        start,
                        outcome.end_time,
                        category="scheduler",
                        policy=policy.name,
                        window_size=len(window),
                        gain=schedule.throughput_gain,
                        retries=outcome.retries,
                        fell_back=fell_back,
                        n_failed=n_failed,
                    )
                    self.telemetry.count(
                        "windows_dispatched_total",
                        1,
                        node=node.name,
                        policy=policy.name,
                    )
                    self.telemetry.observe(
                        "window_gain", schedule.throughput_gain, node=node.name
                    )
                    self.telemetry.observe(
                        "window_seconds",
                        outcome.end_time - start,
                        node=node.name,
                    )
            for _, i in popped:
                heapq.heappush(avail_heap, (nodes[i].available_at, i))
        self.history.extend(records)
        return records

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        return self.cluster.makespan

    def summary(self) -> dict:
        """Aggregate statistics for reporting."""
        if not self.history:
            raise SchedulingError("nothing dispatched yet")
        per_node: dict[str, int] = {}
        for r in self.history:
            per_node[r.node_name] = per_node.get(r.node_name, 0) + 1
        return {
            "windows_dispatched": len(self.history),
            "makespan": self.makespan,
            "utilization": self.cluster.utilization(),
            "windows_per_node": per_node,
            "mean_window_gain": sum(
                r.throughput_gain for r in self.history
            )
            / len(self.history),
            "windows_fell_back": sum(1 for r in self.history if r.fell_back),
            "dispatch_retries": sum(r.retries for r in self.history),
            "jobs_failed": len(self.failed_jobs),
        }
