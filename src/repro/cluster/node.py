"""Cluster nodes: named GPUs with independent clocks.

The cluster layer only needs each device's availability horizon (when
its current work drains) and a way to execute a scheduled window on it;
both come from :class:`repro.gpu.device.SimulatedGpu`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.core.problem import Schedule
from repro.gpu.arch import A100_40GB, GpuSpec
from repro.gpu.device import SimulatedGpu

__all__ = ["GpuNode", "ClusterState"]


@dataclass
class GpuNode:
    """One GPU in the cluster (the paper's node/GPU allocation unit)."""

    name: str
    device: SimulatedGpu

    @classmethod
    def create(cls, name: str, spec: GpuSpec = A100_40GB) -> "GpuNode":
        return cls(name=name, device=SimulatedGpu(spec))

    @property
    def available_at(self) -> float:
        """Wall-clock time at which this GPU becomes free."""
        return self.device.clock

    def execute_schedule(self, schedule: Schedule) -> float:
        """Run a node-local schedule's groups back to back.

        Returns the completion time on this GPU's clock. Groups were
        already simulated by the window scheduler; here the device
        replays them to advance its clock and keep per-GPU history —
        which also re-validates every partition against the device.
        """
        if not schedule.groups:
            raise SchedulingError("cannot execute an empty schedule")
        for group in schedule.groups:
            self.device.run_group(list(group.jobs), group.partition)
        return self.device.clock


@dataclass
class ClusterState:
    """All nodes plus global accounting."""

    nodes: list[GpuNode] = field(default_factory=list)

    @classmethod
    def homogeneous(
        cls, n_gpus: int, spec: GpuSpec = A100_40GB
    ) -> "ClusterState":
        if n_gpus <= 0:
            raise SchedulingError("a cluster needs at least one GPU")
        return cls(
            nodes=[GpuNode.create(f"gpu{i:02d}", spec) for i in range(n_gpus)]
        )

    def least_loaded(self) -> GpuNode:
        return min(self.nodes, key=lambda n: n.available_at)

    @property
    def makespan(self) -> float:
        return max(n.available_at for n in self.nodes)

    @property
    def total_busy_time(self) -> float:
        return sum(n.available_at for n in self.nodes)

    def utilization(self) -> float:
        """Fraction of cluster-time busy until the global makespan."""
        span = self.makespan
        if span <= 0:
            return 0.0
        return self.total_busy_time / (span * len(self.nodes))
