"""Cluster nodes: named GPUs with independent clocks.

The cluster layer only needs each device's availability horizon (when
its current work drains) and a way to execute a scheduled window on it;
both come from :class:`repro.gpu.device.SimulatedGpu`. The
fault-tolerant execution path (:meth:`GpuNode.execute_schedule_ft`)
adds bounded retry with exponential backoff for transient device /
MIG-reconfiguration faults and degrades an unconfigurable group to
solo (time-sharing) runs, reporting per-job outcomes so the batch
layer can re-queue crashed jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FaultError, SchedulingError
from repro.faults import FaultKind, RetryPolicy
from repro.core.problem import Schedule, solo_partition
from repro.gpu.arch import A100_40GB, GpuSpec
from repro.gpu.device import LaunchResult, SimulatedGpu
from repro.gpu.partition import format_partition

__all__ = ["ExecutionOutcome", "GpuNode", "ClusterState"]


@dataclass(frozen=True)
class ExecutionOutcome:
    """What actually happened when a schedule ran on one GPU."""

    end_time: float
    finish_of: dict  # job_id -> absolute finish time on this node's clock
    failed_job_ids: tuple
    retries: int  # device-level retries spent (transient/reconfig)
    degraded_groups: int  # groups that exhausted retries and ran solo


@dataclass
class GpuNode:
    """One GPU in the cluster (the paper's node/GPU allocation unit)."""

    name: str
    device: SimulatedGpu

    def __post_init__(self) -> None:
        # The device's trace track carries the node's name, so exported
        # timelines get one track per GPU node.
        self.device.track = self.name

    @classmethod
    def create(cls, name: str, spec: GpuSpec = A100_40GB) -> "GpuNode":
        return cls(name=name, device=SimulatedGpu(spec))

    @property
    def available_at(self) -> float:
        """Wall-clock time at which this GPU becomes free."""
        return self.device.clock

    @property
    def busy_time(self) -> float:
        """Time this GPU spent executing (excludes idle gaps/backoff)."""
        return self.device.busy_time

    def execute_schedule(self, schedule: Schedule) -> float:
        """Run a node-local schedule's groups back to back.

        Returns the completion time on this GPU's clock. Groups were
        already simulated by the window scheduler; here the device
        replays them to advance its clock and keep per-GPU history —
        which also re-validates every partition against the device.
        """
        if not schedule.groups:
            raise SchedulingError("cannot execute an empty schedule")
        for group in schedule.groups:
            self.device.run_group(list(group.jobs), group.partition)
        return self.device.clock

    # ------------------------------------------------------------------
    # fault-tolerant execution
    # ------------------------------------------------------------------
    def execute_schedule_ft(
        self, schedule: Schedule, retry: RetryPolicy
    ) -> ExecutionOutcome:
        """Like :meth:`execute_schedule`, but failure-aware.

        Transient device errors and MIG reconfiguration faults are
        retried up to ``retry.max_retries`` times, waiting an
        exponentially growing (simulated) backoff between attempts. A
        group that still cannot launch degrades to solo runs — time
        sharing needs no MIG reconfiguration, so it is always
        realizable. Crashed launches are reported, never raised: the
        caller decides whether to re-queue.

        With no injector attached this replays exactly the same
        ``run_group`` calls as :meth:`execute_schedule`.
        """
        if not schedule.groups:
            raise SchedulingError("cannot execute an empty schedule")
        tel = self.device.telemetry
        finish_of: dict[str, float] = {}
        failed: list[str] = []
        retries = 0
        degraded = 0
        for group in schedule.groups:
            jobs = list(group.jobs)
            record = None
            attempt = 0
            while True:
                try:
                    record = self.device.run_group(jobs, group.partition)
                    break
                except FaultError:
                    attempt += 1
                    retries += 1
                    if tel.enabled:
                        tel.event(
                            "retry",
                            self.name,
                            self.device.clock,
                            category="fault",
                            attempt=attempt,
                        )
                        tel.count("dispatch_retries_total", 1, node=self.name)
                    if attempt > retry.max_retries:
                        break
                    wait = retry.backoff(attempt)
                    if tel.enabled:
                        tel.span(
                            "backoff",
                            self.name,
                            self.device.clock,
                            self.device.clock + wait,
                            category="fault",
                            attempt=attempt,
                        )
                    self.device.clock += wait
            if record is not None:
                launches = record.launches
            else:
                # Degraded path: the group never launched; run each job
                # exclusively instead (the FCFS fallback for this group).
                degraded += 1
                if tel.enabled:
                    tel.event(
                        "degraded",
                        self.name,
                        self.device.clock,
                        category="fault",
                        jobs=[j.benchmark_name for j in jobs],
                    )
                    tel.count("degraded_groups_total", 1, node=self.name)
                launches = []
                for job in jobs:
                    launch, extra = self._solo_with_retry(job, retry)
                    retries += extra
                    if launch is None:
                        # even solo launches kept faulting: report the
                        # job as failed at the current clock
                        launch = LaunchResult(
                            job_id=job.job_id,
                            benchmark_name=job.benchmark_name,
                            start_time=self.device.clock,
                            elapsed=0.0,
                            failed=True,
                        )
                    launches.append(launch)
            for launch in launches:
                finish_of[launch.job_id] = launch.end_time
                if launch.failed:
                    failed.append(launch.job_id)
        return ExecutionOutcome(
            end_time=self.device.clock,
            finish_of=finish_of,
            failed_job_ids=tuple(failed),
            retries=retries,
            degraded_groups=degraded,
        )

    # ------------------------------------------------------------------
    # fast replay (the fleet engine's execution path)
    # ------------------------------------------------------------------
    def execute_schedule_fast(
        self, schedule: Schedule, retry: RetryPolicy
    ) -> ExecutionOutcome:
        """Replay an already-simulated schedule without re-driving the
        MIG/MPS state machines.

        Every :class:`~repro.core.problem.ScheduledGroup` carries the
        :class:`~repro.perfmodel.corun.CoRunResult` the policy computed
        for it, and :meth:`execute_schedule_ft` would recover the very
        same object from the co-run cache — so the replay reuses it and
        skips the configuration state machine entirely. Outcomes
        (finish times, failed ids, retries, clock/busy-time arithmetic,
        and the fault injector's draw sequence) are bitwise-identical
        to :meth:`execute_schedule_ft`; what the fast path drops is the
        per-group device bookkeeping (``device.history``) and the
        device-level telemetry spans. The fleet engine dispatches
        through this path; the exact path remains the trace/debug mode.
        """
        if not schedule.groups:
            raise SchedulingError("cannot execute an empty schedule")
        device = self.device
        injector = device.faults
        if injector is None or not injector.enabled:
            finish_of: dict[str, float] = {}
            clock = device.clock
            busy = device.busy_time
            for group in schedule.groups:
                result = group.result
                for job, t in zip(group.jobs, result.finish_times):
                    finish_of[job.job_id] = clock + t
                clock += result.makespan
                busy += result.makespan  # per-group, like the exact path
            device.clock = clock
            device.busy_time = busy
            return ExecutionOutcome(
                end_time=clock,
                finish_of=finish_of,
                failed_job_ids=(),
                retries=0,
                degraded_groups=0,
            )
        return self._replay_with_faults(schedule, retry, injector)

    def _replay_with_faults(
        self, schedule: Schedule, retry: RetryPolicy, injector
    ) -> ExecutionOutcome:
        """The fault-aware half of :meth:`execute_schedule_fast`.

        Reproduces :meth:`execute_schedule_ft`'s decision sequence —
        per attempt: one transient draw, then (MIG groups only) one
        reconfiguration draw; per launched job: one fault-kind draw plus
        a straggler-factor draw when stretched — so the injector's
        per-key streams and counters advance exactly as on the exact
        path.
        """
        device = self.device
        tel = device.telemetry
        config = injector.config
        finish_of: dict[str, float] = {}
        failed: list[str] = []
        retries = 0
        degraded = 0

        def replay_group(jobs, result):
            """One launched group: per-job faults + clock arithmetic."""
            start = device.clock
            makespan = 0.0
            for job, t in zip(jobs, result.finish_times):
                kind = injector.job_fault(job.benchmark_name)
                if kind is FaultKind.JOB_FAILURE:
                    elapsed = t * config.crash_fraction
                    if tel.enabled:
                        tel.event(
                            "fault:job_failure",
                            self.name,
                            start + elapsed,
                            category="fault",
                            job=job.benchmark_name,
                        )
                    failed.append(job.job_id)
                elif kind is FaultKind.STRAGGLER:
                    elapsed = t * injector.straggler_factor(job.benchmark_name)
                    if tel.enabled:
                        tel.event(
                            "fault:straggler",
                            self.name,
                            start,
                            category="fault",
                            job=job.benchmark_name,
                            slowdown=elapsed / t if t > 0 else 1.0,
                        )
                else:
                    elapsed = t
                finish_of[job.job_id] = start + elapsed
                if elapsed > makespan:
                    makespan = elapsed
            device.clock = start + makespan
            device.busy_time += makespan

        def attempt_launch(signature, mig_label):
            """One launch attempt's device-level draws; True = launched."""
            if injector.launch_hits_transient(signature):
                if tel.enabled:
                    tel.event(
                        "fault:transient",
                        self.name,
                        device.clock,
                        category="fault",
                    )
                return False
            if mig_label is not None and injector.reconfig_fails(mig_label):
                if tel.enabled:
                    tel.event(
                        "fault:reconfig",
                        self.name,
                        device.clock,
                        category="fault",
                        partition=mig_label,
                    )
                return False
            return True

        def launch_with_retry(signature, mig_label):
            """The ft retry loop; returns (launched, retries_spent)."""
            attempt = 0
            spent = 0
            while True:
                if attempt_launch(signature, mig_label):
                    return True, spent
                attempt += 1
                spent += 1
                if tel.enabled:
                    tel.event(
                        "retry",
                        self.name,
                        device.clock,
                        category="fault",
                        attempt=attempt,
                    )
                    tel.count("dispatch_retries_total", 1, node=self.name)
                if attempt > retry.max_retries:
                    return False, spent
                wait = retry.backoff(attempt)
                if tel.enabled:
                    tel.span(
                        "backoff",
                        self.name,
                        device.clock,
                        device.clock + wait,
                        category="fault",
                        attempt=attempt,
                    )
                device.clock += wait

        from repro.perfmodel.cache import cached_simulate_corun

        solo_tree = solo_partition()
        for group in schedule.groups:
            jobs = group.jobs
            signature = "+".join(sorted(j.benchmark_name for j in jobs))
            mig_label = (
                format_partition(group.partition)
                if group.partition.mig_enabled
                else None
            )
            launched, spent = launch_with_retry(signature, mig_label)
            retries += spent
            if launched:
                replay_group(jobs, group.result)
                continue
            # Degraded path: run each member solo (time sharing needs no
            # MIG reconfiguration), with its own bounded retry.
            degraded += 1
            if tel.enabled:
                tel.event(
                    "degraded",
                    self.name,
                    device.clock,
                    category="fault",
                    jobs=[j.benchmark_name for j in jobs],
                )
                tel.count("degraded_groups_total", 1, node=self.name)
            for job in jobs:
                launched, spent = launch_with_retry(job.benchmark_name, None)
                retries += spent
                if launched:
                    solo = cached_simulate_corun([job.model], solo_tree)
                    replay_group((job,), solo)
                else:
                    # even solo launches kept faulting: failed in place
                    finish_of[job.job_id] = device.clock
                    failed.append(job.job_id)
        return ExecutionOutcome(
            end_time=device.clock,
            finish_of=finish_of,
            failed_job_ids=tuple(failed),
            retries=retries,
            degraded_groups=degraded,
        )

    def _solo_with_retry(self, job, retry: RetryPolicy):
        """One solo run with bounded retries; (launch | None, retries)."""
        attempt = 0
        tel = self.device.telemetry
        while True:
            try:
                return self.device.run_solo(job), attempt
            except FaultError:
                attempt += 1
                if tel.enabled:
                    tel.event(
                        "retry",
                        self.name,
                        self.device.clock,
                        category="fault",
                        attempt=attempt,
                        job=job.benchmark_name,
                    )
                    tel.count("dispatch_retries_total", 1, node=self.name)
                if attempt > retry.max_retries:
                    return None, attempt
                wait = retry.backoff(attempt)
                if tel.enabled:
                    tel.span(
                        "backoff",
                        self.name,
                        self.device.clock,
                        self.device.clock + wait,
                        category="fault",
                        attempt=attempt,
                    )
                self.device.clock += wait


@dataclass
class ClusterState:
    """All nodes plus global accounting."""

    nodes: list[GpuNode] = field(default_factory=list)

    @classmethod
    def homogeneous(
        cls, n_gpus: int, spec: GpuSpec = A100_40GB
    ) -> "ClusterState":
        if n_gpus <= 0:
            raise SchedulingError("a cluster needs at least one GPU")
        return cls(
            nodes=[GpuNode.create(f"gpu{i:02d}", spec) for i in range(n_gpus)]
        )

    def least_loaded(self) -> GpuNode:
        return min(self.nodes, key=lambda n: n.available_at)

    @property
    def makespan(self) -> float:
        return max(n.available_at for n in self.nodes)

    @property
    def total_busy_time(self) -> float:
        """Sum of executing time over nodes.

        Measured per node from actual group execution, not from the
        availability horizon — a clock jumped forward over an idle gap
        (as the batch system does when dispatch happens late) must not
        count as busy time.
        """
        return sum(n.busy_time for n in self.nodes)

    def utilization(self) -> float:
        """Fraction of cluster-time busy until the global makespan."""
        span = self.makespan
        if span <= 0:
            return 0.0
        return self.total_busy_time / (span * len(self.nodes))
