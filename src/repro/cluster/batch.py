"""A Slurm-like batch-system facade over the cluster scheduler.

The paper's stated integration target is "an existing HPC cluster
management tool such as Slurm" (Sections VI/VII). This module provides
that integration surface: a miniature batch system with the familiar
verbs —

* :meth:`BatchSystem.sbatch` — submit a job (returns a job id),
* :meth:`BatchSystem.squeue` — pending/running/completed job states,
* :meth:`BatchSystem.sinfo` — per-GPU node states,
* :meth:`BatchSystem.tick` — advance simulated wall-clock time,
  dispatching windows to free GPUs under the configured policy
  selector (co-scheduling when crowded, FCFS otherwise).

Time is event-driven: the system dispatches whenever a GPU is free and
enough jobs are pending; job completion times come from the underlying
schedule simulation.

Fault tolerance: with a :class:`~repro.faults.FaultInjector` attached,
dispatch survives injected faults — transient device errors and MIG
reconfiguration failures are retried with exponential backoff (and an
unconfigurable group degrades to solo runs), crashed jobs are
re-queued up to ``max_retries`` times before landing in the terminal
``FAILED`` state, and a window whose policy raises (e.g. the RL
optimizer) falls back to FCFS instead of aborting the drain.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass

from repro.clock import time_le, time_lt
from repro.errors import SchedulingError
from repro.faults import FaultInjector, RetryPolicy
from repro.telemetry.facade import NULL_TELEMETRY, Telemetry
from repro.cluster.node import ClusterState
from repro.cluster.policy import PolicySelector
from repro.cluster.scheduler import DispatchRecord
from repro.workloads.jobs import Job

__all__ = ["JobState", "BatchJob", "BatchSystem"]

#: queue-wait histogram buckets (simulated seconds)
_WAIT_BUCKETS = (
    1.0, 5.0, 15.0, 60.0, 300.0, 900.0, 1800.0, 3600.0, 7200.0, 14400.0,
)
#: windows per dispatch round (batched-serving batch size)
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class JobState(enum.Enum):
    PENDING = "PD"
    RUNNING = "R"
    COMPLETED = "CD"
    FAILED = "F"
    CANCELLED = "CA"


@dataclass
class BatchJob:
    """Accounting record for one submission."""

    job: Job
    submit_time: float
    state: JobState = JobState.PENDING
    node: str | None = None
    start_time: float | None = None
    end_time: float | None = None
    retries: int = 0  # times this job was re-queued after a crash

    @property
    def wait_time(self) -> float | None:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def turnaround(self) -> float | None:
        if self.end_time is None:
            return None
        return self.end_time - self.submit_time


class BatchSystem:
    """Miniature batch scheduler with a Slurm-shaped interface."""

    def __init__(
        self,
        cluster: ClusterState,
        selector: PolicySelector,
        window_size: int = 12,
        min_batch: int = 2,
        faults: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        max_retries: int = 3,
        telemetry: Telemetry = NULL_TELEMETRY,
    ):
        if window_size < 1:
            raise SchedulingError("window size must be positive")
        if min_batch < 1:
            raise SchedulingError("min batch must be positive")
        if max_retries < 0:
            raise SchedulingError("max_retries cannot be negative")
        self.cluster = cluster
        self.selector = selector
        self.window_size = window_size
        self.min_batch = min_batch
        self.faults = faults
        self.retry = retry or RetryPolicy()
        self.max_retries = max_retries
        self.telemetry = telemetry
        self.now = 0.0
        self.fallback_windows = 0  # policy raised -> FCFS took over
        self.dispatch_retries = 0  # device-level retries spent
        self.degraded_groups = 0  # groups that fell back to solo runs
        self.history: list[DispatchRecord] = []  # one entry per dispatch
        self._records: dict[str, BatchJob] = {}
        self._pending: list[str] = []
        # RUNNING jobs keyed on end time, so each completion is
        # processed exactly once (tick used to rescan every record ever
        # submitted per loop iteration — quadratic over long drains)
        self._running: list[tuple[float, str]] = []
        if faults is not None:
            for node in cluster.nodes:
                node.device.faults = faults
            faults.telemetry = telemetry
        for node in cluster.nodes:
            node.device.telemetry = telemetry

    # ------------------------------------------------------------------
    # user-facing verbs
    # ------------------------------------------------------------------
    def sbatch(self, benchmark_name: str, user: str = "hpcuser") -> str:
        """Submit one job; returns its job id."""
        job = Job.submit(benchmark_name, user=user)
        self._records[job.job_id] = BatchJob(job=job, submit_time=self.now)
        self._pending.append(job.job_id)
        if self.telemetry.enabled:
            self.telemetry.event(
                "sbatch",
                "batch",
                self.now,
                category="batch",
                job=benchmark_name,
            )
            self.telemetry.count("jobs_submitted_total", 1)
        return job.job_id

    def squeue(self, state: JobState | None = None) -> list[BatchJob]:
        """Job records, optionally filtered by state, oldest first."""
        records = sorted(
            self._records.values(), key=lambda r: r.submit_time
        )
        if state is None:
            return records
        return [r for r in records if r.state == state]

    def sinfo(self) -> list[dict]:
        """Per-node view: name, busy-until, whether it is free now."""
        return [
            {
                "node": n.name,
                "busy_until": n.available_at,
                "free": time_le(n.available_at, self.now),
            }
            for n in self.cluster.nodes
        ]

    def scancel(self, job_id: str) -> None:
        """Cancel a pending job (running jobs cannot be preempted —
        MIG/MPS reconfiguration requires an idle device).

        The accounting record survives in the ``CANCELLED`` state so
        ``squeue``/``sacct`` keep a trace of the submission; cancelled
        jobs are excluded from the wait/turnaround means.
        """
        record = self._records.get(job_id)
        if record is None:
            raise SchedulingError(f"unknown job id {job_id!r}")
        if record.state is not JobState.PENDING:
            raise SchedulingError(
                f"job {job_id} is {record.state.value}; only pending jobs "
                "can be cancelled"
            )
        self._pending.remove(job_id)
        record.state = JobState.CANCELLED

    # ------------------------------------------------------------------
    # time advance / dispatch
    # ------------------------------------------------------------------
    def tick(self, until: float) -> int:
        """Advance the clock to ``until``, dispatching whenever a GPU is
        free and at least ``min_batch`` jobs are pending. Returns how
        many dispatches happened.

        Each iteration cuts one window per currently-free GPU and
        schedules the whole round as a batch: co-scheduling windows
        share one batched serving pass (lockstep inference plus the
        decision cache) instead of one optimizer call each. Execution
        and accounting stay per-window; jobs re-queued by a crash join
        a later round.
        """
        if until < self.now:
            raise SchedulingError("time cannot run backwards")
        dispatched = 0
        self.now = until
        while True:
            # pop completions up to the current time off the running heap
            while self._running and time_le(self._running[0][0], self.now):
                _, jid = heapq.heappop(self._running)
                record = self._records[jid]
                if record.state is JobState.RUNNING:
                    self._complete(record)
            free_nodes = sorted(
                (
                    n for n in self.cluster.nodes
                    if time_le(n.available_at, self.now)
                ),
                key=lambda n: n.available_at,
            )  # stable sort: ties keep cluster order, like least_loaded()
            if not free_nodes or len(self._pending) < self.min_batch:
                break
            # cut one window per free GPU, earliest-available first
            cuts: list[tuple] = []
            for k, node in enumerate(free_nodes):
                if len(self._pending) < self.min_batch:
                    break
                take = min(self.window_size, len(self._pending))
                ids = self._pending[:take]
                self._pending = self._pending[take:]
                window = [self._records[i].job for i in ids]
                policy = self.selector.select(
                    queue_depth=len(self._pending) + take,
                    free_gpus=max(len(free_nodes) - k, 1),
                )
                cuts.append((node, ids, window, policy))
            scheduled = self.selector.schedule_batch(
                [(window, policy) for _, _, window, policy in cuts]
            )
            if self.telemetry.enabled:
                self.telemetry.observe(
                    "dispatch_batch_windows",
                    float(len(cuts)),
                    buckets=_BATCH_BUCKETS,
                )
            for (node, ids, window, policy), (schedule, fell_back) in zip(
                cuts, scheduled
            ):
                self._dispatch(node, ids, policy, schedule, fell_back)
                dispatched += 1
        return dispatched

    def drain(self) -> float:
        """Dispatch everything pending (advancing time as needed) and
        return the final makespan.

        Terminates even under heavy fault injection: a job can only
        re-queue ``max_retries`` times before it is ``FAILED``, so the
        pending list strictly shrinks in job-attempts.

        Time advances by jumping to the next event (a node freeing up or
        a completion), never by a fixed epsilon nudge: the old
        ``horizon + 1e-6`` step is absorbed by float64 rounding once the
        clock is large (at ``t = 1e12`` the ulp is ``~1.2e-4``), which
        froze the clock and turned the drain into a spin loop.
        """
        while self._pending:
            horizon = max(self.now, self.cluster.least_loaded().available_at)
            saved_min = self.min_batch
            self.min_batch = 1  # allow the final partial window
            try:
                if self.tick(horizon) == 0:
                    next_event = self._next_event_time()
                    if next_event is None:  # pragma: no cover - defensive
                        raise SchedulingError(
                            "drain stalled: jobs pending but no future events"
                        )
                    self.now = next_event
            finally:
                self.min_batch = saved_min
        self.now = max(self.now, self.cluster.makespan)
        while self._running:
            _, jid = heapq.heappop(self._running)
            record = self._records[jid]
            if record.state is JobState.RUNNING:
                self._complete(record)
        return self.cluster.makespan

    def _next_event_time(self) -> float | None:
        """Earliest strictly-future completion or node-availability
        time — the drain's jump target when nothing dispatched."""
        candidates = [t for t, _ in self._running[:1]]
        candidates.extend(n.available_at for n in self.cluster.nodes)
        future = [c for c in candidates if time_lt(self.now, c)]
        return min(future) if future else None

    def _complete(self, record: BatchJob) -> None:
        record.state = JobState.COMPLETED
        if self.telemetry.enabled:
            self.telemetry.count("jobs_completed_total", 1)

    def _dispatch(
        self, node, ids: list[str], policy, schedule, fell_back: bool
    ) -> None:
        """Execute one already-scheduled window and do its accounting.

        The window was cut and scheduled by :meth:`tick`'s dispatch
        round (``fell_back`` marks a policy failure that degraded the
        window to FCFS — graceful degradation costs this window its
        co-scheduling gain, never the whole drain).
        """
        take = len(ids)
        if fell_back:
            self.fallback_windows += 1
        start = max(self.now, node.available_at)
        node.device.clock = start
        if self.telemetry.enabled:
            self.telemetry.gauge("queue_depth", len(self._pending))
            for jid in ids:
                self.telemetry.observe(
                    "queue_wait_seconds",
                    start - self._records[jid].submit_time,
                    buckets=_WAIT_BUCKETS,
                )
            if fell_back:
                self.telemetry.event(
                    "fallback",
                    node.name,
                    start,
                    category="scheduler",
                    policy=self.selector.fcfs.name,
                )
                self.telemetry.count("policy_fallbacks_total", 1, node=node.name)
        outcome = node.execute_schedule_ft(schedule, self.retry)
        self.dispatch_retries += outcome.retries
        self.degraded_groups += outcome.degraded_groups
        failed = set(outcome.failed_job_ids)
        n_failed = 0
        for jid in ids:
            r = self._records[jid]
            if jid in failed and r.retries < self.max_retries:
                r.retries += 1
                r.state = JobState.PENDING
                r.node = None
                r.start_time = None
                r.end_time = None
                self._pending.append(jid)
                n_failed += 1
                if self.telemetry.enabled:
                    self.telemetry.event(
                        "requeue",
                        node.name,
                        outcome.end_time,
                        category="batch",
                        job=r.job.benchmark_name,
                        attempt=r.retries,
                    )
                    self.telemetry.count("job_requeues_total", 1)
                continue
            r.node = node.name
            r.start_time = start
            r.end_time = outcome.finish_of[jid]
            if jid in failed:
                r.state = JobState.FAILED  # terminal: retry budget spent
                n_failed += 1
                if self.telemetry.enabled:
                    self.telemetry.event(
                        "job_failed",
                        node.name,
                        outcome.finish_of[jid],
                        category="batch",
                        job=r.job.benchmark_name,
                    )
                    self.telemetry.count("jobs_failed_total", 1)
            else:
                r.state = JobState.RUNNING
                heapq.heappush(self._running, (r.end_time, jid))
        effective_policy = self.selector.fcfs.name if fell_back else policy.name
        self.history.append(
            DispatchRecord(
                node_name=node.name,
                policy_name=effective_policy,
                window_size=take,
                start_time=start,
                end_time=outcome.end_time,
                throughput_gain=schedule.throughput_gain,
                retries=outcome.retries,
                fell_back=fell_back,
                n_failed=n_failed,
            )
        )
        if self.telemetry.enabled:
            self.telemetry.span(
                "window",
                node.name,
                start,
                outcome.end_time,
                category="scheduler",
                policy=effective_policy,
                window_size=take,
                gain=schedule.throughput_gain,
                retries=outcome.retries,
                fell_back=fell_back,
                n_failed=n_failed,
            )
            self.telemetry.count(
                "windows_dispatched_total",
                1,
                node=node.name,
                policy=effective_policy,
            )
            self.telemetry.observe(
                "window_gain", schedule.throughput_gain, node=node.name
            )
            self.telemetry.observe(
                "window_seconds", outcome.end_time - start, node=node.name
            )

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def sacct(self) -> dict:
        """Aggregate accounting over finished jobs.

        Wait/turnaround means cover completed jobs only; failed and
        cancelled submissions are counted but excluded from the means.
        With no completions yet, the dict comes back zero-filled
        (``completed == 0`` and zero means) instead of raising, so
        accounting is always queryable — callers that need to
        distinguish "nothing ran" check the count.
        """
        done = [r for r in self._records.values() if r.state is JobState.COMPLETED]
        waits = [r.wait_time for r in done] or [0.0]
        turns = [r.turnaround for r in done] or [0.0]
        states = [r.state for r in self._records.values()]
        return {
            "completed": len(done),
            "failed": states.count(JobState.FAILED),
            "cancelled": states.count(JobState.CANCELLED),
            "job_retries": sum(r.retries for r in self._records.values()),
            "dispatch_retries": self.dispatch_retries,
            "fallback_windows": self.fallback_windows,
            "degraded_groups": self.degraded_groups,
            "mean_wait": sum(waits) / len(waits),
            "mean_turnaround": sum(turns) / len(turns),
            "makespan": self.cluster.makespan,
        }

