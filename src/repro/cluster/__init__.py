"""Cluster-scale extension (paper Section VI).

The paper argues the node-local optimization carries over to clusters
by adding one more level of resource assignment — node/GPU selection —
on top of the hierarchical partitioning. This package implements that
extension:

* :mod:`repro.cluster.node` — a node hosting one or more simulated
  GPUs, each with its own wall clock;
* :mod:`repro.cluster.scheduler` — a two-level scheduler: the top level
  dispatches job windows to the least-loaded GPU, the bottom level is
  the node-local RL optimizer (or any window scheduler);
* :mod:`repro.cluster.policy` — the policy-selection mechanism the
  paper sketches: co-scheduling for over-crowded queues, plain FCFS
  when the system is lightly loaded;
* :mod:`repro.cluster.batch` — a Slurm-shaped batch-system facade
  (sbatch/squeue/sinfo/sacct) over the two-level scheduler, the
  integration surface the paper names as future work;
* :mod:`repro.cluster.fleet` — the discrete-event fleet engine: an
  event heap on the simulated clock (arrivals, window completions,
  reconfigurations, faults, checkpoints) with open-loop arrival
  processes and admission control, scaling the same dispatch semantics
  to thousands of nodes and millions of jobs.

Both schedulers are failure-aware: attach a
:class:`repro.faults.FaultInjector` and they retry transient device /
MIG-reconfiguration faults with exponential backoff, degrade
unconfigurable groups to solo runs, re-queue crashed jobs up to a
retry cap, and fall back to FCFS when the window policy raises.
"""

from repro.faults import FaultConfig, FaultInjector, FaultKind, RetryPolicy
from repro.cluster.node import ExecutionOutcome, GpuNode, ClusterState
from repro.cluster.scheduler import ClusterScheduler, DispatchRecord
from repro.cluster.policy import PolicySelector, FcfsPolicy, CoSchedulingPolicy
from repro.cluster.batch import BatchSystem, BatchJob, JobState
from repro.cluster.fleet import (
    AdmissionPolicy,
    AdmitAll,
    BoundedQueue,
    EventHeap,
    EventKind,
    FleetEngine,
    FleetResult,
    FleetSnapshot,
    FleetStats,
    TokenBucket,
)

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "FaultKind",
    "RetryPolicy",
    "ExecutionOutcome",
    "GpuNode",
    "ClusterState",
    "ClusterScheduler",
    "DispatchRecord",
    "PolicySelector",
    "FcfsPolicy",
    "CoSchedulingPolicy",
    "BatchSystem",
    "BatchJob",
    "JobState",
    "AdmissionPolicy",
    "AdmitAll",
    "BoundedQueue",
    "EventHeap",
    "EventKind",
    "FleetEngine",
    "FleetResult",
    "FleetSnapshot",
    "FleetStats",
    "TokenBucket",
]
