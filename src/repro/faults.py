"""Deterministic fault injection for the online serving path.

Real deployments of the paper's online scheduler (a Slurm-integrated
resource manager, Sections VI/VII) see failures the simulation layer
otherwise hides: jobs crash, MIG reconfiguration fails on busy driver
state, stragglers run long, devices throw transient errors. MISO
(Li et al.) and the MIG-serving work of Tan et al. treat exactly these
as first-class scheduling events. :class:`FaultInjector` reproduces
them on demand so the cluster layer's recovery logic is testable.

Determinism contract
--------------------
Every decision is a pure function of ``(seed, key, draw_index)`` — the
draw is a SHA-256 hash mapped to a uniform in ``[0, 1)``, with a
per-key monotonic draw counter. Keys are built from *stable* workload
identity (benchmark names, partition labels), never from per-process
job ids, so two runs of the same scenario with the same seed make
bit-identical fault decisions, and decisions for one key do not shift
when unrelated keys are queried in between.
"""

from __future__ import annotations

import enum
import hashlib
from collections import Counter
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.telemetry.facade import NULL_TELEMETRY, Telemetry

__all__ = ["FaultKind", "FaultConfig", "RetryPolicy", "FaultInjector"]


class FaultKind(enum.Enum):
    """The failure modes the injector can produce."""

    JOB_FAILURE = "job_failure"          # a job crashes partway through
    TRANSIENT_DEVICE = "transient_device"  # whole-launch retryable error
    RECONFIG_FAILURE = "reconfig_failure"  # MIG repartitioning fails
    STRAGGLER = "straggler"              # a job runs slower than modelled


@dataclass(frozen=True)
class FaultConfig:
    """Rates and shapes for injected faults.

    All rates are per-decision probabilities in ``[0, 1]``; job-level
    rates (``job_failure_rate`` + ``straggler_rate``) share one uniform
    draw and must sum to at most 1.
    """

    seed: int = 0
    job_failure_rate: float = 0.0
    transient_rate: float = 0.0
    reconfig_failure_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_slowdown: float = 2.0  # worst-case elapsed multiplier
    crash_fraction: float = 0.5  # fraction of the run spent before a crash

    def __post_init__(self) -> None:
        for name in (
            "job_failure_rate",
            "transient_rate",
            "reconfig_failure_rate",
            "straggler_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1]; got {rate}"
                )
        if self.job_failure_rate + self.straggler_rate > 1.0 + 1e-12:
            raise ConfigurationError(
                "job_failure_rate + straggler_rate cannot exceed 1"
            )
        if self.straggler_slowdown < 1.0:
            raise ConfigurationError(
                f"straggler_slowdown must be >= 1; got {self.straggler_slowdown}"
            )
        if not 0.0 < self.crash_fraction <= 1.0:
            raise ConfigurationError(
                f"crash_fraction must be in (0, 1]; got {self.crash_fraction}"
            )

    @property
    def enabled(self) -> bool:
        return (
            self.job_failure_rate > 0
            or self.transient_rate > 0
            or self.reconfig_failure_rate > 0
            or self.straggler_rate > 0
        )

    @classmethod
    def uniform(cls, rate: float, seed: int = 0, **overrides) -> "FaultConfig":
        """Every fault mode at the same rate — the CLI ``--faults`` knob."""
        kwargs = dict(
            seed=seed,
            job_failure_rate=rate,
            transient_rate=rate,
            reconfig_failure_rate=rate,
            straggler_rate=rate,
        )
        kwargs.update(overrides)
        return cls(**kwargs)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff, in simulated seconds.

    ``max_retries`` bounds device-level retries (transient errors,
    failed MIG reconfiguration) per launch attempt; the batch layer
    separately caps how many times a crashed job is re-queued.
    """

    max_retries: int = 3
    backoff_base: float = 0.5
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries cannot be negative")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ConfigurationError(
                "backoff requires base >= 0 and factor >= 1"
            )

    def backoff(self, attempt: int) -> float:
        """Simulated wait before retry number ``attempt`` (1-based)."""
        return self.backoff_base * self.backoff_factor ** (attempt - 1)


@dataclass
class FaultInjector:
    """Seeded, order-robust fault oracle shared by all devices.

    One injector typically serves a whole cluster; per-key draw
    counters keep each fault stream independent of the others.
    """

    config: FaultConfig
    counts: Counter = field(default_factory=Counter)
    telemetry: Telemetry = field(default=NULL_TELEMETRY, repr=False)
    _draws: dict = field(default_factory=dict, repr=False)

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    # ------------------------------------------------------------------
    # the deterministic uniform source
    # ------------------------------------------------------------------
    def _record(self, kind: FaultKind) -> None:
        self.counts[kind] += 1
        if self.telemetry.enabled:
            self.telemetry.count("faults_injected_total", 1, kind=kind.value)

    def _uniform(self, key: str) -> float:
        n = self._draws.get(key, 0)
        self._draws[key] = n + 1
        digest = hashlib.sha256(
            f"{self.config.seed}:{key}:{n}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def reconfig_fails(self, partition_label: str) -> bool:
        """Does realizing this MIG partition fail this time?"""
        hit = (
            self._uniform(f"reconfig:{partition_label}")
            < self.config.reconfig_failure_rate
        )
        if hit:
            self._record(FaultKind.RECONFIG_FAILURE)
        return hit

    def launch_hits_transient(self, group_signature: str) -> bool:
        """Does this group launch die on a transient device error?"""
        hit = (
            self._uniform(f"transient:{group_signature}")
            < self.config.transient_rate
        )
        if hit:
            self._record(FaultKind.TRANSIENT_DEVICE)
        return hit

    def job_fault(self, benchmark_name: str) -> FaultKind | None:
        """Per-job outcome inside a group: crash, straggle, or neither."""
        u = self._uniform(f"job:{benchmark_name}")
        if u < self.config.job_failure_rate:
            self._record(FaultKind.JOB_FAILURE)
            return FaultKind.JOB_FAILURE
        if u < self.config.job_failure_rate + self.config.straggler_rate:
            self._record(FaultKind.STRAGGLER)
            return FaultKind.STRAGGLER
        return None

    def straggler_factor(self, benchmark_name: str) -> float:
        """Elapsed-time multiplier in [1, straggler_slowdown]."""
        u = self._uniform(f"straggler:{benchmark_name}")
        return 1.0 + (self.config.straggler_slowdown - 1.0) * u

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Injected-fault counts by kind (stable keys for reporting)."""
        return {kind.value: self.counts.get(kind, 0) for kind in FaultKind}
