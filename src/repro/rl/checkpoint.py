"""Versioned agent checkpoints (NumPy ``.npz``).

The paper's model coefficients are trained once per system and reused
for every online decision, so durable, validated persistence matters:

* all network tensors (online + target) in one compressed ``.npz``,
* the architecture fingerprint (inputs/actions/hidden/dueling/double/
  gamma) and training counters stored alongside, and **checked on
  load** — loading an A100-trained agent into a mismatched network is
  an error, not a silent corruption;
* a format version for forward compatibility;
* atomic writes (temp file + rename) and corruption detection —
  a crash mid-``save_agent`` never leaves a half-written file at the
  target path, and a truncated or garbage archive raises
  :class:`~repro.errors.ConfigurationError` instead of a stray
  ``zipfile``/``numpy`` exception.
"""

from __future__ import annotations

import json
import os
import zipfile
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.rl.dqn import DQNConfig, DuelingDoubleDQNAgent

__all__ = ["save_agent", "load_agent", "CHECKPOINT_VERSION"]

CHECKPOINT_VERSION = 1


def _fingerprint(config: DQNConfig) -> dict:
    return {
        "version": CHECKPOINT_VERSION,
        "n_inputs": config.n_inputs,
        "n_actions": config.n_actions,
        "hidden": list(config.hidden),
        "use_dueling": config.use_dueling,
        "use_double": config.use_double,
        "gamma": config.gamma,
    }


def save_agent(agent: DuelingDoubleDQNAgent, path: str | Path) -> None:
    """Write a checkpoint; the suffix ``.npz`` is appended if missing.

    The write is atomic: tensors go to a temp file in the same
    directory which is fsynced and renamed over the target, so an
    interrupted save leaves either the previous checkpoint or nothing —
    never a loadable-but-corrupt file.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    tensors: dict[str, np.ndarray] = {}
    for i, t in enumerate(agent.online.state_dict()):
        tensors[f"online_{i:03d}"] = t
    for i, t in enumerate(agent.target.state_dict()):
        tensors[f"target_{i:03d}"] = t
    meta = _fingerprint(agent.config)
    meta["train_steps"] = agent.train_steps
    meta["env_steps"] = agent.env_steps
    tensors["meta_json"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    )
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as f:
            np.savez_compressed(f, **tensors)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def load_agent(
    path: str | Path, config: DQNConfig | None = None
) -> DuelingDoubleDQNAgent:
    """Restore an agent from a checkpoint.

    When ``config`` is given, its architecture must match the stored
    fingerprint; otherwise a fresh config is reconstructed from the
    fingerprint (with library-default training hyper-parameters, which
    is fine for online/greedy use).
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    try:
        with np.load(path) as data:
            if "meta_json" not in data.files:
                raise ConfigurationError(
                    f"checkpoint {path} has no metadata record; it is "
                    "truncated or was not written by save_agent"
                )
            meta = json.loads(bytes(data["meta_json"]).decode())
            if meta.get("version") != CHECKPOINT_VERSION:
                raise ConfigurationError(
                    f"checkpoint version {meta.get('version')} is not supported "
                    f"(expected {CHECKPOINT_VERSION})"
                )
            if config is None:
                config = DQNConfig(
                    n_inputs=int(meta["n_inputs"]),
                    n_actions=int(meta["n_actions"]),
                    hidden=tuple(meta["hidden"]),
                    use_dueling=bool(meta["use_dueling"]),
                    use_double=bool(meta["use_double"]),
                    gamma=float(meta["gamma"]),
                )
            else:
                stored = _fingerprint(config)
                for key in (
                    "n_inputs",
                    "n_actions",
                    "hidden",
                    "use_dueling",
                    "use_double",
                    "gamma",
                ):
                    if stored[key] != meta[key]:
                        raise ConfigurationError(
                            f"checkpoint mismatch on {key}: file has "
                            f"{meta[key]}, config has {stored[key]}"
                        )
            agent = DuelingDoubleDQNAgent(config)
            online = [
                data[k] for k in sorted(d for d in data.files if d.startswith("online_"))
            ]
            target = [
                data[k] for k in sorted(d for d in data.files if d.startswith("target_"))
            ]
            agent.online.load_state_dict(online)
            agent.target.load_state_dict(target)
            agent.train_steps = int(meta["train_steps"])
            agent.env_steps = int(meta["env_steps"])
        return agent
    except ConfigurationError:
        raise
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError, KeyError, EOFError) as exc:
        # numpy surfaces truncated/garbage archives through several
        # exception types; normalize them all to one clear error
        raise ConfigurationError(
            f"checkpoint {path} is truncated or corrupt: {exc}"
        ) from exc
