"""Reinforcement-learning stack (NumPy; no external RL/DL dependency).

The paper builds its agent on gymnasium + PyTorch (Table II). Neither
is available offline here, so this package provides the same
functionality from scratch:

* :mod:`repro.rl.spaces` / :mod:`repro.rl.env` — a gymnasium-compatible
  ``Env`` API subset (``reset``/``step`` with the 5-tuple protocol).
* :mod:`repro.rl.nn` — fully-connected networks with manual backprop,
  including the dueling value/advantage head of Wang et al. (2016).
* :mod:`repro.rl.optim` — SGD with momentum and Adam.
* :mod:`repro.rl.replay` — uniform and sum-tree prioritized replay.
* :mod:`repro.rl.dqn` — the dueling **double** DQN agent of the paper
  (Hasselt et al. 2016 target decoupling), with invalid-action masking.
* :mod:`repro.rl.schedules` — the epsilon-greedy decay schedule.
"""

from repro.rl.spaces import Discrete, Box
from repro.rl.env import Env
from repro.rl.nn import Linear, ReLU, Sequential, DuelingQNetwork
from repro.rl.optim import SGD, Adam
from repro.rl.replay import (
    PrioritizedReplayBuffer,
    ReplayBuffer,
    SumTree,
    Transition,
)
from repro.rl.schedules import LinearDecay, ExponentialDecay
from repro.rl.dqn import DQNConfig, DuelingDoubleDQNAgent

__all__ = [
    "Discrete",
    "Box",
    "Env",
    "Linear",
    "ReLU",
    "Sequential",
    "DuelingQNetwork",
    "SGD",
    "Adam",
    "ReplayBuffer",
    "PrioritizedReplayBuffer",
    "SumTree",
    "Transition",
    "LinearDecay",
    "ExponentialDecay",
    "DQNConfig",
    "DuelingDoubleDQNAgent",
]
