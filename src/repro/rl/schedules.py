"""Exploration / learning-rate schedules.

The paper's epsilon-greedy schedule starts at 1.0 and decays until a
floor of 0.01 during offline training, then is pinned to 0 for online
inference (Section V-A3).
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["LinearDecay", "ExponentialDecay"]


class LinearDecay:
    """Linear interpolation from ``start`` to ``end`` over ``steps``."""

    def __init__(self, start: float, end: float, steps: int) -> None:
        if steps <= 0:
            raise ConfigurationError("steps must be positive")
        self.start = float(start)
        self.end = float(end)
        self.steps = int(steps)

    def value(self, step: int) -> float:
        if step <= 0:
            return self.start
        if step >= self.steps:
            return self.end
        frac = step / self.steps
        return self.start + frac * (self.end - self.start)


class ExponentialDecay:
    """Multiplicative decay ``start * rate**step`` floored at ``end``."""

    def __init__(self, start: float, end: float, rate: float) -> None:
        if not 0.0 < rate < 1.0:
            raise ConfigurationError("decay rate must be in (0, 1)")
        self.start = float(start)
        self.end = float(end)
        self.rate = float(rate)

    def value(self, step: int) -> float:
        if step < 0:
            return self.start
        return max(self.end, self.start * self.rate**step)
