"""Environment base class (gymnasium 5-tuple protocol).

Concrete environments implement :meth:`reset` and :meth:`step`; the
co-scheduling environment additionally exposes an ``action_mask`` in
``info`` because not every group template is valid in every state (a
4-way template cannot be chosen with 3 jobs left in the window).
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from repro.rl.spaces import Box, Discrete

__all__ = ["Env"]


class Env(abc.ABC):
    """Abstract RL environment.

    Subclasses must set :attr:`observation_space` and
    :attr:`action_space` before use.
    """

    observation_space: Box
    action_space: Discrete

    @abc.abstractmethod
    def reset(
        self, *, seed: int | None = None, options: dict | None = None
    ) -> tuple[np.ndarray, dict[str, Any]]:
        """Start a new episode; returns ``(observation, info)``."""

    @abc.abstractmethod
    def step(
        self, action: int
    ) -> tuple[np.ndarray, float, bool, bool, dict[str, Any]]:
        """Apply an action; returns
        ``(observation, reward, terminated, truncated, info)``."""

    def close(self) -> None:  # pragma: no cover - nothing to release
        """Release resources (no-op by default)."""
