"""Uniform experience replay over preallocated NumPy ring arrays.

Stores ``(s, a, r, s', done, next_mask)`` transitions column-wise in
fixed-capacity ring arrays and samples minibatches uniformly with one
fancy-indexing gather per column — no per-transition Python objects,
no per-sample ``np.stack``. The next-state action mask is kept
alongside the transition because in the co-scheduling environment the
valid-template set shrinks as the window drains — the double-DQN
target must not bootstrap through an action that is illegal in ``s'``.

Array shapes are fixed by the first ``push`` (the state/mask widths of
one environment family never change mid-training); pushing a transition
with different widths afterwards is an error, not a silent reshape.

Rows are allocated geometrically (doubling from a small block up to
``capacity``) rather than eagerly: a default 50k-transition buffer over
a ~200-wide state would otherwise fault in ~160 MB of zero pages up
front, which short training runs never touch. The ring can only wrap
once allocation has reached ``capacity``, so the growth path never
copies a wrapped buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import DTypeLike

from repro.errors import ConfigurationError

__all__ = ["Transition", "Batch", "ReplayBuffer"]

#: Rows allocated on the first push (grown geometrically thereafter).
_INITIAL_ALLOC = 1024


@dataclass(frozen=True)
class Transition:
    """One stored interaction (a row view for inspection/tests; the
    buffer itself holds columns)."""

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    done: bool
    next_mask: np.ndarray


@dataclass
class Batch:
    """A stacked minibatch (column arrays)."""

    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_states: np.ndarray
    dones: np.ndarray
    next_masks: np.ndarray

    def __len__(self) -> int:
        return len(self.actions)


class ReplayBuffer:
    """Fixed-capacity FIFO transition store with uniform sampling."""

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity <= 0:
            raise ConfigurationError("replay capacity must be positive")
        self.capacity = capacity
        self._rng = np.random.default_rng(seed)
        self._size = 0
        self._next = 0
        # Columns are allocated lazily on the first push, when the
        # state/mask widths are known.
        self._states: np.ndarray | None = None
        self._actions: np.ndarray | None = None
        self._rewards: np.ndarray | None = None
        self._next_states: np.ndarray | None = None
        self._dones: np.ndarray | None = None
        self._next_masks: np.ndarray | None = None

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size == self.capacity

    def __getitem__(self, i: int) -> Transition:
        """The ``i``-th stored transition, oldest first (copies)."""
        if not -self._size <= i < self._size:
            raise IndexError(f"transition index {i} out of range [0, {self._size})")
        if i < 0:
            i += self._size
        # Oldest entry sits at the write head once the ring has wrapped.
        j = (self._next + i) % self.capacity if self.full else i
        return Transition(
            state=self._states[j].copy(),
            action=int(self._actions[j]),
            reward=float(self._rewards[j]),
            next_state=self._next_states[j].copy(),
            done=bool(self._dones[j]),
            next_mask=self._next_masks[j].copy(),
        )

    # ------------------------------------------------------------------
    @property
    def _allocated(self) -> int:
        return 0 if self._actions is None else self._actions.shape[0]

    def _ensure_capacity(self, n_more: int, state_dim: int, mask_dim: int) -> None:
        """Grow the column arrays to hold ``n_more`` additional rows.

        Growth doubles from ``_INITIAL_ALLOC`` up to ``capacity``; while
        allocation is below capacity the ring has never wrapped
        (``_next == _size``), so the live rows are exactly the prefix
        and a plain prefix copy preserves them.
        """
        allocated = self._allocated
        needed = min(self.capacity, self._size + n_more)
        if 0 < allocated >= needed:
            return
        new_alloc = min(
            self.capacity,
            max(needed, 2 * allocated, min(self.capacity, _INITIAL_ALLOC)),
        )

        def grow(
            old: np.ndarray | None, shape: tuple[int, ...],
            dtype: DTypeLike,
        ) -> np.ndarray:
            new = np.zeros(shape, dtype=dtype)
            if old is not None and self._size:
                new[: self._size] = old[: self._size]
            return new

        self._states = grow(self._states, (new_alloc, state_dim), np.float64)
        self._actions = grow(self._actions, (new_alloc,), np.int64)
        self._rewards = grow(self._rewards, (new_alloc,), np.float64)
        self._next_states = grow(
            self._next_states, (new_alloc, state_dim), np.float64
        )
        self._dones = grow(self._dones, (new_alloc,), bool)
        self._next_masks = grow(self._next_masks, (new_alloc, mask_dim), bool)

    def push(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
        next_mask: np.ndarray,
    ) -> None:
        """Append a transition, evicting the oldest when full."""
        state = np.asarray(state, dtype=np.float64).ravel()
        next_state = np.asarray(next_state, dtype=np.float64).ravel()
        next_mask = np.asarray(next_mask, dtype=bool).ravel()
        if self._states is not None and state.shape[0] != self._states.shape[1]:
            raise ConfigurationError(
                f"state width {state.shape[0]} does not match the buffer's "
                f"{self._states.shape[1]}"
            )
        self._ensure_capacity(1, state.shape[0], next_mask.shape[0])
        i = self._next
        self._states[i] = state
        self._actions[i] = int(action)
        self._rewards[i] = float(reward)
        self._next_states[i] = next_state
        self._dones[i] = bool(done)
        self._next_masks[i] = next_mask
        self._next = (i + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def push_many(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        dones: np.ndarray,
        next_masks: np.ndarray,
    ) -> None:
        """Append a batch of transitions in one vectorized write.

        Rows are inserted in order (row 0 is oldest); the ring wraps
        exactly as ``push`` called row by row would.
        """
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        next_states = np.atleast_2d(np.asarray(next_states, dtype=np.float64))
        next_masks = np.atleast_2d(np.asarray(next_masks, dtype=bool))
        actions = np.asarray(actions, dtype=np.int64).ravel()
        rewards = np.asarray(rewards, dtype=np.float64).ravel()
        dones = np.asarray(dones, dtype=bool).ravel()
        n = len(actions)
        if n == 0:
            return
        if n > self.capacity:
            # Only the trailing ``capacity`` rows can survive anyway.
            sl = slice(n - self.capacity, None)
            states, next_states, next_masks = (
                states[sl],
                next_states[sl],
                next_masks[sl],
            )
            actions, rewards, dones = actions[sl], rewards[sl], dones[sl]
            n = self.capacity
        self._ensure_capacity(n, states.shape[1], next_masks.shape[1])
        idx = (self._next + np.arange(n)) % self.capacity
        self._states[idx] = states
        self._actions[idx] = actions
        self._rewards[idx] = rewards
        self._next_states[idx] = next_states
        self._dones[idx] = dones
        self._next_masks[idx] = next_masks
        self._next = int((self._next + n) % self.capacity)
        self._size = min(self._size + n, self.capacity)

    def sample(self, batch_size: int) -> Batch:
        """Uniformly sample ``batch_size`` transitions (with replacement
        only when the buffer is smaller than the batch)."""
        if self._size == 0:
            raise ConfigurationError("cannot sample from an empty buffer")
        replace = batch_size > self._size
        idx = self._rng.choice(self._size, size=batch_size, replace=replace)
        return Batch(
            states=self._states[idx],
            actions=self._actions[idx],
            rewards=self._rewards[idx],
            next_states=self._next_states[idx],
            dones=self._dones[idx],
            next_masks=self._next_masks[idx],
        )

    def clear(self) -> None:
        self._size = 0
        self._next = 0
