"""Experience replay over preallocated NumPy ring arrays.

Stores ``(s, a, r, s', done, next_mask)`` transitions column-wise in
fixed-capacity ring arrays and samples minibatches with one
fancy-indexing gather per column — no per-transition Python objects,
no per-sample ``np.stack``. The next-state action mask is kept
alongside the transition because in the co-scheduling environment the
valid-template set shrinks as the window drains — the double-DQN
target must not bootstrap through an action that is illegal in ``s'``.

Array shapes are fixed by the first ``push`` (the state/mask widths of
one environment family never change mid-training); pushing a transition
with different widths afterwards is an error, not a silent reshape.

Rows are allocated geometrically (doubling from a small block up to
``capacity``) rather than eagerly: a default 50k-transition buffer over
a ~200-wide state would otherwise fault in ~160 MB of zero pages up
front, which short training runs never touch. The ring can only wrap
once allocation has reached ``capacity``, so the growth path never
copies a wrapped buffer.

Two samplers share the ring storage:

* :class:`ReplayBuffer` — uniform sampling (the paper's setup);
* :class:`PrioritizedReplayBuffer` — proportional prioritized replay
  (Schaul et al. 2016) over a seeded array-backed :class:`SumTree`,
  the ``MemoryPER`` construction: priorities ``(|td| + eps)^alpha``,
  stratified sampling over equal probability-mass segments, and
  annealed importance-sampling weights. The hierarchy's joint trainer
  opts into it for the placement level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import DTypeLike

from repro.errors import ConfigurationError

__all__ = [
    "Transition",
    "Batch",
    "ReplayBuffer",
    "SumTree",
    "PrioritizedReplayBuffer",
]

#: Rows allocated on the first push (grown geometrically thereafter).
_INITIAL_ALLOC = 1024


@dataclass(frozen=True)
class Transition:
    """One stored interaction (a row view for inspection/tests; the
    buffer itself holds columns)."""

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    done: bool
    next_mask: np.ndarray


@dataclass
class Batch:
    """A stacked minibatch (column arrays)."""

    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_states: np.ndarray
    dones: np.ndarray
    next_masks: np.ndarray

    def __len__(self) -> int:
        return len(self.actions)


class ReplayBuffer:
    """Fixed-capacity FIFO transition store with uniform sampling."""

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity <= 0:
            raise ConfigurationError("replay capacity must be positive")
        self.capacity = capacity
        self._rng = np.random.default_rng(seed)
        self._size = 0
        self._next = 0
        # Columns are allocated lazily on the first push, when the
        # state/mask widths are known.
        self._states: np.ndarray | None = None
        self._actions: np.ndarray | None = None
        self._rewards: np.ndarray | None = None
        self._next_states: np.ndarray | None = None
        self._dones: np.ndarray | None = None
        self._next_masks: np.ndarray | None = None

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size == self.capacity

    def __getitem__(self, i: int) -> Transition:
        """The ``i``-th stored transition, oldest first (copies)."""
        if not -self._size <= i < self._size:
            raise IndexError(f"transition index {i} out of range [0, {self._size})")
        if i < 0:
            i += self._size
        # Oldest entry sits at the write head once the ring has wrapped.
        j = (self._next + i) % self.capacity if self.full else i
        return Transition(
            state=self._states[j].copy(),
            action=int(self._actions[j]),
            reward=float(self._rewards[j]),
            next_state=self._next_states[j].copy(),
            done=bool(self._dones[j]),
            next_mask=self._next_masks[j].copy(),
        )

    # ------------------------------------------------------------------
    @property
    def _allocated(self) -> int:
        return 0 if self._actions is None else self._actions.shape[0]

    def _ensure_capacity(self, n_more: int, state_dim: int, mask_dim: int) -> None:
        """Grow the column arrays to hold ``n_more`` additional rows.

        Growth doubles from ``_INITIAL_ALLOC`` up to ``capacity``; while
        allocation is below capacity the ring has never wrapped
        (``_next == _size``), so the live rows are exactly the prefix
        and a plain prefix copy preserves them.
        """
        allocated = self._allocated
        needed = min(self.capacity, self._size + n_more)
        if 0 < allocated >= needed:
            return
        new_alloc = min(
            self.capacity,
            max(needed, 2 * allocated, min(self.capacity, _INITIAL_ALLOC)),
        )

        def grow(
            old: np.ndarray | None, shape: tuple[int, ...],
            dtype: DTypeLike,
        ) -> np.ndarray:
            new = np.zeros(shape, dtype=dtype)
            if old is not None and self._size:
                new[: self._size] = old[: self._size]
            return new

        self._states = grow(self._states, (new_alloc, state_dim), np.float64)
        self._actions = grow(self._actions, (new_alloc,), np.int64)
        self._rewards = grow(self._rewards, (new_alloc,), np.float64)
        self._next_states = grow(
            self._next_states, (new_alloc, state_dim), np.float64
        )
        self._dones = grow(self._dones, (new_alloc,), bool)
        self._next_masks = grow(self._next_masks, (new_alloc, mask_dim), bool)

    def push(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
        next_mask: np.ndarray,
    ) -> None:
        """Append a transition, evicting the oldest when full."""
        state = np.asarray(state, dtype=np.float64).ravel()
        next_state = np.asarray(next_state, dtype=np.float64).ravel()
        next_mask = np.asarray(next_mask, dtype=bool).ravel()
        if self._states is not None and state.shape[0] != self._states.shape[1]:
            raise ConfigurationError(
                f"state width {state.shape[0]} does not match the buffer's "
                f"{self._states.shape[1]}"
            )
        self._ensure_capacity(1, state.shape[0], next_mask.shape[0])
        i = self._next
        self._states[i] = state
        self._actions[i] = int(action)
        self._rewards[i] = float(reward)
        self._next_states[i] = next_state
        self._dones[i] = bool(done)
        self._next_masks[i] = next_mask
        self._next = (i + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def push_many(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        dones: np.ndarray,
        next_masks: np.ndarray,
    ) -> None:
        """Append a batch of transitions in one vectorized write.

        Rows are inserted in order (row 0 is oldest); the ring wraps
        exactly as ``push`` called row by row would.
        """
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        next_states = np.atleast_2d(np.asarray(next_states, dtype=np.float64))
        next_masks = np.atleast_2d(np.asarray(next_masks, dtype=bool))
        actions = np.asarray(actions, dtype=np.int64).ravel()
        rewards = np.asarray(rewards, dtype=np.float64).ravel()
        dones = np.asarray(dones, dtype=bool).ravel()
        n = len(actions)
        if n == 0:
            return
        if n > self.capacity:
            # Only the trailing ``capacity`` rows can survive anyway.
            sl = slice(n - self.capacity, None)
            states, next_states, next_masks = (
                states[sl],
                next_states[sl],
                next_masks[sl],
            )
            actions, rewards, dones = actions[sl], rewards[sl], dones[sl]
            n = self.capacity
        self._ensure_capacity(n, states.shape[1], next_masks.shape[1])
        idx = (self._next + np.arange(n)) % self.capacity
        self._states[idx] = states
        self._actions[idx] = actions
        self._rewards[idx] = rewards
        self._next_states[idx] = next_states
        self._dones[idx] = dones
        self._next_masks[idx] = next_masks
        self._next = int((self._next + n) % self.capacity)
        self._size = min(self._size + n, self.capacity)

    def _check_batch(self, batch_size: int) -> None:
        """Reject undersized/oversized draws with a clear error instead
        of a numpy crash or a silent with-replacement fallback."""
        if batch_size <= 0:
            raise ConfigurationError("batch size must be positive")
        if self._size == 0:
            raise ConfigurationError("cannot sample from an empty buffer")
        if batch_size > self._size:
            raise ConfigurationError(
                f"cannot sample {batch_size} transitions from a buffer "
                f"holding {self._size}; wait for warm-up or shrink the batch"
            )

    def _gather(self, idx: np.ndarray) -> Batch:
        assert self._states is not None  # _check_batch guarantees pushes
        assert self._actions is not None
        assert self._rewards is not None
        assert self._next_states is not None
        assert self._dones is not None
        assert self._next_masks is not None
        return Batch(
            states=self._states[idx],
            actions=self._actions[idx],
            rewards=self._rewards[idx],
            next_states=self._next_states[idx],
            dones=self._dones[idx],
            next_masks=self._next_masks[idx],
        )

    def sample(self, batch_size: int) -> Batch:
        """Uniformly sample ``batch_size`` transitions without
        replacement across draws of the same call."""
        self._check_batch(batch_size)
        idx = self._rng.choice(self._size, size=batch_size, replace=False)
        return self._gather(idx)

    def clear(self) -> None:
        """Empty the buffer, resetting the write cursor.

        The cursor reset is what makes a cleared-and-refilled buffer
        reproducible: the same pushes land on the same rows, so a later
        ``sample`` gathers the same transitions. The sampling RNG is
        deliberately *not* rewound — it is independent of where rows
        are written; reseed by constructing a fresh buffer when the
        draw sequence itself must restart.
        """
        self._size = 0
        self._next = 0


# ----------------------------------------------------------------------
# prioritized replay (Schaul et al. 2016, the MemoryPER construction)
# ----------------------------------------------------------------------
class SumTree:
    """Array-backed binary sum tree over per-leaf priorities.

    Leaves hold the (already exponentiated) priorities of the replay
    rows; internal nodes hold subtree sums, so total mass is O(1) and
    both point updates and inverse-CDF lookups are O(log capacity).
    The leaf array is padded to the next power of two; padding leaves
    keep zero priority and are therefore never selected.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigurationError("sum tree capacity must be positive")
        self.capacity = capacity
        self._leaves = 1 << (capacity - 1).bit_length()
        # 1-based heap layout: node i has children 2i and 2i+1; leaf j
        # of the logical array lives at node _leaves + j.
        self._nodes = np.zeros(2 * self._leaves, dtype=np.float64)

    @property
    def total(self) -> float:
        """Sum of all leaf priorities."""
        return float(self._nodes[1])

    def get(self, leaf: int) -> float:
        if not 0 <= leaf < self.capacity:
            raise ConfigurationError(f"leaf {leaf} out of range")
        return float(self._nodes[self._leaves + leaf])

    def update(self, leaf: int, priority: float) -> None:
        """Set one leaf's priority and repair the sums above it."""
        if not 0 <= leaf < self.capacity:
            raise ConfigurationError(f"leaf {leaf} out of range")
        if priority < 0 or not np.isfinite(priority):
            raise ConfigurationError("priorities must be finite and >= 0")
        i = self._leaves + leaf
        self._nodes[i] = priority
        i >>= 1
        while i >= 1:
            self._nodes[i] = self._nodes[2 * i] + self._nodes[2 * i + 1]
            i >>= 1

    def find(self, mass: float) -> int:
        """The leaf whose cumulative-priority interval contains ``mass``.

        Standard inverse-CDF descent: go left while the left subtree
        holds at least ``mass``, else subtract it and go right.
        """
        i = 1
        while i < self._leaves:
            left = 2 * i
            if mass < self._nodes[left] or self._nodes[left + 1] <= 0.0:
                i = left
            else:
                mass -= self._nodes[left]
                i = left + 1
        return i - self._leaves

    def clear(self) -> None:
        self._nodes[:] = 0.0


class PrioritizedReplayBuffer(ReplayBuffer):
    """Proportional prioritized replay over the shared ring storage.

    New transitions enter at the maximum priority seen so far (so every
    transition is replayed at least once before its TD error is known);
    :meth:`update_priorities` re-weights rows after each training step
    with ``(min(|td|, clip) + eps) ** alpha``. Sampling is stratified —
    one draw per equal slice of total priority mass — and returns
    importance-sampling weights normalized by their maximum, with
    ``beta`` annealed toward 1 per sampled batch. Everything except the
    draws themselves is deterministic, and the draws come from the
    buffer's seeded generator.
    """

    def __init__(
        self,
        capacity: int,
        seed: int = 0,
        alpha: float = 0.6,
        beta: float = 0.4,
        beta_increment: float = 1e-3,
        epsilon: float = 0.01,
        td_clip: float = 1.0,
    ) -> None:
        super().__init__(capacity, seed=seed)
        if not 0.0 <= alpha <= 1.0:
            raise ConfigurationError("alpha must be in [0, 1]")
        if not 0.0 <= beta <= 1.0:
            raise ConfigurationError("beta must be in [0, 1]")
        if beta_increment < 0 or epsilon <= 0 or td_clip <= 0:
            raise ConfigurationError(
                "beta_increment must be >= 0; epsilon and td_clip > 0"
            )
        self.alpha = alpha
        self.beta = beta
        self._beta0 = beta
        self.beta_increment = beta_increment
        self.epsilon = epsilon
        self.td_clip = td_clip
        self._tree = SumTree(capacity)
        # priorities live in tree space (already raised to alpha)
        self._max_priority = (epsilon + td_clip) ** alpha

    def push(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
        next_mask: np.ndarray,
    ) -> None:
        row = self._next
        super().push(state, action, reward, next_state, done, next_mask)
        self._tree.update(row, self._max_priority)

    def push_many(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        dones: np.ndarray,
        next_masks: np.ndarray,
    ) -> None:
        start = self._next
        before = self._size
        super().push_many(
            states, actions, rewards, next_states, dones, next_masks
        )
        # rows written = how far the cursor advanced (mod the ring)
        n = (self._next - start) % self.capacity
        if n == 0 and self._size > before:
            n = self.capacity
        for k in range(n):
            self._tree.update((start + k) % self.capacity, self._max_priority)

    def sample_prioritized(
        self, batch_size: int
    ) -> tuple[Batch, np.ndarray, np.ndarray]:
        """``(batch, rows, weights)`` — stratified proportional draw.

        ``rows`` are the storage-row indices to hand back to
        :meth:`update_priorities`; ``weights`` the max-normalized
        importance-sampling corrections for the loss.
        """
        self._check_batch(batch_size)
        total = self._tree.total
        if total <= 0.0:
            raise ConfigurationError("prioritized buffer has no priority mass")
        segment = total / batch_size
        rows = np.empty(batch_size, dtype=np.int64)
        priorities = np.empty(batch_size, dtype=np.float64)
        for i in range(batch_size):
            mass = self._rng.uniform(segment * i, segment * (i + 1))
            leaf = min(self._tree.find(mass), self._size - 1)
            rows[i] = leaf
            priorities[i] = self._tree.get(leaf)
        probs = np.maximum(priorities / total, 1e-12)
        weights = (self._size * probs) ** (-self.beta)
        weights = weights / float(weights.max())
        self.beta = min(1.0, self.beta + self.beta_increment)
        return self._gather(rows), rows, weights

    def sample(self, batch_size: int) -> Batch:
        """The prioritized draw without the bookkeeping columns (for
        callers that neither reweight nor update priorities)."""
        batch, _, _ = self.sample_prioritized(batch_size)
        return batch

    def update_priorities(
        self, rows: np.ndarray, td_errors: np.ndarray
    ) -> None:
        """Re-weight sampled rows from their fresh TD errors."""
        rows = np.asarray(rows, dtype=np.int64).ravel()
        td = np.abs(np.asarray(td_errors, dtype=np.float64)).ravel()
        if rows.shape != td.shape:
            raise ConfigurationError("rows and td_errors must align")
        priorities = (np.minimum(td, self.td_clip) + self.epsilon) ** self.alpha
        for row, priority in zip(rows.tolist(), priorities.tolist()):
            if not 0 <= row < self._size:
                raise ConfigurationError(f"row {row} is not a live transition")
            self._tree.update(row, priority)
            if priority > self._max_priority:
                self._max_priority = priority

    def clear(self) -> None:
        """Reset rows, cursor, tree mass, beta annealing, and the
        max-priority watermark; the sampling RNG stays (see base)."""
        super().clear()
        self._tree.clear()
        self.beta = self._beta0
        self._max_priority = (self.epsilon + self.td_clip) ** self.alpha
