"""Uniform experience replay.

Stores ``(s, a, r, s', done, next_mask)`` transitions in a fixed-size
ring and samples minibatches uniformly. The next-state action mask is
kept alongside the transition because in the co-scheduling environment
the valid-template set shrinks as the window drains — the double-DQN
target must not bootstrap through an action that is illegal in ``s'``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Transition", "ReplayBuffer"]


@dataclass(frozen=True)
class Transition:
    """One stored interaction."""

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    done: bool
    next_mask: np.ndarray


@dataclass
class Batch:
    """A stacked minibatch (column arrays)."""

    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_states: np.ndarray
    dones: np.ndarray
    next_masks: np.ndarray

    def __len__(self) -> int:
        return len(self.actions)


class ReplayBuffer:
    """Fixed-capacity FIFO transition store with uniform sampling."""

    def __init__(self, capacity: int, seed: int = 0):
        if capacity <= 0:
            raise ConfigurationError("replay capacity must be positive")
        self.capacity = capacity
        self._storage: list[Transition] = []
        self._next = 0
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return len(self._storage)

    @property
    def full(self) -> bool:
        return len(self._storage) == self.capacity

    def push(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
        next_mask: np.ndarray,
    ) -> None:
        """Append a transition, evicting the oldest when full."""
        t = Transition(
            state=np.asarray(state, dtype=np.float64).copy(),
            action=int(action),
            reward=float(reward),
            next_state=np.asarray(next_state, dtype=np.float64).copy(),
            done=bool(done),
            next_mask=np.asarray(next_mask, dtype=bool).copy(),
        )
        if len(self._storage) < self.capacity:
            self._storage.append(t)
        else:
            self._storage[self._next] = t
        self._next = (self._next + 1) % self.capacity

    def sample(self, batch_size: int) -> Batch:
        """Uniformly sample ``batch_size`` transitions (with replacement
        only when the buffer is smaller than the batch)."""
        if not self._storage:
            raise ConfigurationError("cannot sample from an empty buffer")
        replace = batch_size > len(self._storage)
        idx = self._rng.choice(len(self._storage), size=batch_size, replace=replace)
        ts = [self._storage[i] for i in idx]
        return Batch(
            states=np.stack([t.state for t in ts]),
            actions=np.array([t.action for t in ts], dtype=np.int64),
            rewards=np.array([t.reward for t in ts], dtype=np.float64),
            next_states=np.stack([t.next_state for t in ts]),
            dones=np.array([t.done for t in ts], dtype=bool),
            next_masks=np.stack([t.next_mask for t in ts]),
        )

    def clear(self) -> None:
        self._storage.clear()
        self._next = 0
