"""First-order optimizers over :class:`repro.rl.nn.Parameter` lists."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.rl.nn import Parameter

__all__ = ["SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for training diagnostics).
    """
    if max_norm <= 0:
        raise ConfigurationError("max_norm must be positive")
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad *= scale
    return total


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Parameter], lr: float, momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ConfigurationError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must be in [0, 1)")
        self.params = params
        self.lr = lr
        self.momentum = momentum
        # Velocity buffers are allocated on the first step: agents built
        # for short rollouts (or inference) never touch them.
        self._velocity: list[np.ndarray] | None = None

    def step(self) -> None:
        if self._velocity is None:
            self._velocity = [np.zeros_like(p.value) for p in self.params]
        for p, v in zip(self.params, self._velocity):
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.value -= self.lr * v
            else:
                p.value -= self.lr * p.grad

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ConfigurationError("learning rate must be positive")
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ConfigurationError("betas must be in [0, 1)")
        self.params = params
        self.lr = lr
        self.b1, self.b2 = b1, b2
        self.eps = eps
        # Moment buffers are allocated on the first step — they double
        # the parameter memory, which warmup-bound runs never use.
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._t = 0

    def step(self) -> None:
        if self._m is None:
            self._m = [np.zeros_like(p.value) for p in self.params]
            self._v = [np.zeros_like(p.value) for p in self.params]
        self._t += 1
        bc1 = 1.0 - self.b1**self._t
        bc2 = 1.0 - self.b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            m *= self.b1
            m += (1.0 - self.b1) * p.grad
            v *= self.b2
            v += (1.0 - self.b2) * p.grad**2
            p.value -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
