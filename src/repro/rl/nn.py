"""Feed-forward neural networks with manual backpropagation (NumPy).

Implements exactly what the paper's agent needs (Table VI): fully
connected layers with ReLU activations and a dueling head splitting the
Q-value into a state value ``V`` and per-action advantages ``A`` with
the mean-advantage identifiability correction of Wang et al. (2016):

    Q(s, a) = V(s) + A(s, a) - mean_a' A(s, a')

All arrays are batched row-major: inputs ``(batch, in_features)``.
Gradient correctness is pinned by finite-difference tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Parameter", "Linear", "ReLU", "Sequential", "DuelingQNetwork"]


class Parameter:
    """A trainable tensor with its gradient accumulator.

    The gradient buffer is allocated on first access — inference-only
    networks (act-time forwards, target networks) never pay for it.
    """

    __slots__ = ("value", "_grad")

    def __init__(self, value: np.ndarray) -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self._grad: np.ndarray | None = None

    @property
    def grad(self) -> np.ndarray:
        if self._grad is None:
            self._grad = np.zeros_like(self.value)
        return self._grad

    @grad.setter
    def grad(self, value: np.ndarray) -> None:
        self._grad = value

    def zero_grad(self) -> None:
        if self._grad is not None:
            self._grad.fill(0.0)


class Module:
    """Minimal module protocol: forward/backward + parameter listing."""

    def parameters(self) -> list[Parameter]:
        return []

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Linear(Module):
    """Affine layer ``y = x W + b`` with He-normal initialization.

    ``rng=None`` zero-initializes the weights instead — for networks
    whose parameters are immediately overwritten (target-network
    clones), where drawing a full He init would be wasted work.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError("layer sizes must be positive")
        if rng is None:
            weight = np.zeros((in_features, out_features))
        else:
            scale = np.sqrt(2.0 / in_features)
            weight = rng.normal(0.0, scale, size=(in_features, out_features))
        self.weight = Parameter(weight)
        self.bias = Parameter(np.zeros(out_features))
        self._x: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        self._x = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ConfigurationError("backward called before forward")
        grad_out = np.atleast_2d(grad_out)
        self.weight.grad += self._x.T @ grad_out
        self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.value.T


class ReLU(Module):
    """Rectified linear activation (the paper's activation, Table VI)."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ConfigurationError("backward called before forward")
        return grad_out * self._mask


class Sequential(Module):
    """A chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        self.modules = list(modules)

    def parameters(self) -> list[Parameter]:
        return [p for m in self.modules for p in m.parameters()]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for m in self.modules:
            x = m.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for m in reversed(self.modules):
            grad_out = m.backward(grad_out)
        return grad_out


class DuelingQNetwork(Module):
    """The paper's agent network (Table VI).

    Trunk: fully connected 512/256/128 with ReLU. Heads: a scalar state
    value ``V`` and an ``n_actions``-wide advantage ``A``; the output is
    the dueling combination ``Q = V + A - mean(A)``.

    ``dueling=False`` collapses the network to a plain Q head over the
    same trunk — kept for the architecture ablation (Wang et al. 2016
    motivates the dueling split; the ablation quantifies it here).
    """

    def __init__(
        self,
        n_inputs: int,
        n_actions: int,
        hidden: tuple[int, ...] = (512, 256, 128),
        seed: int | None = 0,
        dueling: bool = True,
    ) -> None:
        if n_inputs <= 0 or n_actions <= 0:
            raise ConfigurationError("network sizes must be positive")
        # seed=None zero-initializes all weights: the cheap construction
        # for networks that load a state dict right away (target nets).
        rng = None if seed is None else np.random.default_rng(seed)
        self.n_inputs = n_inputs
        self.n_actions = n_actions
        self.hidden = tuple(hidden)
        self.dueling = dueling

        layers: list[Module] = []
        prev = n_inputs
        for width in hidden:
            layers.append(Linear(prev, width, rng))
            layers.append(ReLU())
            prev = width
        self.trunk = Sequential(*layers)
        self.value_head = Linear(prev, 1, rng)
        self.advantage_head = Linear(prev, n_actions, rng)

    def parameters(self) -> list[Parameter]:
        return (
            self.trunk.parameters()
            + self.value_head.parameters()
            + self.advantage_head.parameters()
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Q-values, shape ``(batch, n_actions)``."""
        h = self.trunk.forward(np.atleast_2d(x))
        a = self.advantage_head.forward(h)  # (batch, n_actions)
        if not self.dueling:
            # plain head; still evaluate V so parameter shapes (and
            # state_dict compatibility) are identical across modes
            self.value_head.forward(h)
            return a
        v = self.value_head.forward(h)  # (batch, 1)
        return v + a - a.mean(axis=1, keepdims=True)

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Q-values without backprop bookkeeping.

        Performs exactly :meth:`forward`'s arithmetic (same operations,
        same order — results are bitwise-identical) but skips the
        per-layer input caching and module dispatch, which dominate the
        cost of single-row act-time forwards. Safe wherever no
        ``backward`` will follow (action selection, target evaluation).

        ``x`` may be a single row or a ``(B, n_inputs)`` stack: every
        operation is a 2-D batched matmul / elementwise map, so one call
        serves ``B`` concurrent decisions. Rows never mix semantically
        (the dueling mean reduces over the action axis only), but BLAS
        GEMM rounding depends on the matrix shape, so row ``i`` of a
        batched call can drift from the single-row result in the last
        ulp. Use :meth:`infer_rows` where bitwise row identity matters.
        """
        h = np.atleast_2d(np.asarray(x, dtype=np.float64))
        for m in self.trunk.modules:
            if isinstance(m, Linear):
                h = h @ m.weight.value + m.bias.value
            else:  # ReLU
                h = np.where(h > 0, h, 0.0)
        a = h @ self.advantage_head.weight.value + self.advantage_head.bias.value
        if not self.dueling:
            return a
        v = h @ self.value_head.weight.value + self.value_head.bias.value
        return v + a - a.mean(axis=1, keepdims=True)

    def infer_rows(self, x: np.ndarray) -> np.ndarray:
        """Batch-size-invariant inference: the serving-path forward.

        Row ``i`` of the result is bitwise-identical to
        ``infer(x[i])`` for *every* batch size — the replay guarantee
        the serving decision cache is keyed on. A plain ``(B, K)``
        matmul cannot provide it: BLAS picks different GEMM blockings
        for different row counts, so batched rows drift from the
        single-row result in the last ulp. Here every matmul runs in
        the exact ``(1, K)`` shape of a single-row call while the
        elementwise stages (bias, ReLU, dueling combine) stay batched,
        trading peak GEMM throughput for bitwise replay.
        """
        h = np.atleast_2d(np.asarray(x, dtype=np.float64))
        b = h.shape[0]
        if b == 1:
            return self.infer(h)

        def rows(m: np.ndarray, w: np.ndarray) -> np.ndarray:
            return np.concatenate([m[i : i + 1] @ w for i in range(b)])

        for mod in self.trunk.modules:
            if isinstance(mod, Linear):
                h = rows(h, mod.weight.value) + mod.bias.value
            else:  # ReLU
                h = np.where(h > 0, h, 0.0)
        a = rows(h, self.advantage_head.weight.value) + self.advantage_head.bias.value
        if not self.dueling:
            return a
        v = rows(h, self.value_head.weight.value) + self.value_head.bias.value
        return v + a - a.mean(axis=1, keepdims=True)

    def infer_decomposed(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(Q, V, A)`` without backprop bookkeeping.

        The Q output performs exactly :meth:`infer`'s arithmetic (same
        operations, same order — bitwise-identical), additionally
        exposing the dueling decomposition for explainability tooling.
        With ``dueling=False`` the value head does not contribute to Q,
        so ``V`` is reported as zero and ``A`` equals ``Q``.
        """
        h = np.atleast_2d(np.asarray(x, dtype=np.float64))
        for m in self.trunk.modules:
            if isinstance(m, Linear):
                h = h @ m.weight.value + m.bias.value
            else:  # ReLU
                h = np.where(h > 0, h, 0.0)
        a = h @ self.advantage_head.weight.value + self.advantage_head.bias.value
        if not self.dueling:
            return a, np.zeros((a.shape[0], 1)), a
        v = h @ self.value_head.weight.value + self.value_head.bias.value
        q = v + a - a.mean(axis=1, keepdims=True)
        return q, v, a

    def backward(self, grad_q: np.ndarray) -> np.ndarray:
        """Backprop through the dueling combination.

        ``dQ_i/dA_j = delta_ij - 1/N`` and ``dQ_i/dV = 1``, so the head
        gradients are ``dA = dQ - mean(dQ)`` and ``dV = sum(dQ)``.
        """
        grad_q = np.atleast_2d(grad_q)
        if not self.dueling:
            grad_h = self.advantage_head.backward(grad_q)
            return self.trunk.backward(grad_h)
        grad_v = grad_q.sum(axis=1, keepdims=True)
        grad_a = grad_q - grad_q.mean(axis=1, keepdims=True)
        grad_h = self.value_head.backward(grad_v)
        grad_h = grad_h + self.advantage_head.backward(grad_a)
        return self.trunk.backward(grad_h)

    # ------------------------------------------------------------------
    # weight transport (target-network sync, checkpointing)
    # ------------------------------------------------------------------
    def state_dict(self) -> list[np.ndarray]:
        return [p.value.copy() for p in self.parameters()]

    def load_state_dict(self, state: list[np.ndarray]) -> None:
        params = self.parameters()
        if len(state) != len(params):
            raise ConfigurationError(
                f"state has {len(state)} tensors; network has {len(params)}"
            )
        for p, v in zip(params, state):
            if p.value.shape != v.shape:
                raise ConfigurationError(
                    f"shape mismatch: {p.value.shape} vs {v.shape}"
                )
            p.value = v.copy()

    def soft_update_from(self, other: "DuelingQNetwork", tau: float) -> None:
        """Polyak averaging: ``theta <- tau * theta_other + (1-tau) * theta``."""
        if not 0.0 < tau <= 1.0:
            raise ConfigurationError("tau must be in (0, 1]")
        for p, q in zip(self.parameters(), other.parameters()):
            p.value = (1.0 - tau) * p.value + tau * q.value
