"""Observation/action spaces (gymnasium-compatible subset).

Only what the co-scheduling environment needs: ``Discrete`` for the
29-way action head and ``Box`` for the flat float observation vector.
The interfaces mirror gymnasium so the environment could be dropped
onto the real library unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Discrete", "Box"]


class Discrete:
    """A finite set of actions ``{0, 1, ..., n-1}``."""

    def __init__(self, n: int, seed: int | None = None) -> None:
        if n <= 0:
            raise ConfigurationError("Discrete space requires n > 0")
        self.n = int(n)
        self._rng = np.random.default_rng(seed)

    def sample(self, mask: np.ndarray | None = None) -> int:
        """Uniform random action; ``mask`` (bool, shape ``(n,)``)
        restricts to valid actions."""
        if mask is None:
            return int(self._rng.integers(self.n))
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n,):
            raise ConfigurationError(
                f"mask must have shape ({self.n},); got {mask.shape}"
            )
        valid = np.flatnonzero(mask)
        if valid.size == 0:
            raise ConfigurationError("mask excludes every action")
        return int(self._rng.choice(valid))

    def contains(self, x: int) -> bool:
        return isinstance(x, (int, np.integer)) and 0 <= int(x) < self.n

    def seed(self, seed: int) -> None:
        self._rng = np.random.default_rng(seed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Discrete({self.n})"


class Box:
    """A box in R^n with per-dimension bounds."""

    def __init__(
        self,
        low: float | np.ndarray,
        high: float | np.ndarray,
        shape: tuple[int, ...] | None = None,
        seed: int | None = None,
    ) -> None:
        if shape is None:
            low_arr = np.asarray(low, dtype=float)
            shape = low_arr.shape
        self.shape = tuple(shape)
        self.low = np.broadcast_to(np.asarray(low, dtype=float), self.shape).copy()
        self.high = np.broadcast_to(np.asarray(high, dtype=float), self.shape).copy()
        if np.any(self.low > self.high):
            raise ConfigurationError("Box low bound exceeds high bound")
        self._rng = np.random.default_rng(seed)

    def sample(self) -> np.ndarray:
        finite_low = np.where(np.isfinite(self.low), self.low, -1e6)
        finite_high = np.where(np.isfinite(self.high), self.high, 1e6)
        return self._rng.uniform(finite_low, finite_high)

    def contains(self, x: np.ndarray) -> bool:
        x = np.asarray(x, dtype=float)
        return (
            x.shape == self.shape
            and bool(np.all(x >= self.low - 1e-9))
            and bool(np.all(x <= self.high + 1e-9))
        )

    def seed(self, seed: int) -> None:
        self._rng = np.random.default_rng(seed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Box(shape={self.shape})"
