"""Dueling double deep Q-network agent (paper Section IV-D, Table VI).

Combines:

* the **dueling architecture** of Wang et al. (2016) — V/A heads, built
  into :class:`repro.rl.nn.DuelingQNetwork`;
* **double Q-learning** of Hasselt et al. (2016) — the online network
  selects the bootstrap action, the target network evaluates it, which
  removes the maximization bias of vanilla DQN;
* **invalid-action masking** — the co-scheduling environment's template
  set depends on how many jobs remain in the window, so both action
  selection and the bootstrap argmax are restricted to valid actions;
* epsilon-greedy exploration with the paper's 1.0 -> 0.01 decay, set to
  0 for the online phase.

Training uses the Huber loss on TD errors, Adam, and global gradient
clipping; the target network is hard-synchronized every
``target_sync_every`` gradient steps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, TrainingError
from repro.rl.nn import DuelingQNetwork
from repro.rl.optim import Adam, clip_grad_norm
from repro.rl.replay import ReplayBuffer
from repro.rl.schedules import ExponentialDecay

__all__ = ["DQNConfig", "DuelingDoubleDQNAgent"]

#: Q-value assigned to masked (invalid) actions during argmax.
_NEG_INF = -1e18


@dataclass
class DQNConfig:
    """Hyper-parameters (defaults follow Table VI where specified)."""

    n_inputs: int = 0  # required
    n_actions: int = 29
    hidden: tuple[int, ...] = (512, 256, 128)
    gamma: float = 0.95
    lr: float = 5e-4
    batch_size: int = 64
    replay_capacity: int = 50_000
    warmup_transitions: int = 256
    target_sync_every: int = 250
    grad_clip: float = 10.0
    epsilon_start: float = 1.0
    epsilon_end: float = 0.01
    epsilon_decay_rate: float = 0.999
    huber_delta: float = 1.0
    seed: int = 0
    # architecture/algorithm ablation switches (paper defaults: both on,
    # per Wang et al. 2016 and Hasselt et al. 2016)
    use_dueling: bool = True
    use_double: bool = True

    def __post_init__(self) -> None:
        if self.n_inputs <= 0:
            raise ConfigurationError("DQNConfig.n_inputs must be set")
        if not 0.0 <= self.gamma <= 1.0:
            raise ConfigurationError("gamma must be in [0, 1]")
        if self.batch_size <= 0 or self.replay_capacity <= 0:
            raise ConfigurationError("batch/replay sizes must be positive")


class DuelingDoubleDQNAgent:
    """The paper's co-scheduling agent (environment-agnostic core)."""

    def __init__(self, config: DQNConfig) -> None:
        self.config = config
        self.online = DuelingQNetwork(
            config.n_inputs,
            config.n_actions,
            config.hidden,
            seed=config.seed,
            dueling=config.use_dueling,
        )
        # seed=None: the target's weights are overwritten by the sync
        # below, so drawing a second He init would be pure waste.
        self.target = DuelingQNetwork(
            config.n_inputs,
            config.n_actions,
            config.hidden,
            seed=None,
            dueling=config.use_dueling,
        )
        self.target.load_state_dict(self.online.state_dict())
        self.optimizer = Adam(self.online.parameters(), lr=config.lr)
        self.replay = ReplayBuffer(config.replay_capacity, seed=config.seed)
        self.epsilon_schedule = ExponentialDecay(
            config.epsilon_start, config.epsilon_end, config.epsilon_decay_rate
        )
        self._rng = np.random.default_rng(config.seed)
        self.train_steps = 0
        self.env_steps = 0
        self.greedy = False  # online phase: no exploration
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    # acting
    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        if self.greedy:
            return 0.0
        return self.epsilon_schedule.value(self.env_steps)

    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Online-network Q-values for a single state, shape ``(A,)``."""
        return self.online.infer(np.atleast_2d(state))[0]

    def q_values_many(self, states: np.ndarray) -> np.ndarray:
        """Online-network Q-values for stacked states, shape ``(B, A)``.

        One forward call serves every row — this is the serving-path
        analogue of :meth:`act_many`: ``B`` concurrent windows share one
        call's Python/dispatch overhead. Row ``i`` is bitwise-identical
        to ``q_values(states[i])``, which the serving identity tests
        pin; that guarantee comes from :meth:`DuelingQNetwork.infer_rows`
        (batch-size-invariant matmul shapes), not from BLAS. Pure
        inference — consumes no RNG, advances no counters.
        """
        return self.online.infer_rows(
            np.atleast_2d(np.asarray(states, dtype=np.float64))
        )

    def q_decomposition(
        self, state: np.ndarray
    ) -> tuple[np.ndarray, float, np.ndarray]:
        """``(Q, V, A)`` of the online network for a single state.

        Q is bitwise-identical to :meth:`q_values`; V is the dueling
        state value (0.0 for a plain head) and A the raw per-action
        advantages. Pure inference — consumes no RNG, mutates nothing.
        """
        q, v, a = self.online.infer_decomposed(np.atleast_2d(state))
        return q[0], float(v[0, 0]), a[0]

    def act(self, state: np.ndarray, mask: np.ndarray | None = None) -> int:
        """Epsilon-greedy action among the valid set."""
        n = self.config.n_actions
        if mask is None:
            mask = np.ones(n, dtype=bool)
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (n,):
            raise ConfigurationError(f"mask must have shape ({n},)")
        valid = np.flatnonzero(mask)
        if valid.size == 0:
            raise TrainingError("no valid action available")
        self.env_steps += 1
        if self._rng.random() < self.epsilon:
            # equivalent to rng.choice(valid) — same draw, same stream —
            # without Generator.choice's setup overhead
            return int(valid[int(self._rng.integers(0, valid.size))])
        q = self.q_values(state)
        q = np.where(mask, q, _NEG_INF)
        return int(np.argmax(q))

    def act_many(
        self, states: np.ndarray, masks: np.ndarray | None = None
    ) -> np.ndarray:
        """Epsilon-greedy actions for a batch of states, shape ``(B,)``.

        One network forward serves the whole batch — this is what makes
        vectorized rollouts pay: with ``B`` synchronous environments the
        per-step Python/dispatch overhead is amortized ``B``-fold. The
        forward goes through the batch-size-invariant
        :meth:`DuelingQNetwork.infer_rows`, so the greedy action for row
        ``i`` is bit-for-bit the one :meth:`act` would pick for
        ``states[i]``. All ``B`` states share the current epsilon (they
        are concurrent, not sequential, decisions); ``env_steps``
        advances by ``B``.
        """
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        b = states.shape[0]
        n = self.config.n_actions
        if masks is None:
            masks = np.ones((b, n), dtype=bool)
        masks = np.atleast_2d(np.asarray(masks, dtype=bool))
        if masks.shape != (b, n):
            raise ConfigurationError(f"masks must have shape ({b}, {n})")
        if not masks.any(axis=1).all():
            raise TrainingError("no valid action available")
        eps = self.epsilon
        self.env_steps += b
        q = self.online.infer_rows(states)
        actions = np.argmax(np.where(masks, q, _NEG_INF), axis=1)
        explore = self._rng.random(b) < eps
        for i in np.flatnonzero(explore):
            vm = np.flatnonzero(masks[i])
            actions[i] = vm[int(self._rng.integers(0, vm.size))]
        return actions.astype(np.int64)

    # ------------------------------------------------------------------
    # learning
    # ------------------------------------------------------------------
    def observe(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
        next_mask: np.ndarray | None = None,
    ) -> float | None:
        """Store a transition and take one gradient step when warm.

        Returns the training loss for this step, or ``None`` while the
        buffer is still warming up.
        """
        if next_mask is None:
            next_mask = np.ones(self.config.n_actions, dtype=bool)
        self.replay.push(state, action, reward, next_state, done, next_mask)
        if len(self.replay) < self._warm_threshold:
            return None
        return self.train_step()

    @property
    def _warm_threshold(self) -> int:
        # never ask the replay buffer for more rows than it holds —
        # sample() rejects oversized draws instead of silently repeating
        return max(self.config.warmup_transitions, self.config.batch_size)

    def observe_many(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        dones: np.ndarray,
        next_masks: np.ndarray,
    ) -> float | None:
        """Store a batch of transitions, then take one gradient step per
        stored transition (preserving the serial update-to-data ratio).

        Returns the mean loss over the gradient steps taken, or ``None``
        while warming up.
        """
        self.replay.push_many(
            states, actions, rewards, next_states, dones, next_masks
        )
        if len(self.replay) < self._warm_threshold:
            return None
        losses = [self.train_step() for _ in range(len(np.atleast_1d(actions)))]
        return float(np.mean(losses))

    def train_step(self) -> float:
        """One minibatch update (double-DQN target, Huber loss)."""
        cfg = self.config
        batch = self.replay.sample(cfg.batch_size)

        # Double DQN: online net picks a*, target net evaluates it.
        # (With use_double off, the target net both picks and evaluates —
        # vanilla DQN's maximization bias, kept for the ablation.)
        dead = ~batch.next_masks.any(axis=1)
        q_next_target = self.target.infer(batch.next_states)
        if cfg.use_double:
            q_sel = self.online.infer(batch.next_states)
        else:
            q_sel = q_next_target
        q_sel = np.where(batch.next_masks, q_sel, _NEG_INF)
        # A terminal next-state can have an empty mask; its argmax value
        # is irrelevant because the done flag zeros the bootstrap.
        a_star = np.argmax(q_sel, axis=1)
        bootstrap = q_next_target[np.arange(len(batch)), a_star]
        bootstrap[batch.dones | dead] = 0.0
        targets = batch.rewards + cfg.gamma * bootstrap

        # Forward/backward on the taken actions only.
        q = self.online.forward(batch.states)
        taken = q[np.arange(len(batch)), batch.actions]
        td = taken - targets

        # Huber loss gradient wrt the taken-action Q-values.
        delta = cfg.huber_delta
        grad_taken = np.clip(td, -delta, delta) / len(batch)
        loss = float(
            np.mean(
                np.where(
                    np.abs(td) <= delta,
                    0.5 * td**2,
                    delta * (np.abs(td) - 0.5 * delta),
                )
            )
        )

        grad_q = np.zeros_like(q)
        grad_q[np.arange(len(batch)), batch.actions] = grad_taken
        self.online.zero_grad()
        self.online.backward(grad_q)
        clip_grad_norm(self.online.parameters(), cfg.grad_clip)
        self.optimizer.step()

        self.train_steps += 1
        if self.train_steps % cfg.target_sync_every == 0:
            self.target.load_state_dict(self.online.state_dict())
        self.loss_history.append(loss)
        return loss

    # ------------------------------------------------------------------
    # phases / persistence
    # ------------------------------------------------------------------
    def freeze(self) -> None:
        """Enter the online phase: greedy policy, no exploration."""
        self.greedy = True

    def unfreeze(self) -> None:
        self.greedy = False

    def state_dict(self) -> dict:
        return {
            "online": self.online.state_dict(),
            "target": self.target.state_dict(),
            "train_steps": self.train_steps,
            "env_steps": self.env_steps,
        }

    def load_state_dict(self, state: dict) -> None:
        self.online.load_state_dict(state["online"])
        self.target.load_state_dict(state["target"])
        self.train_steps = int(state["train_steps"])
        self.env_steps = int(state["env_steps"])
