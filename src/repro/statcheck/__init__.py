"""repro.statcheck — determinism-invariant linter for this repository.

An AST-based static-analysis pass with repo-specific rules guarding
the invariants the reproduction's bit-reproducibility rests on:

========  ============================================================
DET001    no wall-clock reads outside ``repro.clock`` / the CLI
DET002    no global or unseeded RNG — inject a seeded ``Generator``
DET003    no unordered set/``dict.keys()`` iteration feeding
          serialization or reductions in artifact-writing paths
OBS001    core/rl/cluster/gpu touch telemetry only via the facade
HYG001    no mutable default arguments
HYG002    no ``print()`` in library code
========  ============================================================

Run it as ``repro-gpu statcheck [--json] [PATHS]`` or import
:func:`check_paths` from tests. Per-line escape hatch::

    ...  # statcheck: ignore[DET001] <justification>

Configuration lives in ``[tool.statcheck]`` in pyproject.toml;
grandfathered findings live in the baseline file (see
:mod:`repro.statcheck.baseline`). DESIGN.md §11 documents every rule's
rationale and how to add one.
"""

from repro.statcheck.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.statcheck.config import (
    RuleScope,
    StatcheckConfig,
    StatcheckError,
    find_root,
    load_config,
)
from repro.statcheck.engine import (
    Report,
    check_paths,
    check_source,
    iter_python_files,
    update_baseline,
)
from repro.statcheck.findings import Finding
from repro.statcheck.rules import RULES, RuleInfo, RuleVisitor, all_codes

__all__ = [
    "Finding",
    "Report",
    "RULES",
    "RuleInfo",
    "RuleScope",
    "RuleVisitor",
    "StatcheckConfig",
    "StatcheckError",
    "all_codes",
    "apply_baseline",
    "check_paths",
    "check_source",
    "find_root",
    "iter_python_files",
    "load_baseline",
    "load_config",
    "update_baseline",
    "write_baseline",
]
