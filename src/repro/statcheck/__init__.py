"""repro.statcheck — determinism-invariant linter for this repository.

An AST-based static-analysis pass with repo-specific rules guarding
the invariants the reproduction's bit-reproducibility rests on:

========  ============================================================
DET001    no wall-clock reads outside ``repro.clock`` / the CLI
DET002    no global or unseeded RNG — inject a seeded ``Generator``
DET003    no unordered set/``dict.keys()`` iteration feeding
          serialization or reductions in artifact-writing paths
DET005    interprocedural RNG seed provenance: every RNG derives
          from an explicit seed, across module boundaries
ARCH001   module-level imports respect the architecture layer DAG
          (no upward imports, no import cycles)
OBS001    core/rl/cluster/gpu touch telemetry only via the facade
OBS002    observers reachable from engine hooks never mutate
          engine state (pure-observer verification)
HYG001    no mutable default arguments
HYG002    no ``print()`` in library code
========  ============================================================

The per-file rules run in one AST pass; the project rules (DET005,
ARCH001, OBS002) run over a whole-program import/call graph built
once per run and cached incrementally (DESIGN.md §16). ``--fix``
rewrites the mechanical findings in place; ``--format sarif`` emits a
SARIF 2.1.0 log.

Run it as ``repro-gpu statcheck [--json] [PATHS]`` or import
:func:`check_paths` from tests. Per-line escape hatch::

    ...  # statcheck: ignore[DET001] <justification>

Configuration lives in ``[tool.statcheck]`` in pyproject.toml;
grandfathered findings live in the baseline file (see
:mod:`repro.statcheck.baseline`). DESIGN.md §11 documents every rule's
rationale and how to add one.
"""

from repro.statcheck.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.statcheck.config import (
    RuleScope,
    StatcheckConfig,
    StatcheckError,
    find_root,
    load_config,
)
from repro.statcheck.engine import (
    Report,
    apply_fixes,
    check_paths,
    check_source,
    iter_python_files,
    pragma_map,
    update_baseline,
)
from repro.statcheck.findings import Finding
from repro.statcheck.graph import ModuleGraph, module_name_for
from repro.statcheck.rules import (
    RULES,
    RuleInfo,
    RuleVisitor,
    all_codes,
    project_codes,
)
from repro.statcheck.sarif import to_sarif
from repro.statcheck.symbols import ModuleSummary, summarize_module

__all__ = [
    "Finding",
    "ModuleGraph",
    "ModuleSummary",
    "Report",
    "RULES",
    "RuleInfo",
    "RuleScope",
    "RuleVisitor",
    "StatcheckConfig",
    "StatcheckError",
    "all_codes",
    "apply_baseline",
    "apply_fixes",
    "check_paths",
    "check_source",
    "find_root",
    "iter_python_files",
    "load_baseline",
    "load_config",
    "module_name_for",
    "pragma_map",
    "project_codes",
    "summarize_module",
    "to_sarif",
    "update_baseline",
    "write_baseline",
]
