"""Per-module symbol tables and local analysis summaries.

One AST walk per module produces a :class:`ModuleSummary`: the
project-resolvable call graph fragment rooted in this module, every
RNG construction with a locally-computed *seed provenance* verdict,
attribute-write sites against function parameters, and the set of
method names the module invokes through attributes. The summary is
pure local information — it depends only on this module's source — so
the incremental cache stores it keyed on content hash alone, and the
interprocedural passes (:mod:`repro.statcheck.dataflow`,
:mod:`repro.statcheck.observers`) run over summaries without touching
source again.

Seed-provenance lattice (per expression)::

    SEED     derived from a seed/rng-named parameter, attribute, or
             local traced to one (possibly mixed with constants/ids)
    LITERAL  every leaf is a non-None constant — a pinned seed
    TAINTED  definitely not seed-derived: flows from a
             nondeterministic source (wall clock, os entropy, uuid,
             secrets), from ``None`` (OS-entropy seeding), or from a
             parameter whose name carries no seed provenance
    UNKNOWN  the analysis cannot decide — never reported

Classification is conservative toward silence: a verdict is TAINTED
only when every leaf is accounted for and none carries seed
provenance.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

__all__ = [
    "SEED", "LITERAL", "TAINTED", "UNKNOWN",
    "RngCreation",
    "ParamWrite",
    "SeedArgCall",
    "FunctionSummary",
    "ModuleSummary",
    "summarize_module",
]

SEED = "seed"
LITERAL = "literal"
TAINTED = "tainted"
UNKNOWN = "unknown"

#: identifiers that carry seed provenance by name
_SEEDISH = re.compile(r"(seed|rng|entropy|random_state)", re.IGNORECASE)

#: receiver names conventionally bound to the instance, never engine state
_SELF_NAMES = frozenset({"self", "cls"})

#: qualnames whose value is nondeterministic by construction
_NONDET_SOURCES = frozenset({
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time",
    "os.urandom", "os.getrandom", "os.getpid",
    "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.randbits",
    "id",
})

#: RNG constructors whose argument is a seed (DET005's subjects)
_RNG_CTORS = frozenset({
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.MT19937",
    "numpy.random.Philox",
    "numpy.random.SFC64",
})


def is_seedish(name: str) -> bool:
    return bool(_SEEDISH.search(name))


@dataclass(frozen=True)
class RngCreation:
    """One RNG constructor call and its seed-argument provenance."""

    line: int
    col: int
    ctor: str       #: resolved constructor qualname
    verdict: str    #: SEED / LITERAL / TAINTED / UNKNOWN
    reason: str     #: human-readable provenance trail
    has_args: bool

    def to_dict(self) -> dict[str, object]:
        return {
            "line": self.line, "col": self.col, "ctor": self.ctor,
            "verdict": self.verdict, "reason": self.reason,
            "has_args": self.has_args,
        }

    @classmethod
    def from_dict(cls, d: dict[str, object]) -> "RngCreation":
        return cls(
            line=int(d["line"]), col=int(d["col"]),    # type: ignore[arg-type]
            ctor=str(d["ctor"]), verdict=str(d["verdict"]),
            reason=str(d["reason"]), has_args=bool(d["has_args"]),
        )


@dataclass(frozen=True)
class ParamWrite:
    """``param.attr = ...`` inside a function — a non-local mutation."""

    line: int
    col: int
    param: str
    attr: str

    def to_dict(self) -> dict[str, object]:
        return {"line": self.line, "col": self.col,
                "param": self.param, "attr": self.attr}

    @classmethod
    def from_dict(cls, d: dict[str, object]) -> "ParamWrite":
        return cls(line=int(d["line"]), col=int(d["col"]),  # type: ignore[arg-type]
                   param=str(d["param"]), attr=str(d["attr"]))


@dataclass(frozen=True)
class SeedArgCall:
    """A call into project code with the provenance of its arguments."""

    line: int
    col: int
    callee: str     #: resolved project qualname
    verdict: str    #: combined provenance of the call's arguments
    reason: str

    def to_dict(self) -> dict[str, object]:
        return {"line": self.line, "col": self.col, "callee": self.callee,
                "verdict": self.verdict, "reason": self.reason}

    @classmethod
    def from_dict(cls, d: dict[str, object]) -> "SeedArgCall":
        return cls(line=int(d["line"]), col=int(d["col"]),  # type: ignore[arg-type]
                   callee=str(d["callee"]), verdict=str(d["verdict"]),
                   reason=str(d["reason"]))


@dataclass
class FunctionSummary:
    """Everything the project rules need to know about one function."""

    qualname: str           #: e.g. ``repro.obs.trace.LifecycleTracer.arrival``
    line: int
    params: tuple[str, ...]
    writes: list[ParamWrite] = field(default_factory=list)
    calls: tuple[str, ...] = ()          #: resolved project callees, sorted
    seed_calls: list[SeedArgCall] = field(default_factory=list)
    creations: list[RngCreation] = field(default_factory=list)
    #: provenance of a returned RNG: "" (not a factory), a verdict,
    #: or ``call:<qualname>`` when the return value is a project call
    returns_rng: str = ""

    def to_dict(self) -> dict[str, object]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "params": list(self.params),
            "writes": [w.to_dict() for w in self.writes],
            "calls": list(self.calls),
            "seed_calls": [c.to_dict() for c in self.seed_calls],
            "creations": [c.to_dict() for c in self.creations],
            "returns_rng": self.returns_rng,
        }

    @classmethod
    def from_dict(cls, d: dict[str, object]) -> "FunctionSummary":
        return cls(
            qualname=str(d["qualname"]),
            line=int(d["line"]),                       # type: ignore[arg-type]
            params=tuple(d["params"]),                 # type: ignore[arg-type]
            writes=[ParamWrite.from_dict(w) for w in d["writes"]],  # type: ignore[union-attr]
            calls=tuple(d["calls"]),                   # type: ignore[arg-type]
            seed_calls=[SeedArgCall.from_dict(c) for c in d["seed_calls"]],  # type: ignore[union-attr]
            creations=[RngCreation.from_dict(c) for c in d["creations"]],  # type: ignore[union-attr]
            returns_rng=str(d["returns_rng"]),
        )


@dataclass
class ModuleSummary:
    """The cached per-module product of :func:`summarize_module`."""

    module: str
    relpath: str
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    #: method names this module calls through attribute access
    attr_calls: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, object]:
        return {
            "module": self.module,
            "relpath": self.relpath,
            "functions": {
                q: f.to_dict() for q, f in sorted(self.functions.items())
            },
            "attr_calls": list(self.attr_calls),
        }

    @classmethod
    def from_dict(cls, d: dict[str, object]) -> "ModuleSummary":
        return cls(
            module=str(d["module"]),
            relpath=str(d["relpath"]),
            functions={
                str(q): FunctionSummary.from_dict(f)
                for q, f in d["functions"].items()  # type: ignore[union-attr]
            },
            attr_calls=tuple(d["attr_calls"]),       # type: ignore[arg-type]
        )


# ----------------------------------------------------------------------
# import resolution (shared shape with RuleVisitor, but project-aware)
# ----------------------------------------------------------------------
class _Imports:
    def __init__(self, module: str, is_package: bool) -> None:
        self.module = module
        self.is_package = is_package
        self.names: dict[str, str] = {}

    def track(self, node: ast.Import | ast.ImportFrom) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    self.names[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    self.names[root] = root
        else:
            if node.level:
                parts = self.module.split(".")
                if not self.is_package:
                    parts = parts[:-1]
                drop = node.level - 1
                if drop > len(parts):
                    return
                if drop:
                    parts = parts[:-drop]
                if node.module:
                    parts = parts + node.module.split(".")
                base = ".".join(parts)
            else:
                base = node.module or ""
            for alias in node.names:
                bound = alias.asname or alias.name
                self.names[bound] = (
                    f"{base}.{alias.name}" if base else alias.name
                )

    def resolve(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.Name):
            return self.names.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None


# ----------------------------------------------------------------------
# provenance classification
# ----------------------------------------------------------------------
_ORDER = {TAINTED: 3, SEED: 2, LITERAL: 1, UNKNOWN: 0}


class _Classifier:
    """Classifies one expression's seed provenance from local context."""

    def __init__(self, imports: _Imports, params: frozenset[str],
                 locals_map: dict[str, tuple[str, str]],
                 project_prefix: str) -> None:
        self.imports = imports
        self.params = params
        self.locals_map = locals_map
        self.project_prefix = project_prefix

    def classify(self, expr: ast.AST) -> tuple[str, str]:
        leaves: list[tuple[str, str]] = []
        self._walk(expr, leaves)
        return _combine(leaves)

    def _walk(self, expr: ast.AST, leaves: list[tuple[str, str]]) -> None:
        if isinstance(expr, ast.Constant):
            if expr.value is None:
                leaves.append((
                    "nondet", "None seeds from OS entropy"
                ))
            else:
                leaves.append(("const", ""))
        elif isinstance(expr, ast.Name):
            name = expr.id
            if name in self.locals_map:
                verdict, reason = self.locals_map[name]
                leaves.append((verdict, reason))
            elif name in self.params:
                if is_seedish(name):
                    leaves.append(("seed", f"seed parameter {name!r}"))
                else:
                    leaves.append((
                        "param",
                        f"parameter {name!r} carries no seed provenance",
                    ))
            elif is_seedish(name):
                leaves.append(("seed", f"seed-named binding {name!r}"))
            else:
                leaves.append(("unknown", ""))
        elif isinstance(expr, ast.Attribute):
            qual = self.imports.resolve(expr)
            if qual in _NONDET_SOURCES:
                leaves.append(("nondet", f"nondeterministic source {qual}"))
            elif is_seedish(expr.attr):
                leaves.append(("seed", f"seed attribute .{expr.attr}"))
            else:
                leaves.append(("unknown", ""))
        elif isinstance(expr, ast.Call):
            qual = self.imports.resolve(expr.func)
            if qual in _NONDET_SOURCES or (
                isinstance(expr.func, ast.Name)
                and expr.func.id in _NONDET_SOURCES
            ):
                label = qual or getattr(expr.func, "id", "?")
                leaves.append((
                    "nondet", f"nondeterministic source {label}()"
                ))
                return
            # recurse into func receiver + arguments: hashing or
            # arithmetic over a seed keeps its provenance
            if isinstance(expr.func, ast.Attribute):
                self._walk(expr.func.value, leaves)
            for arg in expr.args:
                self._walk(arg, leaves)
            for kw in expr.keywords:
                if kw.value is not None:
                    self._walk(kw.value, leaves)
            if not expr.args and not expr.keywords and not isinstance(
                    expr.func, ast.Attribute):
                leaves.append(("unknown", ""))
        elif isinstance(expr, ast.JoinedStr):
            for value in expr.values:
                if isinstance(value, ast.FormattedValue):
                    self._walk(value.value, leaves)
                else:
                    leaves.append(("const", ""))
            if not expr.values:
                leaves.append(("const", ""))
        elif isinstance(expr, (ast.BinOp,)):
            self._walk(expr.left, leaves)
            self._walk(expr.right, leaves)
        elif isinstance(expr, ast.UnaryOp):
            self._walk(expr.operand, leaves)
        elif isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for elt in expr.elts:
                self._walk(elt, leaves)
        elif isinstance(expr, ast.Subscript):
            self._walk(expr.value, leaves)
        elif isinstance(expr, ast.IfExp):
            self._walk(expr.body, leaves)
            self._walk(expr.orelse, leaves)
        elif isinstance(expr, ast.Starred):
            self._walk(expr.value, leaves)
        else:
            leaves.append(("unknown", ""))


def _combine(leaves: list[tuple[str, str]]) -> tuple[str, str]:
    """Fold leaf labels into one (verdict, reason) pair."""
    if not leaves:
        return UNKNOWN, ""
    for label, reason in leaves:
        if label == "nondet":
            return TAINTED, reason
        if label == TAINTED:
            return TAINTED, reason
    for label, reason in leaves:
        if label in ("seed", SEED):
            return SEED, reason
    if all(label in ("const", LITERAL) for label, _ in leaves):
        return LITERAL, "constant seed"
    has_unknown = any(
        label in ("unknown", UNKNOWN) for label, _ in leaves
    )
    if not has_unknown:
        for label, reason in leaves:
            if label == "param":
                return TAINTED, reason
    return UNKNOWN, ""


# ----------------------------------------------------------------------
# function body analysis
# ----------------------------------------------------------------------
def _param_names(args: ast.arguments) -> tuple[str, ...]:
    names = [a.arg for a in args.posonlyargs]
    names += [a.arg for a in args.args]
    if args.vararg:
        names.append(args.vararg.arg)
    names += [a.arg for a in args.kwonlyargs]
    if args.kwarg:
        names.append(args.kwarg.arg)
    return tuple(names)


class _FunctionAnalyzer(ast.NodeVisitor):
    """Walks one function body (nested defs folded in, shadow-aware)."""

    def __init__(self, summary: FunctionSummary, imports: _Imports,
                 module: str, module_funcs: frozenset[str],
                 class_qual: str | None, project_prefix: str) -> None:
        self.summary = summary
        self.imports = imports
        self.module = module
        self.module_funcs = module_funcs
        self.class_qual = class_qual
        self.project_prefix = project_prefix
        self.params = frozenset(
            p for p in summary.params if p not in _SELF_NAMES
        )
        self._shadowed: set[str] = set()
        self._locals: dict[str, tuple[str, str]] = {}
        self._rng_locals: dict[str, str] = {}  # name -> verdict | call:<q>
        self._calls: set[str] = set()

    # -- helpers ---------------------------------------------------------
    def _classifier(self) -> _Classifier:
        return _Classifier(
            self.imports, self.params - self._shadowed,
            self._locals, self.project_prefix,
        )

    def _resolve_call(self, func: ast.AST) -> str | None:
        """Project qualname for a call target, when determinable."""
        if isinstance(func, ast.Name):
            qual = self.imports.resolve(func)
            if qual is not None and qual.startswith(self.project_prefix):
                return qual
            if func.id in self.module_funcs:
                return f"{self.module}.{func.id}"
            return None
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in _SELF_NAMES
                and self.class_qual is not None
            ):
                return f"{self.class_qual}.{func.attr}"
            qual = self.imports.resolve(func)
            if qual is not None and qual.startswith(self.project_prefix):
                return qual
        return None

    # -- nested scopes ---------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node)

    def _visit_nested(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                      ) -> None:
        inner = set(_param_names(node.args)) & self.params
        added = inner - self._shadowed
        self._shadowed |= added
        for stmt in node.body:
            self.visit(stmt)
        self._shadowed -= added

    def visit_Lambda(self, node: ast.Lambda) -> None:
        inner = set(_param_names(node.args)) & self.params
        added = inner - self._shadowed
        self._shadowed |= added
        self.visit(node.body)
        self._shadowed -= added

    # -- assignments: track locals, param writes, rng locals -------------
    def _note_param_write(self, target: ast.AST) -> None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id in self.params
            and target.value.id not in self._shadowed
        ):
            self.summary.writes.append(ParamWrite(
                line=target.lineno, col=target.col_offset,
                param=target.value.id, attr=target.attr,
            ))

    def _track_assign(self, target: ast.AST, value: ast.AST | None) -> None:
        self._note_param_write(target)
        if value is None or not isinstance(target, ast.Name):
            return
        name = target.id
        verdict, reason = self._classifier().classify(value)
        self._locals[name] = (verdict, reason)
        rng = self._rng_expr(value)
        if rng is not None:
            self._rng_locals[name] = rng
        else:
            self._rng_locals.pop(name, None)

    def _rng_expr(self, value: ast.AST) -> str | None:
        """Provenance tag when ``value`` constructs or returns an RNG."""
        if isinstance(value, ast.Call):
            qual = self.imports.resolve(value.func)
            if qual in _RNG_CTORS:
                verdict, _ = self._classify_call_args(value)
                if not value.args and not value.keywords:
                    return UNKNOWN  # unseeded: DET002's territory
                return verdict
            project = self._resolve_call(value.func)
            if project is not None:
                return f"call:{project}"
        if isinstance(value, ast.Name) and value.id in self._rng_locals:
            return self._rng_locals[value.id]
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._track_assign(target, node.value)
            if isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    self._note_param_write(elt)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._track_assign(node.target, node.value)
        if node.value is not None:
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._note_param_write(node.target)
        if isinstance(node.target, ast.Name):
            name = node.target.id
            if name in self._locals:
                old_v, old_r = self._locals[name]
                new_v, new_r = self._classifier().classify(node.value)
                merged = _combine([(old_v, old_r), (new_v, new_r)])
                self._locals[name] = merged
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._note_param_write(target)

    # -- calls -----------------------------------------------------------
    def _classify_call_args(self, node: ast.Call) -> tuple[str, str]:
        leaves: list[tuple[str, str]] = []
        classifier = self._classifier()
        for arg in node.args:
            leaves.append(classifier.classify(arg))
        for kw in node.keywords:
            if kw.value is not None:
                leaves.append(classifier.classify(kw.value))
        return _combine(leaves)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            # record by bare method name for observer-root discovery
            self._attr_call(node.func.attr)
        qual = self.imports.resolve(node.func)
        if qual in _RNG_CTORS:
            has_args = bool(node.args or node.keywords)
            verdict, reason = (
                self._classify_call_args(node) if has_args
                else (UNKNOWN, "")
            )
            self.summary.creations.append(RngCreation(
                line=node.lineno, col=node.col_offset, ctor=qual,
                verdict=verdict, reason=reason, has_args=has_args,
            ))
        else:
            project = self._resolve_call(node.func)
            if project is not None:
                self._calls.add(project)
                if node.args or node.keywords:
                    verdict, reason = self._classify_call_args(node)
                    self.summary.seed_calls.append(SeedArgCall(
                        line=node.lineno, col=node.col_offset,
                        callee=project, verdict=verdict, reason=reason,
                    ))
        self.generic_visit(node)

    def _attr_call(self, name: str) -> None:
        # stored at module level by the summarizer via a shared set
        self._module_attr_calls.add(name)  # type: ignore[attr-defined]

    # -- returns ---------------------------------------------------------
    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            rng = self._rng_expr(node.value)
            if rng is not None and not self.summary.returns_rng:
                self.summary.returns_rng = rng
            self.visit(node.value)

    def finish(self) -> None:
        self.summary.calls = tuple(sorted(self._calls))


# ----------------------------------------------------------------------
def summarize_module(
    tree: ast.Module,
    module: str,
    relpath: str,
    is_package: bool,
    project_prefix: str = "repro",
) -> ModuleSummary:
    """Build the :class:`ModuleSummary` for one parsed module."""
    imports = _Imports(module, is_package)
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            imports.track(node)

    summary = ModuleSummary(module=module, relpath=relpath)
    attr_calls: set[str] = set()

    module_funcs = frozenset(
        n.name for n in tree.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )

    def analyze(fn: ast.FunctionDef | ast.AsyncFunctionDef,
                qualname: str, class_qual: str | None) -> None:
        fsum = FunctionSummary(
            qualname=qualname, line=fn.lineno,
            params=_param_names(fn.args),
        )
        analyzer = _FunctionAnalyzer(
            fsum, imports, module, module_funcs, class_qual,
            project_prefix,
        )
        analyzer._module_attr_calls = attr_calls  # type: ignore[attr-defined]
        for stmt in fn.body:
            analyzer.visit(stmt)
        analyzer.finish()
        summary.functions[qualname] = fsum

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            analyze(node, f"{module}.{node.name}", None)
        elif isinstance(node, ast.ClassDef):
            class_qual = f"{module}.{node.name}"
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    analyze(item, f"{class_qual}.{item.name}", class_qual)

    # module-level attribute calls (outside any def) also count toward
    # observer-root discovery
    class _TopLevel(ast.NodeVisitor):
        def __init__(self) -> None:
            self.in_def = 0

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            pass

        def visit_AsyncFunctionDef(self,
                                   node: ast.AsyncFunctionDef) -> None:
            pass

        def visit_Call(self, node: ast.Call) -> None:
            if isinstance(node.func, ast.Attribute):
                attr_calls.add(node.func.attr)
            self.generic_visit(node)

    _TopLevel().visit(tree)
    summary.attr_calls = tuple(sorted(attr_calls))
    return summary
