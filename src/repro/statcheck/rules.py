"""The statcheck rule registry and the shared single-pass AST visitor.

Every rule is declared once in :data:`RULES` (code, summary, fix-it
guidance, default path scope) and implemented as one or more *checker*
functions registered against the AST node types they care about via
:func:`checker`. :class:`RuleVisitor` walks a module exactly once and
dispatches each node to the checkers of every rule that is enabled for
the file being checked — adding a rule never adds a second pass.

The determinism rules (DET*) encode the invariants the reproduction's
bit-reproducibility claim rests on; OBS001 keeps the observer layers
observer-only; the HYG* rules are plain hygiene. See DESIGN.md §11 for
each rule's rationale and the workflow for adding one.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.statcheck.findings import Finding

__all__ = [
    "RuleInfo", "RULES", "RuleVisitor", "checker", "all_codes",
    "project_codes",
]


@dataclass(frozen=True)
class RuleInfo:
    """Registry entry: what a rule means and where it applies by default.

    ``only`` restricts the rule to paths under the listed prefixes
    (empty means everywhere); ``allow`` exempts paths. Both are
    repo-root-relative posix prefixes (or ``fnmatch`` globs) and can be
    overridden per-rule from ``[tool.statcheck.rules.<CODE>]`` in
    pyproject.toml.
    """

    code: str
    summary: str
    fixit: str
    only: tuple[str, ...] = ()
    allow: tuple[str, ...] = ()
    #: project rules run over the whole-program graph/summaries in the
    #: engine, not through the per-file :class:`RuleVisitor`
    project: bool = False


RULES: dict[str, RuleInfo] = {}


def _register(info: RuleInfo) -> RuleInfo:
    RULES[info.code] = info
    return info


def all_codes() -> tuple[str, ...]:
    return tuple(RULES)


def project_codes() -> tuple[str, ...]:
    return tuple(c for c, info in RULES.items() if info.project)


_register(RuleInfo(
    code="PARSE001",
    summary="file does not parse",
    fixit="fix the syntax error; statcheck cannot analyze this file",
))
_register(RuleInfo(
    code="DET001",
    summary="wall-clock access outside the clock module",
    fixit="inject a clock (repro.clock.perf_clock or a deterministic "
          "counter) instead of reading wall time in place",
    allow=("src/repro/clock.py", "src/repro/cli.py", "src/repro/__main__.py"),
))
_register(RuleInfo(
    code="DET002",
    summary="global or unseeded RNG",
    fixit="thread an explicitly seeded np.random.Generator (or seeded "
          "random.Random) through the call path instead",
))
_register(RuleInfo(
    code="DET003",
    summary="unordered set/dict.keys() iteration feeding a "
            "serialization or reduction path",
    fixit="wrap the iterable in sorted(...) so artifacts and "
          "checkpoints are byte-stable",
    only=(
        "src/repro/insight",
        "src/repro/telemetry/export.py",
        "src/repro/rl/checkpoint.py",
    ),
))
_register(RuleInfo(
    code="DET004",
    summary="bare absolute-epsilon time comparison",
    fixit="compare simulated timestamps with repro.clock.time_le / "
          "time_lt / time_close — an absolute epsilon is absorbed by "
          "float64 rounding once the clock is large",
    only=("src/repro/cluster",),
))
_register(RuleInfo(
    code="OBS001",
    summary="core module bypasses the Telemetry facade",
    fixit="take a repro.telemetry.Telemetry (default NULL_TELEMETRY) "
          "parameter; only the facade may touch the metrics registry",
    only=("src/repro/core", "src/repro/rl",
          "src/repro/cluster", "src/repro/gpu"),
))
_register(RuleInfo(
    code="HYG001",
    summary="mutable default argument",
    fixit="default to None and create the mutable value inside the "
          "function body",
))
_register(RuleInfo(
    code="DET005",
    summary="RNG seeded from a non-seed-derived value "
            "(interprocedural provenance)",
    fixit="derive the seed from an explicit seed parameter (or a "
          "repro.rl seed stream) and thread it to the construction "
          "site — wall clocks, OS entropy, and unrelated values break "
          "the reproducibility chain across module boundaries",
    project=True,
))
_register(RuleInfo(
    code="ARCH001",
    summary="module-level import violates the architecture layer DAG",
    fixit="depend downward only: move the shared code below both "
          "layers, invert the dependency, or defer the import into "
          "the function that needs it (deferred and TYPE_CHECKING "
          "imports are exempt)",
    project=True,
))
_register(RuleInfo(
    code="OBS002",
    summary="observer reachable from engine hooks mutates engine state",
    fixit="observers aggregate into their own state (self.*) and "
          "return values; never assign attributes on the engine "
          "objects passed into a lifecycle/profile hook",
    project=True,
))
_register(RuleInfo(
    code="HYG002",
    summary="print() in library code",
    fixit="return/format the text for the caller, or route it through "
          "telemetry; only the CLI prints",
    allow=("src/repro/cli.py", "src/repro/__main__.py"),
))


# ----------------------------------------------------------------------
# checker registration
# ----------------------------------------------------------------------
class _Context(Protocol):
    """What checkers may read off the engine while visiting."""

    path: str

    def resolve(self, node: ast.AST) -> str | None: ...
    def line_text(self, lineno: int) -> str: ...


Checker = Callable[[ast.AST, "_Context"], Iterator[Finding]]

#: node type -> [(rule code, checker fn)]
_CHECKERS: dict[type, list[tuple[str, Checker]]] = {}


def checker(code: str, *node_types: type) -> Callable[[Checker], Checker]:
    """Register ``fn`` as a checker for ``code`` on the given node types."""
    if code not in RULES:
        raise KeyError(f"unknown rule code {code!r}")

    def deco(fn: Checker) -> Checker:
        for nt in node_types:
            _CHECKERS.setdefault(nt, []).append((code, fn))
        return fn

    return deco


def _finding(
    code: str, node: ast.AST, ctx: _Context, message: str
) -> Finding:
    line = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0)
    return Finding(
        rule=code,
        path=ctx.path,
        line=line,
        col=col,
        message=message,
        fixit=RULES[code].fixit,
        text=ctx.line_text(line),
    )


# ----------------------------------------------------------------------
# DET001 — wall-clock access
# ----------------------------------------------------------------------
#: any reference (call or not — a wall clock stored as a default
#: callable is just a deferred wall-clock read) to these qualnames
_WALL_CLOCKS = frozenset({
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})


@checker("DET001", ast.Attribute, ast.Name)
def _det001(node: ast.AST, ctx: _Context) -> Iterator[Finding]:
    if not isinstance(getattr(node, "ctx", None), ast.Load):
        return
    qual = ctx.resolve(node)
    if qual in _WALL_CLOCKS:
        yield _finding("DET001", node, ctx, f"wall-clock access {qual}")


# ----------------------------------------------------------------------
# DET002 — global / unseeded RNG
# ----------------------------------------------------------------------
#: numpy.random constructors that are fine *when given a seed argument*
_SEEDABLE_NP = frozenset({
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.MT19937",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "numpy.random.BitGenerator",
})


@checker("DET002", ast.Call)
def _det002(node: ast.AST, ctx: _Context) -> Iterator[Finding]:
    assert isinstance(node, ast.Call)
    qual = ctx.resolve(node.func)
    if qual is None:
        return
    has_args = bool(node.args or node.keywords)
    if qual.startswith("random."):
        name = qual[len("random."):]
        if "." in name:  # e.g. random.Random(...).random — not resolvable
            return
        if name in ("Random", "SystemRandom") and has_args:
            return  # explicitly seeded instance
        yield _finding(
            "DET002", node, ctx,
            f"global random-module RNG {qual}()"
            if name not in ("Random",)
            else "unseeded random.Random()",
        )
    elif qual.startswith("numpy.random."):
        if qual in _SEEDABLE_NP:
            if has_args:
                return
            yield _finding(
                "DET002", node, ctx,
                f"unseeded {qual}() — pass an explicit seed",
            )
        else:
            yield _finding(
                "DET002", node, ctx,
                f"legacy global-state RNG {qual}()",
            )


# ----------------------------------------------------------------------
# DET003 — unordered iteration feeding serialization/reduction
# ----------------------------------------------------------------------
def _is_unordered(expr: ast.AST) -> str | None:
    """A label when ``expr`` iterates in set/keys order, else None."""
    if isinstance(expr, ast.Set) or isinstance(expr, ast.SetComp):
        return "set literal"
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id == "set":
            return "set(...)"
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "keys"
            and not expr.args
            and not expr.keywords
        ):
            return ".keys()"
    return None


#: builtins whose result depends on iteration order (sum is here
#: because float addition is not associative)
_ORDER_SENSITIVE_BUILTINS = frozenset({"list", "tuple", "sum"})


@checker("DET003", ast.For, ast.ListComp, ast.SetComp,
         ast.DictComp, ast.GeneratorExp, ast.Call)
def _det003(node: ast.AST, ctx: _Context) -> Iterator[Finding]:
    iters: list[ast.AST] = []
    if isinstance(node, ast.For):
        iters.append(node.iter)
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                           ast.GeneratorExp)):
        iters.extend(gen.iter for gen in node.generators)
    elif isinstance(node, ast.Call):
        func = node.func
        sensitive = (
            isinstance(func, ast.Attribute) and func.attr == "join"
        ) or (
            isinstance(func, ast.Name)
            and func.id in _ORDER_SENSITIVE_BUILTINS
        )
        if sensitive and node.args:
            iters.append(node.args[0])
    for it in iters:
        label = _is_unordered(it)
        if label is not None:
            yield _finding(
                "DET003", it, ctx,
                f"iteration over {label} without sorted(...)",
            )


# ----------------------------------------------------------------------
# DET004 — bare absolute-epsilon time comparison
# ----------------------------------------------------------------------
#: epsilons people reach for in time comparisons sit well below this;
#: genuine scheduling quantities (shares, rates) are larger
_EPSILON_CEILING = 1e-3


def _epsilon_operand(expr: ast.AST) -> float | None:
    """The literal epsilon when ``expr`` is ``something ± tiny``."""
    if not isinstance(expr, ast.BinOp):
        return None
    if not isinstance(expr.op, (ast.Add, ast.Sub)):
        return None
    for side in (expr.left, expr.right):
        if isinstance(side, ast.Constant) and isinstance(side.value, float):
            if 0.0 < side.value < _EPSILON_CEILING:
                return side.value
    return None


@checker("DET004", ast.Compare)
def _det004(node: ast.AST, ctx: _Context) -> Iterator[Finding]:
    assert isinstance(node, ast.Compare)
    if not all(isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
               for op in node.ops):
        return
    for expr in (node.left, *node.comparators):
        eps = _epsilon_operand(expr)
        if eps is not None:
            yield _finding(
                "DET004", node, ctx,
                f"comparison against a bare epsilon ({eps!r}) — "
                "absorbed by rounding at large simulated times",
            )
            return


# ----------------------------------------------------------------------
# OBS001 — registry access outside the Telemetry facade
# ----------------------------------------------------------------------
_REGISTRY_NAMES = frozenset({
    "registry", "MetricsRegistry", "default_registry",
    "set_default_registry",
})


@checker("OBS001", ast.Import, ast.ImportFrom)
def _obs001(node: ast.AST, ctx: _Context) -> Iterator[Finding]:
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name.startswith("repro.telemetry.registry"):
                yield _finding(
                    "OBS001", node, ctx,
                    f"direct import of {alias.name}",
                )
    elif isinstance(node, ast.ImportFrom):
        mod = node.module or ""
        if mod.startswith("repro.telemetry.registry"):
            yield _finding(
                "OBS001", node, ctx,
                f"direct import from {mod}",
            )
        elif mod == "repro.telemetry":
            for alias in node.names:
                if alias.name in _REGISTRY_NAMES:
                    yield _finding(
                        "OBS001", node, ctx,
                        f"registry-level name {alias.name!r} imported "
                        "from repro.telemetry",
                    )


# ----------------------------------------------------------------------
# HYG001 — mutable default arguments
# ----------------------------------------------------------------------
_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "collections.deque",
    "collections.OrderedDict", "collections.Counter",
})


def _is_mutable_default(expr: ast.AST, ctx: _Context) -> bool:
    if isinstance(expr, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(expr, ast.Call):
        qual = ctx.resolve(expr.func)
        if qual in _MUTABLE_CALLS:
            return True
    return False


@checker("HYG001", ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
def _hyg001(node: ast.AST, ctx: _Context) -> Iterator[Finding]:
    args = node.args  # type: ignore[attr-defined]
    defaults = list(args.defaults) + [
        d for d in args.kw_defaults if d is not None
    ]
    for default in defaults:
        if _is_mutable_default(default, ctx):
            yield _finding(
                "HYG001", default, ctx,
                "mutable default argument value",
            )


# ----------------------------------------------------------------------
# HYG002 — print() in library code
# ----------------------------------------------------------------------
@checker("HYG002", ast.Call)
def _hyg002(node: ast.AST, ctx: _Context) -> Iterator[Finding]:
    assert isinstance(node, ast.Call)
    func = node.func
    if isinstance(func, ast.Name) and func.id == "print":
        yield _finding("HYG002", node, ctx, "print() in library code")


# ----------------------------------------------------------------------
# the shared single-pass visitor
# ----------------------------------------------------------------------
@dataclass
class RuleVisitor(ast.NodeVisitor):
    """Walks one module once, dispatching nodes to enabled checkers.

    ``enabled`` is the set of rule codes active for this file after
    path scoping; ``path`` is the repo-relative posix path used in
    findings. Import tracking (for qualname resolution) is built up
    during the same walk, which is safe because imports dominate their
    uses in well-formed modules — and a use before its import is
    broken code anyway.
    """

    path: str
    lines: list[str]
    enabled: frozenset[str]
    findings: list[Finding] = field(default_factory=list)
    _imports: dict[str, str] = field(default_factory=dict)

    # -- context protocol ------------------------------------------------
    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def resolve(self, node: ast.AST) -> str | None:
        """The imported qualname a Name/Attribute chain refers to."""
        if isinstance(node, ast.Name):
            return self._imports.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    # -- import tracking -------------------------------------------------
    def _track_import(self, node: ast.Import | ast.ImportFrom) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                self._imports[bound] = target
        else:
            if node.level:  # relative import — never stdlib/numpy
                return
            mod = node.module or ""
            for alias in node.names:
                bound = alias.asname or alias.name
                self._imports[bound] = f"{mod}.{alias.name}" if mod else alias.name

    # -- dispatch --------------------------------------------------------
    def visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            self._track_import(node)
        for code, fn in _CHECKERS.get(type(node), ()):
            if code in self.enabled:
                self.findings.extend(fn(node, self))
        self.generic_visit(node)
