"""The statcheck engine: file walking, pragmas, baseline, reports.

Entry points:

* :func:`check_paths` — the pytest-importable API. Returns a
  :class:`Report`; ``report.new`` is what gates (empty == green).
* :func:`check_source` — one in-memory module, used by the unit tests
  and by tools embedding statcheck.

Per-line escape hatch::

    t0 = time.perf_counter()   # statcheck: ignore[DET001] CLI boundary

``ignore`` with no bracket suppresses every rule on that line; the
bracket form lists codes, comma-separated. The suppression must sit on
the line the finding points at (the statement's first line).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.statcheck.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.statcheck.config import (
    StatcheckConfig,
    StatcheckError,
    load_config,
)
from repro.statcheck.findings import Finding
from repro.statcheck.rules import RULES, RuleVisitor

__all__ = ["Report", "check_source", "check_paths", "iter_python_files"]

_PRAGMA = re.compile(
    r"#\s*statcheck:\s*ignore(?:\[(?P<codes>[A-Z0-9_,\s]+)\])?"
)


@dataclass
class Report:
    """Everything one statcheck run determined."""

    root: str
    files_checked: int = 0
    new: list[Finding] = field(default_factory=list)
    grandfathered: list[Finding] = field(default_factory=list)
    pragma_suppressed: list[Finding] = field(default_factory=list)
    stale_baseline: list[dict[str, object]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.new

    def to_dict(self) -> dict[str, object]:
        """The ``--json`` document (schema pinned by the test suite)."""
        return {
            "version": 1,
            "tool": "repro.statcheck",
            "root": self.root,
            "files_checked": self.files_checked,
            "clean": self.clean,
            "findings": [f.to_dict() for f in self.new],
            "suppressed": {
                "baseline": len(self.grandfathered),
                "pragma": len(self.pragma_suppressed),
            },
            "stale_baseline": self.stale_baseline,
            "rules": {
                code: info.summary for code, info in sorted(RULES.items())
            },
        }

    def render(self, verbose: bool = False) -> str:
        """The human-readable report the CLI prints."""
        lines = [f.render() for f in sorted(
            self.new, key=lambda f: (f.path, f.line, f.col, f.rule)
        )]
        if verbose:
            for f in sorted(self.new,
                            key=lambda f: (f.path, f.line, f.col, f.rule)):
                lines.append(f"    fix: {f.fixit}")
        summary = (
            f"statcheck: {self.files_checked} files, "
            f"{len(self.new)} new finding(s), "
            f"{len(self.grandfathered)} grandfathered, "
            f"{len(self.pragma_suppressed)} pragma-suppressed"
        )
        if self.stale_baseline:
            summary += (
                f", {len(self.stale_baseline)} stale baseline entrie(s) "
                "— rerun with --write-baseline to ratchet"
            )
        lines.append(summary)
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _pragma_lines(lines: Sequence[str]) -> dict[int, frozenset[str] | None]:
    """``lineno -> codes`` for every ignore pragma (None = all rules)."""
    out: dict[int, frozenset[str] | None] = {}
    for i, line in enumerate(lines, start=1):
        m = _PRAGMA.search(line)
        if not m:
            continue
        raw = m.group("codes")
        if raw is None:
            out[i] = None
        else:
            out[i] = frozenset(
                c.strip() for c in raw.split(",") if c.strip()
            )
    return out


def check_source(
    source: str,
    relpath: str,
    config: StatcheckConfig,
) -> tuple[list[Finding], list[Finding]]:
    """(kept, pragma-suppressed) findings for one module's source."""
    enabled = config.enabled_rules(relpath)
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        f = Finding(
            rule="PARSE001",
            path=relpath,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            message=f"syntax error: {exc.msg}",
            fixit=RULES["PARSE001"].fixit,
            text=(exc.text or "").strip(),
        )
        return [f], []
    visitor = RuleVisitor(path=relpath, lines=lines, enabled=enabled)
    visitor.visit(tree)
    pragmas = _pragma_lines(lines)
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for f in visitor.findings:
        codes = pragmas.get(f.line, frozenset())
        if codes is None or (codes and f.rule in codes):
            suppressed.append(f)
        else:
            kept.append(f)
    return kept, suppressed


def iter_python_files(
    paths: Iterable[Path], config: StatcheckConfig
) -> Iterator[tuple[Path, str]]:
    """(absolute path, repo-relative posix path) pairs, sorted, deduped."""
    seen: set[str] = set()
    collected: list[tuple[str, Path]] = []
    for p in paths:
        p = Path(p)
        if not p.is_absolute():
            p = config.root / p
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        elif p.is_file():
            candidates = [p]
        else:
            raise StatcheckError(f"no such file or directory: {p}")
        for c in candidates:
            try:
                rel = c.resolve().relative_to(config.root).as_posix()
            except ValueError:
                rel = c.as_posix()
            if rel in seen or config.excluded(rel):
                continue
            seen.add(rel)
            collected.append((rel, c))
    for rel, c in sorted(collected):
        yield c, rel


def check_paths(
    paths: Sequence[str | Path] | None = None,
    root: str | Path | None = None,
    config: StatcheckConfig | None = None,
    use_baseline: bool = True,
) -> Report:
    """Run statcheck over ``paths`` (config defaults when None)."""
    cfg = config if config is not None else load_config(root)
    targets = [Path(p) for p in paths] if paths else [
        Path(p) for p in cfg.paths
    ]
    report = Report(root=str(cfg.root))
    all_kept: list[Finding] = []
    for abspath, rel in iter_python_files(targets, cfg):
        report.files_checked += 1
        try:
            source = abspath.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            raise StatcheckError(f"cannot read {abspath}: {exc}")
        kept, suppressed = check_source(source, rel, cfg)
        all_kept.extend(kept)
        report.pragma_suppressed.extend(suppressed)

    entries: list[dict[str, object]] = []
    if use_baseline and cfg.baseline_path is not None:
        entries = load_baseline(cfg.baseline_path)
    report.new, report.grandfathered, report.stale_baseline = (
        apply_baseline(all_kept, entries)
    )
    return report


def update_baseline(report: Report, config: StatcheckConfig) -> Path:
    """Write the current findings as the new baseline (the ratchet step)."""
    path = config.baseline_path
    if path is None:
        raise StatcheckError(
            "no baseline configured ([tool.statcheck] baseline)"
        )
    write_baseline(path, report.new + report.grandfathered)
    return path
